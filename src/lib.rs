//! # smoothscan — statistics-oblivious access paths
//!
//! A from-scratch Rust reproduction of *Smooth Scan: Statistics-Oblivious
//! Access Paths* (Borovica-Gajic, Idreos, Ailamaki, Zukowski, Fraser —
//! ICDE 2015): a single-user analytical storage engine whose access-path
//! operator **morphs at run time** between an index look-up and a full
//! table scan, delivering near-optimal performance at *every* selectivity
//! without requiring accurate optimizer statistics.
//!
//! ## Quick start
//!
//! ```
//! use smoothscan::prelude::*;
//!
//! // A database on the paper's HDD model (random page = 10× sequential).
//! let mut db = Database::new(StorageConfig::default());
//!
//! // Load a table and index its second column.
//! let schema = Schema::new(vec![
//!     Column::new("id", DataType::Int64),
//!     Column::new("key", DataType::Int64),
//! ]).unwrap();
//! db.load_table("t", schema, (0..10_000i64).map(|i| {
//!     Row::new(vec![Value::Int(i), Value::Int(i % 100)])
//! })).unwrap();
//! db.create_index("t", 1, "t_key").unwrap();
//!
//! // Scan through Smooth Scan: no access-path decision needed up front.
//! let plan = LogicalPlan::scan(
//!     ScanSpec::new("t", Predicate::int_half_open(1, 0, 10))
//!         .with_access(AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic())),
//! );
//! let result = db.run(&plan).unwrap();
//! assert_eq!(result.rows.len(), 1000);
//! assert!(result.stats.io.pages_read > 0);
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `smooth-types` | values, schemas, rows, TIDs |
//! | [`storage`] | `smooth-storage` | slotted pages, heaps, buffer pool, device model |
//! | [`index`] | `smooth-index` | non-clustered B+-tree |
//! | [`stats`] | `smooth-stats` | histograms, estimation, staleness injection |
//! | [`executor`] | `smooth-executor` | Volcano operators, traditional access paths |
//! | [`core`] | `smooth-core` | **Smooth Scan**, Switch Scan, policies, triggers, cost model |
//! | [`planner`] | `smooth-planner` | optimizer, catalog, `Database` facade |
//! | [`workload`] | `smooth-workload` | micro/skew/TPC-H-style generators and queries |

pub use smooth_core as core;
pub use smooth_executor as executor;
pub use smooth_index as index;
pub use smooth_planner as planner;
pub use smooth_stats as stats;
pub use smooth_storage as storage;
pub use smooth_types as types;
pub use smooth_workload as workload;

/// Everything needed for typical use, one import away.
pub mod prelude {
    pub use smooth_core::{
        CostModel, PolicyKind, SmoothScan, SmoothScanConfig, SmoothScanMetrics, SwitchScan,
        TableGeometry, Trigger,
    };
    pub use smooth_executor::sort::SortKey;
    pub use smooth_executor::{collect_rows, AggFunc, JoinType, Operator, Predicate};
    pub use smooth_planner::{
        AccessPathChoice, Database, JoinStrategy, LogicalPlan, QueryResult, RunStats, ScanSpec,
    };
    pub use smooth_stats::StatsQuality;
    pub use smooth_storage::{CpuCosts, DeviceProfile, FaultConfig, Storage, StorageConfig};
    pub use smooth_types::{Column, ColumnBatch, DataType, Error, Row, RowBatch, Schema, Value};
}
