//! Cross-crate integration tests: every access path, policy and trigger
//! must agree on query results, across devices and workloads, end to end
//! through the `Database` facade.

use smoothscan::prelude::*;
use smoothscan::workload::{micro, skew, tpch};

fn micro_db(rows: u64) -> Database {
    let mut db = Database::new(StorageConfig::default());
    micro::install(&mut db, rows, 99).unwrap();
    db
}

fn sorted_ids(rows: &[Row]) -> Vec<i64> {
    let mut ids: Vec<i64> = rows.iter().map(|r| r.int(0).unwrap()).collect();
    ids.sort_unstable();
    ids
}

#[test]
fn every_access_path_returns_identical_results_across_selectivities() {
    let db = micro_db(40_000);
    for sel in [0.0, 0.0005, 0.01, 0.25, 1.0] {
        let reference = db.run(&micro::query(sel, false, AccessPathChoice::ForceFull)).unwrap();
        let expected = sorted_ids(&reference.rows);
        for access in [
            AccessPathChoice::ForceIndex,
            AccessPathChoice::ForceSort,
            AccessPathChoice::Switch { estimate: 500 },
            AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic()),
            AccessPathChoice::Smooth(
                SmoothScanConfig::eager_elastic().with_policy(PolicyKind::Greedy),
            ),
            AccessPathChoice::Smooth(
                SmoothScanConfig::eager_elastic().with_policy(PolicyKind::SelectivityIncrease),
            ),
            AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic().mode1_only()),
            AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic().with_order(true)),
            AccessPathChoice::Auto,
        ] {
            let got = db.run(&micro::query(sel, false, access.clone())).unwrap();
            assert_eq!(sorted_ids(&got.rows), expected, "sel {sel}, access {access:?}");
        }
    }
}

#[test]
fn ordered_queries_respect_key_order_on_every_path() {
    let db = micro_db(30_000);
    for access in [
        AccessPathChoice::ForceFull,
        AccessPathChoice::ForceIndex,
        AccessPathChoice::ForceSort,
        AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic()),
    ] {
        let got = db.run(&micro::query(0.1, true, access.clone())).unwrap();
        let keys: Vec<i64> = got.rows.iter().map(|r| r.int(micro::C2).unwrap()).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "{access:?} broke key order");
    }
}

#[test]
fn triggers_agree_with_eager_results() {
    let db = micro_db(30_000);
    let expected =
        sorted_ids(&db.run(&micro::query(0.05, false, AccessPathChoice::ForceFull)).unwrap().rows);
    let heap = &db.table(micro::TABLE).unwrap().heap;
    let model = CostModel::new(
        TableGeometry::new(heap.schema().estimated_tuple_width(16) as u64, heap.tuple_count()),
        DeviceProfile::hdd(),
    );
    for trigger in [
        Trigger::Eager,
        Trigger::OptimizerDriven {
            estimated_cardinality: 40,
            policy: PolicyKind::SelectivityIncrease,
        },
        Trigger::SlaDriven { bound_ns: (2.0 * model.fs_cost_ns()) as u64 },
    ] {
        let access =
            AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic().with_trigger(trigger));
        let got = db.run(&micro::query(0.05, false, access)).unwrap();
        assert_eq!(sorted_ids(&got.rows), expected, "{trigger:?}");
    }
}

#[test]
fn smooth_scan_is_robust_where_index_scan_collapses() {
    let db = micro_db(60_000);
    // At 50% selectivity the index scan must be an order of magnitude
    // worse than both the full scan and Smooth Scan.
    let full = db.run(&micro::query(0.5, false, AccessPathChoice::ForceFull)).unwrap().stats;
    let index = db.run(&micro::query(0.5, false, AccessPathChoice::ForceIndex)).unwrap().stats;
    let smooth = db
        .run(&micro::query(0.5, false, AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic())))
        .unwrap()
        .stats;
    assert!(index.clock.total_ns() > 10 * full.clock.total_ns());
    assert!(smooth.clock.total_ns() < index.clock.total_ns() / 5);
    // And at very low selectivity, Smooth stays close to the index scan.
    let full_low = db.run(&micro::query(0.0001, false, AccessPathChoice::ForceFull)).unwrap().stats;
    let smooth_low = db
        .run(&micro::query(
            0.0001,
            false,
            AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic()),
        ))
        .unwrap()
        .stats;
    assert!(smooth_low.clock.total_ns() < full_low.clock.total_ns());
}

#[test]
fn ssd_narrows_the_random_penalty() {
    let mut hdd = Database::new(StorageConfig::default());
    micro::install(&mut hdd, 30_000, 5).unwrap();
    let ssd_cfg = StorageConfig { device: DeviceProfile::ssd(), ..StorageConfig::default() };
    let mut ssd = Database::new(ssd_cfg);
    micro::install(&mut ssd, 30_000, 5).unwrap();
    let ratio = |db: &Database| {
        let f = db.run(&micro::query(0.02, false, AccessPathChoice::ForceFull)).unwrap().stats;
        let i = db.run(&micro::query(0.02, false, AccessPathChoice::ForceIndex)).unwrap().stats;
        i.clock.total_ns() as f64 / f.clock.total_ns() as f64
    };
    assert!(ratio(&ssd) < ratio(&hdd), "index scans hurt relatively less on SSD");
}

#[test]
fn skew_workload_all_paths_agree() {
    let mut db = Database::new(StorageConfig::default());
    skew::install(&mut db, 60_000, 3).unwrap();
    let expected = sorted_ids(&db.run(&skew::query(AccessPathChoice::ForceFull)).unwrap().rows);
    assert!(!expected.is_empty());
    for access in [
        AccessPathChoice::ForceIndex,
        AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic()),
        AccessPathChoice::Smooth(
            SmoothScanConfig::eager_elastic().with_policy(PolicyKind::SelectivityIncrease),
        ),
    ] {
        let got = db.run(&skew::query(access.clone())).unwrap();
        assert_eq!(sorted_ids(&got.rows), expected, "{access:?}");
    }
}

#[test]
fn tpch_pipeline_round_trips() {
    let mut db = Database::new(StorageConfig::default());
    tpch::install(&mut db, tpch::Scale::tiny()).unwrap();
    tpch::gen::create_tuning_indexes(&mut db).unwrap();
    // Smooth Scan inside multi-operator plans produces the same aggregates
    // as the forced-path plans.
    for q in tpch::queries::Fig4Query::all() {
        let a = db.run(&q.plan(q.psql_access())).unwrap();
        let b =
            db.run(&q.plan(AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic()))).unwrap();
        assert_eq!(a.rows.len(), b.rows.len(), "{}", q.label());
    }
}

#[test]
fn stats_damage_changes_plans_not_results() {
    let mut db = Database::new(StorageConfig::default());
    micro::install(&mut db, 30_000, 17).unwrap();
    let plan = micro::query(0.3, false, AccessPathChoice::Auto);
    let honest = db.run(&plan).unwrap();
    let honest_explain = db.explain(&plan).unwrap();
    db.set_stats_quality(micro::TABLE, StatsQuality::FixedCardinality(5)).unwrap();
    let fooled = db.run(&plan).unwrap();
    let fooled_explain = db.explain(&plan).unwrap();
    assert_ne!(honest_explain, fooled_explain, "the damaged stats must flip the plan");
    assert_eq!(sorted_ids(&honest.rows), sorted_ids(&fooled.rows));
    assert!(fooled.stats.clock.total_ns() > honest.stats.clock.total_ns());
}

#[test]
fn smooth_scan_metrics_tell_the_morphing_story() {
    let db = micro_db(40_000);
    let spec = ScanSpec::new(micro::TABLE, micro::predicate(0.8));
    let mut scan =
        db.build_smooth_scan(&spec, SmoothScanConfig::eager_elastic().with_order(true)).unwrap();
    let result = db.run_operator(&mut scan).unwrap();
    let m = scan.metrics();
    assert_eq!(m.tuples_emitted, result.stats.rows);
    assert!(m.mode2_pages > m.mode1_pages, "high selectivity must flatten: {m:?}");
    assert!(m.max_region_pages > 1);
    assert!(m.cache.hits > 0);
    assert!(m.morphing_accuracy().unwrap() > 0.9);
}
