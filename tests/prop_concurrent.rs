//! Concurrent-session differential property suite: N threads, each
//! with its own [`smooth_planner::Session`], run proptest-generated
//! random plans against **one shared database** — one buffer pool, one
//! disk arm, one virtual clock, one worker pool — and every session
//! must get back the **exact row sequence** a solo cold run of its plan
//! returns on a fresh database, at every worker-pool width.
//!
//! Why rows only, not clock/I-O: result rows are required to be
//! invariant under concurrency because everything result-bearing is
//! per-query (source locks, morsel sequence numbers, build tables,
//! ordered sinks) and the adaptive scans' morph decisions are pure
//! functions of the query's own observed cardinalities. The
//! *accounting* is not invariant — concurrent queries genuinely share
//! the disk arm (seq/random classification continues across queries)
//! and the buffer pool (residency depends on global access order) — so
//! clock and I/O equality is pinned only single-session, by
//! `prop_differential` and the per-crate suites. Scan statistics
//! (`QueryResult::scan`) stay per-query even here; the suite checks
//! they attribute plausibly (emitted rows match) without demanding
//! interleaving-independence of page counters.
//!
//! `SMOOTH_TEST_SESSIONS` (default 4) sets the number of concurrent
//! sessions; plans replicate round-robin when it exceeds the generated
//! plan count.

use proptest::prelude::*;
use smooth_planner::{AccessPathChoice, Database, JoinStrategy, LogicalPlan, ScanSpec};
use smooth_storage::{CpuCosts, DeviceProfile, StorageConfig};
use smoothscan::prelude::{
    AggFunc, Column, DataType, JoinType, PolicyKind, Predicate, Row, Schema, SmoothScanConfig,
    Value,
};

const WORKER_GRID: [usize; 4] = [1, 2, 4, 8];

fn sessions() -> usize {
    std::env::var("SMOOTH_TEST_SESSIONS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.clamp(1, 64))
        .unwrap_or(4)
}

/// Deterministic pseudo-random column: spreads keys over [0, domain).
fn scramble(i: i64, domain: i64) -> i64 {
    ((i.wrapping_mul(2654435761)) % domain + domain) % domain
}

/// The same two-table database `prop_differential` uses: every
/// construction is deterministic, so each call yields an identical
/// engine whose cold runs are exactly reproducible.
fn database(rows: i64) -> Database {
    let mut db = Database::new(StorageConfig {
        device: DeviceProfile::custom("t", 1, 10),
        cpu: CpuCosts::default(),
        pool_pages: 48,
    });
    let schema = Schema::new(vec![
        Column::new("c0", DataType::Int64),
        Column::new("c1", DataType::Int64),
        Column::nullable("c2", DataType::Int64),
        Column::new("pad", DataType::Text),
    ])
    .unwrap();
    db.load_table(
        "t",
        schema.clone(),
        (0..rows).map(|i| {
            let c2 = if i % 11 == 0 { Value::Null } else { Value::Int(scramble(i * 7, 500)) };
            Row::new(vec![
                Value::Int(i),
                Value::Int(scramble(i, 300)),
                c2,
                Value::str("x".repeat(24)),
            ])
        }),
    )
    .unwrap();
    db.create_index("t", 1, "t_c1").unwrap();
    db.load_table(
        "r",
        schema,
        (0..rows / 3).map(|i| {
            Row::new(vec![
                Value::Int(scramble(i, 300)),
                Value::Int(scramble(i + 13, 300)),
                Value::Int(i),
                Value::str(format!("r{i}")),
            ])
        }),
    )
    .unwrap();
    db.create_index("r", 1, "r_c1").unwrap();
    db
}

#[derive(Debug, Clone)]
struct PlanShape {
    access: AccessPathChoice,
    lo: i64,
    width: i64,
    join: JoinShape,
    agg: AggShape,
}

#[derive(Debug, Clone, Copy)]
enum JoinShape {
    None,
    HashInner,
    HashSemi,
}

#[derive(Debug, Clone, Copy)]
enum AggShape {
    None,
    ExactGrouped,
    FloatAvg,
    Scalar,
}

fn access_strategy() -> impl Strategy<Value = AccessPathChoice> {
    prop_oneof![
        2 => Just(AccessPathChoice::ForceFull),
        1 => Just(AccessPathChoice::ForceIndex),
        1 => Just(AccessPathChoice::ForceSort),
        1 => (0usize..3).prop_map(|p| {
            let policy =
                [PolicyKind::Greedy, PolicyKind::SelectivityIncrease, PolicyKind::Elastic][p];
            AccessPathChoice::Smooth(SmoothScanConfig::default().with_policy(policy))
        }),
        1 => (1u64..400).prop_map(|estimate| AccessPathChoice::Switch { estimate }),
    ]
}

fn shape_strategy() -> impl Strategy<Value = PlanShape> {
    (
        access_strategy(),
        0i64..300,
        0i64..330,
        prop_oneof![
            2 => Just(JoinShape::None),
            1 => Just(JoinShape::HashInner),
            1 => Just(JoinShape::HashSemi),
        ],
        prop_oneof![
            2 => Just(AggShape::None),
            1 => Just(AggShape::ExactGrouped),
            1 => Just(AggShape::FloatAvg),
            1 => Just(AggShape::Scalar),
        ],
    )
        .prop_map(|(access, lo, width, join, agg)| PlanShape { access, lo, width, join, agg })
}

fn plan_for(shape: &PlanShape) -> LogicalPlan {
    let pred = Predicate::int_half_open(1, shape.lo, shape.lo + shape.width);
    let scan = LogicalPlan::scan(ScanSpec::new("t", pred).with_access(shape.access.clone()));
    let joined = match shape.join {
        JoinShape::None => scan,
        JoinShape::HashInner => scan.join(
            LogicalPlan::scan(ScanSpec::new("r", Predicate::True)),
            1,
            0,
            JoinType::Inner,
            JoinStrategy::Hash,
        ),
        JoinShape::HashSemi => scan.join(
            LogicalPlan::scan(ScanSpec::new("r", Predicate::int_lt(2, 200))),
            1,
            0,
            JoinType::LeftSemi,
            JoinStrategy::Hash,
        ),
    };
    match shape.agg {
        AggShape::None => joined,
        AggShape::ExactGrouped => {
            joined.aggregate(vec![1], vec![AggFunc::CountStar, AggFunc::Min(0), AggFunc::Max(0)])
        }
        AggShape::FloatAvg => joined.aggregate(vec![1], vec![AggFunc::Avg(0), AggFunc::CountStar]),
        AggShape::Scalar => joined.aggregate(vec![], vec![AggFunc::CountStar, AggFunc::Sum(0)]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Concurrent sessions on one shared engine return exactly the rows
    /// a solo run returns, at every worker count.
    #[test]
    fn concurrent_sessions_match_solo_runs(
        shapes in proptest::collection::vec(shape_strategy(), 4..5),
    ) {
        // Solo references: each plan cold-run alone on its own fresh,
        // deterministically identical database, serial driver.
        let solo: Vec<Vec<Row>> = shapes
            .iter()
            .map(|shape| {
                let mut db = database(900);
                db.set_workers(1);
                db.run(&plan_for(shape)).expect("solo run").rows
            })
            .collect();

        let n = sessions();
        for workers in WORKER_GRID {
            // A fresh shared engine per worker count: N sessions fire
            // their queries at it simultaneously. A small admission cap
            // on one leg exercises the FIFO queue.
            let mut db = database(900);
            db.set_workers(workers);
            db.set_max_queries(if workers == 2 { 2 } else { 4 });
            let results: Vec<(usize, Vec<Row>, u64)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n)
                    .map(|s| {
                        let db = &db;
                        let shapes = &shapes;
                        scope.spawn(move || {
                            let session = db.session();
                            let which = s % shapes.len();
                            let plan = plan_for(&shapes[which]);
                            let out = session.run(&plan).expect("concurrent run");
                            (which, out.rows, out.scan.rows_processed)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("session thread")).collect()
            });
            for (which, rows, _) in &results {
                prop_assert!(
                    rows == &solo[*which],
                    "plan {} diverges from its solo run at {} workers ({:?})",
                    which,
                    workers,
                    shapes[*which]
                );
            }
            // Per-query attribution stays coherent under concurrency:
            // a bare full scan (no join/aggregate) emits exactly
            // `rows_processed` tuples. Adaptive paths are excluded —
            // e.g. a Switch scan that abandons its index mid-flight
            // recounts rows it re-produces, so emitted != processed.
            for (which, rows, processed) in &results {
                let shape = &shapes[*which];
                if matches!(shape.access, AccessPathChoice::ForceFull)
                    && matches!(shape.join, JoinShape::None)
                    && matches!(shape.agg, AggShape::None)
                {
                    prop_assert!(
                        *processed == rows.len() as u64,
                        "scan stats misattributed at {} workers ({:?})",
                        workers,
                        shape
                    );
                }
            }
        }
    }

    /// Spill-forcing leg: the same concurrent race under a tiny
    /// per-operator memory budget. Every join build (and sort) above
    /// the budget spills to charged overflow files, and each session's
    /// rows must still match its budgeted solo run exactly — the grace
    /// trees' probe tallies are order-independent atomic sums, so
    /// worker and session interleavings cannot perturb results.
    #[test]
    fn concurrent_budgeted_sessions_match_solo_runs(
        shapes in proptest::collection::vec(shape_strategy(), 4..5),
    ) {
        const BUDGET: usize = 4096;
        let solo: Vec<Vec<Row>> = shapes
            .iter()
            .map(|shape| {
                let mut db = database(900);
                db.set_workers(1);
                db.set_mem_bytes(BUDGET);
                db.run(&plan_for(shape)).expect("solo budgeted run").rows
            })
            .collect();

        let n = sessions();
        for workers in [2usize, 8] {
            let mut db = database(900);
            db.set_workers(workers);
            db.set_mem_bytes(BUDGET);
            let results: Vec<(usize, Vec<Row>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n)
                    .map(|s| {
                        let db = &db;
                        let shapes = &shapes;
                        scope.spawn(move || {
                            let session = db.session();
                            let which = s % shapes.len();
                            let plan = plan_for(&shapes[which]);
                            (which, session.run(&plan).expect("concurrent budgeted run").rows)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("session thread")).collect()
            });
            for (which, rows) in &results {
                prop_assert!(
                    rows == &solo[*which],
                    "budgeted plan {} diverges from its solo run at {} workers ({:?})",
                    which,
                    workers,
                    shapes[*which]
                );
            }
        }
    }
}
