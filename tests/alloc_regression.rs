//! Allocation-count regression guard for the zero-copy text-view scan
//! path.
//!
//! A counting [`GlobalAlloc`] wrapper tallies heap allocations while
//! [`collect_batches`] drains a full scan over a pad-heavy (Text-column
//! dominated) table. Doubling the row count must **not** double the
//! allocation count: `TextColumn` stores text as spans into pinned page
//! buffers (views) or into a shared append-only arena (owned), so
//! neither mode allocates per value — the marginal allocation cost of
//! extra rows is per-*page* and per-*batch* (buffer growth, span
//! vectors, `Arc` bookkeeping). The bound below — fewer than one
//! allocation per 8 marginal rows — fails loudly if anyone
//! reintroduces a per-row allocation straggler (a `String` per decoded
//! value, a `Vec<Value>` per tuple) into decode, filter, or batch
//! handoff.
//!
//! This file holds exactly one `#[test]` so no concurrent test pollutes
//! the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use smooth_executor::{collect_batches, FullTableScan, Predicate};
use smooth_storage::{CpuCosts, DeviceProfile, HeapFile, HeapLoader, Storage, StorageConfig};
use smooth_types::{force_text_views, Column, DataType, Row, Schema, Value};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn pad_heavy_heap(rows: i64) -> Arc<HeapFile> {
    let schema =
        Schema::new(vec![Column::new("id", DataType::Int64), Column::new("pad", DataType::Text)])
            .unwrap();
    let mut loader = HeapLoader::new_mem("t", schema);
    for i in 0..rows {
        loader.push(&Row::new(vec![Value::Int(i), Value::str("x".repeat(64))])).unwrap();
    }
    Arc::new(loader.finish().unwrap())
}

fn storage() -> Storage {
    Storage::new(StorageConfig {
        device: DeviceProfile::custom("t", 1, 10),
        cpu: CpuCosts::default(),
        pool_pages: 4096,
    })
}

/// Allocations spent draining `heap` through the columnar driver, and
/// the row count it produced.
fn allocs_for_scan(heap: &Arc<HeapFile>) -> (u64, usize) {
    let s = storage();
    let mut op = FullTableScan::new(Arc::clone(heap), s, Predicate::True);
    let before = ALLOCS.load(Ordering::Relaxed);
    let batches = collect_batches(&mut op).unwrap();
    let after = ALLOCS.load(Ordering::Relaxed);
    let rows: usize = batches.iter().map(|b| b.len()).sum();
    drop(batches);
    (after - before, rows)
}

#[test]
fn text_views_keep_scan_allocations_sublinear_in_rows() {
    force_text_views(true);
    const N: i64 = 4000;
    // Warm-up drains one-time lazy state (env latches, thread locals)
    // so it never lands in either measured window.
    allocs_for_scan(&pad_heavy_heap(64));

    let (small_allocs, small_rows) = allocs_for_scan(&pad_heavy_heap(N));
    let (large_allocs, large_rows) = allocs_for_scan(&pad_heavy_heap(2 * N));
    assert_eq!(small_rows, N as usize);
    assert_eq!(large_rows, 2 * N as usize);

    let marginal_rows = (large_rows - small_rows) as u64;
    let marginal_allocs = large_allocs.saturating_sub(small_allocs);
    assert!(
        marginal_allocs < marginal_rows / 8,
        "per-row allocation straggler: {marginal_allocs} extra allocations \
         for {marginal_rows} extra rows ({small_allocs} at N, {large_allocs} at 2N)"
    );
}
