//! Cross-driver differential property suite: proptest-generated random
//! plans — scan kind × predicates × join shapes × aggregates ×
//! Smooth/Switch policies — must produce the **exact row sequence**,
//! the **exact virtual CPU/IO clock totals** and the **exact I/O
//! counters** across all three pipeline drivers:
//!
//! * the Volcano row-at-a-time driver (the permanent semantics oracle),
//! * the single-threaded columnar driver (`Database::run` at 1 worker),
//! * the morsel-driven parallel driver at worker counts {1, 2, 4, 8}.
//!
//! Every execution strategy in this repo — batching, columnar layout,
//! worker pools, the partitioned parallel hash-join build — is required
//! to be *accounting-invisible*: it may change who does the work, never
//! what work the engine is charged for. This suite pins that invariant
//! end to end through the planner, for plan shapes no single-crate suite
//! composes.

use proptest::prelude::*;
use smooth_executor::sort::SortKey;
use smooth_executor::{collect_rows_volcano, ParallelSource, SinkSpec};
use smooth_planner::{
    AccessPathChoice, Database, JoinStrategy, LogicalPlan, QueryResult, RunStats, ScanSpec,
};
use smooth_storage::{CpuCosts, DeviceProfile, IoStatsDelta, StorageConfig};
use smoothscan::prelude::{
    AggFunc, Column, DataType, JoinType, PolicyKind, Predicate, Row, Schema, SmoothScanConfig,
    Value,
};

const WORKER_GRID: [usize; 3] = [2, 4, 8];

/// Deterministic pseudo-random column: spreads keys over [0, domain).
fn scramble(i: i64, domain: i64) -> i64 {
    ((i.wrapping_mul(2654435761)) % domain + domain) % domain
}

fn database(rows: i64) -> Database {
    let mut db = Database::new(StorageConfig {
        device: DeviceProfile::custom("t", 1, 10),
        cpu: CpuCosts::default(),
        pool_pages: 48,
    });
    let schema = Schema::new(vec![
        Column::new("c0", DataType::Int64),
        Column::new("c1", DataType::Int64),
        Column::nullable("c2", DataType::Int64),
        Column::new("pad", DataType::Text),
    ])
    .unwrap();
    db.load_table(
        "t",
        schema.clone(),
        (0..rows).map(|i| {
            let c2 = if i % 11 == 0 { Value::Null } else { Value::Int(scramble(i * 7, 500)) };
            Row::new(vec![
                Value::Int(i),
                Value::Int(scramble(i, 300)),
                c2,
                Value::str("x".repeat(24)),
            ])
        }),
    )
    .unwrap();
    db.create_index("t", 1, "t_c1").unwrap();
    // A second, smaller table for build sides.
    db.load_table(
        "r",
        schema,
        (0..rows / 3).map(|i| {
            Row::new(vec![
                Value::Int(scramble(i, 300)),
                Value::Int(scramble(i + 13, 300)),
                Value::Int(i),
                Value::str(format!("r{i}")),
            ])
        }),
    )
    .unwrap();
    db.create_index("r", 1, "r_c1").unwrap();
    db
}

/// One scan-kind choice from the full repertoire.
fn access_strategy() -> impl Strategy<Value = AccessPathChoice> {
    prop_oneof![
        Just(AccessPathChoice::ForceFull),
        Just(AccessPathChoice::ForceIndex),
        Just(AccessPathChoice::ForceSort),
        (0usize..3, any::<bool>()).prop_map(|(p, ordered)| {
            let policy =
                [PolicyKind::Greedy, PolicyKind::SelectivityIncrease, PolicyKind::Elastic][p];
            AccessPathChoice::Smooth(
                SmoothScanConfig::default().with_policy(policy).with_order(ordered),
            )
        }),
        (1u64..400).prop_map(|estimate| AccessPathChoice::Switch { estimate }),
        Just(AccessPathChoice::Auto),
    ]
}

#[derive(Debug, Clone, Copy)]
enum JoinShape {
    None,
    HashInner,
    HashSemi,
    IndexNested,
}

fn join_strategy() -> impl Strategy<Value = JoinShape> {
    prop_oneof![
        2 => Just(JoinShape::None),
        2 => Just(JoinShape::HashInner),
        1 => Just(JoinShape::HashSemi),
        1 => Just(JoinShape::IndexNested),
    ]
}

#[derive(Debug, Clone, Copy)]
enum AggShape {
    None,
    ExactGrouped,
    FloatAvg,
    Scalar,
}

fn agg_strategy() -> impl Strategy<Value = AggShape> {
    prop_oneof![
        2 => Just(AggShape::None),
        1 => Just(AggShape::ExactGrouped),
        1 => Just(AggShape::FloatAvg),
        1 => Just(AggShape::Scalar),
    ]
}

/// Assemble the plan under test.
fn plan_for(
    access: &AccessPathChoice,
    lo: i64,
    width: i64,
    residual: Option<i64>,
    join: JoinShape,
    agg: AggShape,
) -> LogicalPlan {
    let mut pred = Predicate::int_half_open(1, lo, lo + width);
    if let Some(hi) = residual {
        pred = Predicate::and(vec![pred, Predicate::int_lt(0, hi)]);
    }
    let scan = LogicalPlan::scan(ScanSpec::new("t", pred).with_access(access.clone()));
    let joined = match join {
        JoinShape::None => scan,
        JoinShape::HashInner => scan.join(
            LogicalPlan::scan(ScanSpec::new("r", Predicate::True)),
            1,
            0,
            JoinType::Inner,
            JoinStrategy::Hash,
        ),
        JoinShape::HashSemi => scan.join(
            LogicalPlan::scan(ScanSpec::new("r", Predicate::int_lt(2, 200))),
            1,
            0,
            JoinType::LeftSemi,
            JoinStrategy::Hash,
        ),
        JoinShape::IndexNested => scan.join(
            LogicalPlan::scan(ScanSpec::new("r", Predicate::True)),
            1,
            1,
            JoinType::Inner,
            JoinStrategy::IndexNestedLoop,
        ),
    };
    match agg {
        AggShape::None => joined,
        AggShape::ExactGrouped => {
            joined.aggregate(vec![1], vec![AggFunc::CountStar, AggFunc::Min(0), AggFunc::Max(0)])
        }
        AggShape::FloatAvg => joined.aggregate(vec![1], vec![AggFunc::Avg(0), AggFunc::CountStar]),
        AggShape::Scalar => joined.aggregate(vec![], vec![AggFunc::CountStar, AggFunc::Sum(0)]),
    }
}

/// The per-run I/O counters that must match exactly between drivers
/// (`distinct_pages` is a monotone per-database set, so its *delta*
/// differs between a first and a repeated run of the same query).
fn io_key(io: &IoStatsDelta) -> (u64, u64, u64, u64, u64) {
    (io.io_requests, io.pages_read, io.seq_pages, io.rand_pages, io.buffer_hits)
}

/// Cold-run through the Volcano row-at-a-time oracle on a fresh database.
///
/// Every driver run in this suite gets its own (deterministically
/// identical) database: the disk model classifies a transfer as
/// sequential when it physically continues the previous one, so two runs
/// sharing one database are *not* independent — the second run's first
/// transfer may continue the first run's last page. Fresh databases make
/// each measurement exactly the cold run the serial driver would see.
fn run_volcano(plan: &LogicalPlan) -> QueryResult {
    run_volcano_budgeted(plan, 0)
}

/// [`run_volcano`] under an explicit per-operator memory budget in
/// bytes (0 = unlimited).
fn run_volcano_budgeted(plan: &LogicalPlan, budget: usize) -> QueryResult {
    let mut db = database(900);
    db.set_mem_bytes(budget);
    let mut op = db.build(plan).expect("plan builds");
    db.storage().flush_pool();
    let clock0 = db.storage().clock().snapshot();
    let io0 = db.storage().io_snapshot();
    let rows = collect_rows_volcano(op.as_mut()).expect("volcano run");
    let stats = RunStats {
        rows: rows.len() as u64,
        clock: db.storage().clock().snapshot().since(&clock0),
        io: db.storage().io_snapshot().since(&io0),
    };
    QueryResult { rows, stats, scan: Default::default() }
}

/// Cold-run through `Database::run` at a fixed worker count, again on a
/// fresh database.
fn run_with_workers(plan: &LogicalPlan, workers: usize) -> QueryResult {
    run_budgeted(plan, workers, 0)
}

/// [`run_with_workers`] under an explicit per-operator memory budget.
fn run_budgeted(plan: &LogicalPlan, workers: usize, budget: usize) -> QueryResult {
    let mut db = database(900);
    db.set_workers(workers);
    db.set_mem_bytes(budget);
    db.run(plan).expect("driver run")
}

/// [`run_with_workers`] with a forced per-claim chunk size
/// (`Database::set_claim_morsels`): small chunks at high worker counts
/// drain the source early and force the work-stealing path, large
/// chunks pile morsels onto few queues and force steals from the back.
fn run_chunked(plan: &LogicalPlan, workers: usize, claim: usize) -> QueryResult {
    let mut db = database(900);
    db.set_workers(workers);
    db.set_claim_morsels(claim);
    db.run(plan).expect("driver run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Rows, virtual clock and I/O counters are identical across the
    /// Volcano, columnar and parallel drivers for random plans.
    #[test]
    fn drivers_agree_on_random_plans(
        access in access_strategy(),
        lo in 0i64..300,
        width in 0i64..330,
        residual in prop_oneof![2 => Just(None), 1 => (0i64..900).prop_map(Some)],
        join in join_strategy(),
        agg in agg_strategy(),
    ) {
        let plan = plan_for(&access, lo, width, residual, join, agg);
        let context = format!("{access:?} lo={lo} width={width} res={residual:?} {join:?} {agg:?}");

        // Oracle: the Volcano row-at-a-time driver.
        let volcano = run_volcano(&plan);

        // Single-threaded columnar driver.
        let columnar = run_with_workers(&plan, 1);
        prop_assert!(columnar.rows == volcano.rows, "columnar rows diverge: {context}");
        prop_assert!(
            (columnar.stats.clock.cpu_ns, columnar.stats.clock.io_ns)
                == (volcano.stats.clock.cpu_ns, volcano.stats.clock.io_ns),
            "columnar clock diverges: {context} ({:?} vs {:?})",
            columnar.stats.clock,
            volcano.stats.clock
        );
        prop_assert!(
            io_key(&columnar.stats.io) == io_key(&volcano.stats.io),
            "columnar I/O diverges: {context}"
        );

        // Parallel driver at every worker count.
        for workers in WORKER_GRID {
            let parallel = run_with_workers(&plan, workers);
            prop_assert!(
                parallel.rows == volcano.rows,
                "parallel rows diverge at {workers} workers: {context}"
            );
            prop_assert!(
                (parallel.stats.clock.cpu_ns, parallel.stats.clock.io_ns)
                    == (volcano.stats.clock.cpu_ns, volcano.stats.clock.io_ns),
                "parallel clock diverges at {workers} workers: {context} ({:?} vs {:?})",
                parallel.stats.clock,
                volcano.stats.clock
            );
            prop_assert!(
                io_key(&parallel.stats.io) == io_key(&volcano.stats.io),
                "parallel I/O diverges at {workers} workers: {context}"
            );
        }
    }

    /// Ordered Smooth Scan with Result-Cache spilling: the PR 3 latent
    /// divergence regime, pinned across drivers and spill thresholds.
    #[test]
    fn drivers_agree_on_ordered_smooth_scan_with_spill(
        lo in 0i64..200,
        width in 1i64..300,
        spill in 10usize..200,
        partitions in 2usize..24,
    ) {
        let mut cfg = SmoothScanConfig::default().with_order(true);
        cfg.result_cache_spill = Some(spill);
        cfg.result_cache_partitions = partitions;
        let plan = plan_for(&AccessPathChoice::Smooth(cfg), lo, width, None,
            JoinShape::None, AggShape::None);
        let volcano = run_volcano(&plan);
        let columnar = run_with_workers(&plan, 1);
        prop_assert!(columnar.rows == volcano.rows, "rows diverge (spill={spill})");
        prop_assert!(
            (columnar.stats.clock.cpu_ns, columnar.stats.clock.io_ns)
                == (volcano.stats.clock.cpu_ns, volcano.stats.clock.io_ns),
            "ordered+spill clock diverges (spill={spill}, partitions={partitions}): {:?} vs {:?}",
            columnar.stats.clock,
            volcano.stats.clock
        );
        for workers in [2usize, 8] {
            let parallel = run_with_workers(&plan, workers);
            prop_assert!(parallel.rows == volcano.rows);
            prop_assert!(
                (parallel.stats.clock.cpu_ns, parallel.stats.clock.io_ns)
                    == (volcano.stats.clock.cpu_ns, volcano.stats.clock.io_ns),
                "parallel ordered+spill clock diverges at {workers} workers"
            );
        }
    }

    /// Larger-than-memory legs: tiny per-operator budgets force grace
    /// hash-join spills (and, under the sort wrap, external-sort runs).
    /// Rows must stay byte-identical to the unbudgeted run, and every
    /// driver must charge identical clock and I/O under the *same*
    /// budget — spill accounting may not depend on who does the work.
    #[test]
    fn drivers_agree_under_spilling_budgets(
        budget in prop_oneof![Just(512usize), Just(4096usize), Just(1usize << 20)],
        lo in 0i64..300,
        width in 30i64..330,
        semi in any::<bool>(),
        sorted in any::<bool>(),
    ) {
        let join = if semi { JoinShape::HashSemi } else { JoinShape::HashInner };
        let mut plan =
            plan_for(&AccessPathChoice::ForceFull, lo, width, None, join, AggShape::None);
        if sorted {
            plan = plan.sort(vec![SortKey::asc(2), SortKey::asc(0)]);
        }
        let context = format!("budget={budget} lo={lo} width={width} {join:?} sorted={sorted}");

        let free = run_volcano(&plan);
        let volcano = run_volcano_budgeted(&plan, budget);
        prop_assert!(volcano.rows == free.rows, "budget changed the rows: {context}");
        prop_assert!(
            volcano.stats.clock.io_ns >= free.stats.clock.io_ns,
            "spill can only add I/O-lane time: {context}"
        );

        let columnar = run_budgeted(&plan, 1, budget);
        prop_assert!(columnar.rows == volcano.rows, "budgeted columnar rows diverge: {context}");
        prop_assert!(
            (columnar.stats.clock.cpu_ns, columnar.stats.clock.io_ns)
                == (volcano.stats.clock.cpu_ns, volcano.stats.clock.io_ns),
            "budgeted columnar clock diverges: {context} ({:?} vs {:?})",
            columnar.stats.clock,
            volcano.stats.clock
        );
        prop_assert!(
            io_key(&columnar.stats.io) == io_key(&volcano.stats.io),
            "budgeted columnar I/O diverges: {context}"
        );
        for workers in WORKER_GRID {
            let parallel = run_budgeted(&plan, workers, budget);
            prop_assert!(
                parallel.rows == volcano.rows,
                "budgeted parallel rows diverge at {workers} workers: {context}"
            );
            prop_assert!(
                (parallel.stats.clock.cpu_ns, parallel.stats.clock.io_ns)
                    == (volcano.stats.clock.cpu_ns, volcano.stats.clock.io_ns),
                "budgeted parallel clock diverges at {workers} workers: {context} ({:?} vs {:?})",
                parallel.stats.clock,
                volcano.stats.clock
            );
            prop_assert!(
                io_key(&parallel.stats.io) == io_key(&volcano.stats.io),
                "budgeted parallel I/O diverges at {workers} workers: {context}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Work-stealing legs: forced chunk sizes × worker counts. A fixed
    /// claim of 1 maximizes source-lock interleaving; larger claims
    /// queue runs of morsels on one worker's deque so dry peers must
    /// steal. Rows, clock and I/O must equal the Volcano oracle under
    /// every combination — stealing changes who holds a morsel, never
    /// what the engine is charged for.
    #[test]
    fn drivers_agree_under_forced_chunk_sizes(
        access in access_strategy(),
        lo in 0i64..300,
        width in 0i64..330,
        join in join_strategy(),
        agg in agg_strategy(),
        claim in prop_oneof![Just(1usize), Just(2usize), Just(7usize), Just(64usize)],
    ) {
        let plan = plan_for(&access, lo, width, None, join, agg);
        let context = format!("{access:?} lo={lo} width={width} {join:?} {agg:?} claim={claim}");
        let volcano = run_volcano(&plan);
        for workers in WORKER_GRID {
            let parallel = run_chunked(&plan, workers, claim);
            prop_assert!(
                parallel.rows == volcano.rows,
                "chunked rows diverge at {workers} workers: {context}"
            );
            prop_assert!(
                (parallel.stats.clock.cpu_ns, parallel.stats.clock.io_ns)
                    == (volcano.stats.clock.cpu_ns, volcano.stats.clock.io_ns),
                "chunked clock diverges at {workers} workers: {context} ({:?} vs {:?})",
                parallel.stats.clock,
                volcano.stats.clock
            );
            prop_assert!(
                io_key(&parallel.stats.io) == io_key(&volcano.stats.io),
                "chunked I/O diverges at {workers} workers: {context}"
            );
        }
    }
}

/// `ordered:` heap-range scans no longer take the serial shared-source
/// fallback: the planner lowers them to the partitioned heap source
/// with a `Sort` sink, and rows/clock/IO equal the serial drivers at
/// every worker count and chunk size (guided and forced).
#[test]
fn ordered_scans_parallelize_with_sort_sink() {
    let plan = LogicalPlan::scan(
        ScanSpec::new("t", Predicate::int_half_open(1, 40, 40 + 220))
            .with_order()
            .with_access(AccessPathChoice::ForceFull),
    );
    let db = database(900);
    let pipeline = db
        .parallel_pipeline(&plan)
        .expect("plan builds")
        .expect("ordered heap scan must produce a parallel pipeline, not the serial fallback");
    assert!(
        matches!(pipeline.source, ParallelSource::Heap { .. }),
        "ordered scan must keep the partitioned heap source"
    );
    assert!(
        matches!(pipeline.sink, SinkSpec::Sort { .. }),
        "ordered scan must merge through the charged sort sink"
    );

    let volcano = run_volcano(&plan);
    for workers in WORKER_GRID {
        for claim in [0usize, 1, 3] {
            let got = run_chunked(&plan, workers, claim);
            assert_eq!(got.rows, volcano.rows, "rows diverge at {workers}w claim={claim}");
            assert_eq!(
                (got.stats.clock.cpu_ns, got.stats.clock.io_ns),
                (volcano.stats.clock.cpu_ns, volcano.stats.clock.io_ns),
                "clock diverges at {workers}w claim={claim}"
            );
            assert_eq!(
                io_key(&got.stats.io),
                io_key(&volcano.stats.io),
                "I/O diverges at {workers}w claim={claim}"
            );
        }
    }
}

/// Pad-heavy database: Text columns dominate every tuple (one fixed
/// 80-byte pad plus one variable-length tail), so these legs push the
/// zero-copy text-view path — page-backed decode, cross-operator
/// handoff, ordered sink merge — through every driver. Fresh per run,
/// for the same cold-run independence as [`database`].
fn text_database() -> Database {
    let mut db = Database::new(StorageConfig {
        device: DeviceProfile::custom("t", 1, 10),
        cpu: CpuCosts::default(),
        pool_pages: 48,
    });
    let schema = Schema::new(vec![
        Column::new("c0", DataType::Int64),
        Column::new("c1", DataType::Int64),
        Column::new("pad", DataType::Text),
        Column::new("tail", DataType::Text),
    ])
    .unwrap();
    db.load_table(
        "t",
        schema.clone(),
        (0..1000).map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Int(scramble(i, 1000)),
                Value::str("p".repeat(80)),
                Value::str(format!("tail-{i:04}-{}", "y".repeat((i % 17) as usize))),
            ])
        }),
    )
    .unwrap();
    db.load_table(
        "r",
        schema,
        (0..300).map(|i| {
            Row::new(vec![
                Value::Int(scramble(i, 1000)),
                Value::Int(i),
                Value::str("q".repeat(64)),
                Value::str(format!("r{i}")),
            ])
        }),
    )
    .unwrap();
    db
}

/// Volcano oracle over [`text_database`] under a memory budget
/// (0 = unlimited).
fn text_volcano(plan: &LogicalPlan, budget: usize) -> QueryResult {
    let mut db = text_database();
    db.set_mem_bytes(budget);
    let mut op = db.build(plan).expect("plan builds");
    db.storage().flush_pool();
    let clock0 = db.storage().clock().snapshot();
    let io0 = db.storage().io_snapshot();
    let rows = collect_rows_volcano(op.as_mut()).expect("volcano run");
    let stats = RunStats {
        rows: rows.len() as u64,
        clock: db.storage().clock().snapshot().since(&clock0),
        io: db.storage().io_snapshot().since(&io0),
    };
    QueryResult { rows, stats, scan: Default::default() }
}

/// `Database::run` over [`text_database`] at a worker count and budget.
fn text_run(plan: &LogicalPlan, workers: usize, budget: usize) -> QueryResult {
    let mut db = text_database();
    db.set_workers(workers);
    db.set_mem_bytes(budget);
    db.run(plan).expect("driver run")
}

/// Text-heavy scans at 1% / 10% / 100% selectivity: the zero-copy view
/// decode path must be accounting-invisible. Rows (with their text
/// payloads), virtual clock and I/O counters are identical across the
/// Volcano oracle, the columnar driver and the parallel driver at
/// every worker count — views change where string bytes live, never
/// what the query returns or is charged.
#[test]
fn text_heavy_scans_agree_across_drivers() {
    // c1 = scramble(i, 1000) over 1000 rows: width w selects ~w/1000.
    for width in [10i64, 100, 1000] {
        for access in [AccessPathChoice::ForceFull, AccessPathChoice::Auto] {
            let plan = LogicalPlan::scan(
                ScanSpec::new("t", Predicate::int_half_open(1, 0, width))
                    .with_access(access.clone()),
            );
            let context = format!("width={width} {access:?}");
            let volcano = text_volcano(&plan, 0);
            assert!(!volcano.rows.is_empty(), "{context} selects nothing");
            // The text payload really flows through the drivers.
            assert!(volcano.rows.iter().all(|r| r.str(2).unwrap().len() == 80), "{context}");
            for workers in [1usize, 2, 4, 8] {
                let got = text_run(&plan, workers, 0);
                assert_eq!(got.rows, volcano.rows, "text rows diverge at {workers}w: {context}");
                assert_eq!(
                    (got.stats.clock.cpu_ns, got.stats.clock.io_ns),
                    (volcano.stats.clock.cpu_ns, volcano.stats.clock.io_ns),
                    "text clock diverges at {workers}w: {context}"
                );
                assert_eq!(
                    io_key(&got.stats.io),
                    io_key(&volcano.stats.io),
                    "text I/O diverges at {workers}w: {context}"
                );
            }
        }
    }
}

/// Spill-under-views legs: a tiny per-operator budget forces the grace
/// hash join (and, sorted, the external sort) to run text through the
/// copy-on-spill codec — views may never leak a page pin into an
/// overflow file. Rows stay byte-identical to the unbudgeted run and
/// every driver charges the same clock and I/O under the same budget.
#[test]
fn text_heavy_spill_legs_agree_under_views() {
    for sorted in [false, true] {
        let mut plan = LogicalPlan::scan(
            ScanSpec::new("t", Predicate::int_half_open(1, 0, 400))
                .with_access(AccessPathChoice::ForceFull),
        )
        .join(
            LogicalPlan::scan(ScanSpec::new("r", Predicate::True)),
            1,
            0,
            JoinType::Inner,
            JoinStrategy::Hash,
        );
        if sorted {
            plan = plan.sort(vec![SortKey::asc(1), SortKey::asc(0)]);
        }
        let context = format!("sorted={sorted}");
        let free = text_volcano(&plan, 0);
        assert!(!free.rows.is_empty(), "{context} selects nothing");
        let budget = 4096;
        let volcano = text_volcano(&plan, budget);
        assert_eq!(volcano.rows, free.rows, "budget changed the rows: {context}");
        assert!(
            volcano.stats.clock.io_ns > free.stats.clock.io_ns,
            "text join under a 4 KiB budget must actually spill: {context}"
        );
        for workers in [1usize, 2, 4, 8] {
            let got = text_run(&plan, workers, budget);
            assert_eq!(got.rows, volcano.rows, "spill rows diverge at {workers}w: {context}");
            assert_eq!(
                (got.stats.clock.cpu_ns, got.stats.clock.io_ns),
                (volcano.stats.clock.cpu_ns, volcano.stats.clock.io_ns),
                "spill clock diverges at {workers}w: {context}"
            );
            assert_eq!(
                io_key(&got.stats.io),
                io_key(&volcano.stats.io),
                "spill I/O diverges at {workers}w: {context}"
            );
        }
    }
}

/// Bushy trees: a hash join whose build side is itself a hash join
/// resolves its nested probe stage inside the build pipeline and
/// parallelizes end to end, byte- and charge-identical to the serial
/// drivers.
#[test]
fn bushy_hash_joins_agree_across_drivers() {
    let inner = LogicalPlan::scan(ScanSpec::new("r", Predicate::int_lt(2, 250))).join(
        LogicalPlan::scan(ScanSpec::new("t", Predicate::int_half_open(1, 0, 150))),
        1,
        1,
        JoinType::Inner,
        JoinStrategy::Hash,
    );
    let plan = LogicalPlan::scan(ScanSpec::new("t", Predicate::int_half_open(1, 30, 30 + 200)))
        .join(inner, 1, 0, JoinType::Inner, JoinStrategy::Hash);

    let volcano = run_volcano(&plan);
    for workers in WORKER_GRID {
        for claim in [0usize, 1] {
            let got = run_chunked(&plan, workers, claim);
            assert_eq!(got.rows, volcano.rows, "bushy rows diverge at {workers}w claim={claim}");
            assert_eq!(
                (got.stats.clock.cpu_ns, got.stats.clock.io_ns),
                (volcano.stats.clock.cpu_ns, volcano.stats.clock.io_ns),
                "bushy clock diverges at {workers}w claim={claim}"
            );
            assert_eq!(
                io_key(&got.stats.io),
                io_key(&volcano.stats.io),
                "bushy I/O diverges at {workers}w claim={claim}"
            );
        }
    }
}
