//! Chaos differential property suite: proptest-generated plans run
//! under seeded deterministic fault injection (`SMOOTH_FAULTS` /
//! [`FaultConfig`]) and must obey the engine's fault contract:
//!
//! 1. **Faults never corrupt results.** A query that completes under
//!    injected faults (transient errors retried away) returns exactly
//!    the rows its fault-free run returns — byte for byte.
//! 2. **Outcomes are deterministic and replayable.** The same seed on
//!    the same database yields the same outcome — same rows or same
//!    error variant — at every worker count and across repeated runs,
//!    because every fault draw is a pure hash of the seed and the
//!    operation's stable coordinates (never wall clock or thread
//!    interleaving).
//! 3. **Failure is isolated.** With one session poisoned (faults scoped
//!    to its table's file), the other concurrent sessions' rows are
//!    byte-identical to their solo fault-free runs.
//! 4. **Failure is clean.** A failed query surfaces one typed error
//!    ([`Error::Faulted`], [`Error::Corrupt`], injected-panic
//!    [`Error::Exec`]) — it never hangs the pool and never leaks
//!    overflow files.
//!
//! Worker-count equivalence holds for I/O-level faults at *every* width
//! because page-run draws happen at source-claim time, serialized in
//! sequence order. Morsel panics only exist under the worker pool
//! (`workers >= 2` with a parallelizable plan), so panic legs compare
//! pool widths only.
//!
//! Every database built here installs its fault config explicitly
//! (including `None`), so a process-global `SMOOTH_FAULTS` (the CI
//! fault leg sets one) can never bleed into a reference run.

use std::mem::discriminant;

use proptest::prelude::*;
use smooth_planner::{AccessPathChoice, Database, JoinStrategy, LogicalPlan, ScanSpec};
use smooth_storage::{CpuCosts, DeviceProfile, FaultConfig, StorageConfig};
use smoothscan::executor::SpillFile;
use smoothscan::prelude::{
    AggFunc, Column, DataType, Error, JoinType, PolicyKind, Predicate, Row, Schema,
    SmoothScanConfig, Value,
};

/// Deterministic pseudo-random column: spreads keys over [0, domain).
fn scramble(i: i64, domain: i64) -> i64 {
    ((i.wrapping_mul(2654435761)) % domain + domain) % domain
}

/// The `prop_concurrent` two-table database plus a third table `p` —
/// the poisoning target for the scoped-fault legs. Constructions are
/// deterministic, but file ids are process-global, so fault draws only
/// replay *within* one database instance; cross-instance comparisons
/// must be against fault-free references.
fn database(rows: i64) -> Database {
    let mut db = Database::new(StorageConfig {
        device: DeviceProfile::custom("t", 1, 10),
        cpu: CpuCosts::default(),
        pool_pages: 48,
    });
    // Whatever SMOOTH_FAULTS installed at construction, this suite
    // controls fault configs explicitly per test.
    db.set_faults(None);
    let schema = Schema::new(vec![
        Column::new("c0", DataType::Int64),
        Column::new("c1", DataType::Int64),
        Column::nullable("c2", DataType::Int64),
        Column::new("pad", DataType::Text),
    ])
    .unwrap();
    db.load_table(
        "t",
        schema.clone(),
        (0..rows).map(|i| {
            let c2 = if i % 11 == 0 { Value::Null } else { Value::Int(scramble(i * 7, 500)) };
            Row::new(vec![
                Value::Int(i),
                Value::Int(scramble(i, 300)),
                c2,
                Value::str("x".repeat(24)),
            ])
        }),
    )
    .unwrap();
    db.create_index("t", 1, "t_c1").unwrap();
    db.load_table(
        "r",
        schema.clone(),
        (0..rows / 3).map(|i| {
            Row::new(vec![
                Value::Int(scramble(i, 300)),
                Value::Int(scramble(i + 13, 300)),
                Value::Int(i),
                Value::str(format!("r{i}")),
            ])
        }),
    )
    .unwrap();
    db.create_index("r", 1, "r_c1").unwrap();
    db.load_table(
        "p",
        schema,
        (0..rows / 2).map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Int(scramble(i + 7, 300)),
                Value::Int(scramble(i, 100)),
                Value::str("p".repeat(16)),
            ])
        }),
    )
    .unwrap();
    db.create_index("p", 1, "p_c1").unwrap();
    db
}

#[derive(Debug, Clone)]
struct PlanShape {
    access: AccessPathChoice,
    lo: i64,
    width: i64,
    join: bool,
    agg: bool,
}

fn shape_strategy() -> impl Strategy<Value = PlanShape> {
    (
        prop_oneof![
            3 => Just(AccessPathChoice::ForceFull),
            1 => Just(AccessPathChoice::ForceIndex),
            1 => Just(AccessPathChoice::ForceSort),
            1 => (0usize..3).prop_map(|i| {
                let policy =
                    [PolicyKind::Greedy, PolicyKind::SelectivityIncrease, PolicyKind::Elastic][i];
                AccessPathChoice::Smooth(SmoothScanConfig::default().with_policy(policy))
            }),
        ],
        0i64..300,
        1i64..330,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(access, lo, width, join, agg)| PlanShape { access, lo, width, join, agg })
}

fn plan_for(shape: &PlanShape) -> LogicalPlan {
    let pred = Predicate::int_half_open(1, shape.lo, shape.lo + shape.width);
    let scan = LogicalPlan::scan(ScanSpec::new("t", pred).with_access(shape.access.clone()));
    let joined = if shape.join {
        scan.join(
            LogicalPlan::scan(ScanSpec::new("r", Predicate::True)),
            1,
            0,
            JoinType::Inner,
            JoinStrategy::Hash,
        )
    } else {
        scan
    };
    if shape.agg {
        joined.aggregate(vec![1], vec![AggFunc::CountStar, AggFunc::Min(0), AggFunc::Max(0)])
    } else {
        joined
    }
}

/// A deterministic fault mix. Probabilities are kept in a band where
/// both survivals (retried transients) and failures occur across seeds.
#[derive(Debug, Clone, Copy)]
struct FaultMix {
    seed: u64,
    io_err: f64,
    corrupt: f64,
    spill_err: f64,
    panic: f64,
}

impl FaultMix {
    fn config(&self) -> FaultConfig {
        FaultConfig::new(self.seed)
            .io_err(self.io_err)
            .corrupt(self.corrupt)
            .spill_err(self.spill_err)
            .panic(self.panic)
    }
}

fn mix_strategy() -> impl Strategy<Value = FaultMix> {
    (
        any::<u64>(),
        prop_oneof![2 => Just(0.0), 2 => Just(0.05), 1 => Just(0.4)],
        prop_oneof![3 => Just(0.0), 1 => Just(0.02)],
        prop_oneof![2 => Just(0.0), 1 => Just(0.3)],
        prop_oneof![2 => Just(0.0), 1 => Just(0.05)],
    )
        .prop_map(|(seed, io_err, corrupt, spill_err, panic)| FaultMix {
            seed,
            io_err,
            corrupt,
            spill_err,
            panic,
        })
}

/// One run's outcome, comparable across runs: the exact rows on
/// success, the error variant on failure (messages may embed morsel
/// keys, but the variant — and for `Faulted` the attempt count — must
/// replay).
#[derive(Debug)]
enum Outcome {
    Rows(Vec<Row>),
    Failed(Error),
}

impl PartialEq for Outcome {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Outcome::Rows(a), Outcome::Rows(b)) => a == b,
            (Outcome::Failed(a), Outcome::Failed(b)) => discriminant(a) == discriminant(b),
            _ => false,
        }
    }
}

fn outcome(db: &Database, plan: &LogicalPlan) -> Outcome {
    match db.run(plan) {
        Ok(out) => Outcome::Rows(out.rows),
        Err(e) => Outcome::Failed(e),
    }
}

/// Wait (bounded) for the process-wide live overflow-file count to
/// drain back to `baseline`. Other tests in this binary may hold spill
/// files transiently, so a momentary mismatch is retried; a *leak*
/// stays forever and fails the assertion.
fn assert_spills_drain_to(baseline: isize) {
    for _ in 0..200 {
        if SpillFile::live_count() <= baseline {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("leaked spill files: {} live, baseline {}", SpillFile::live_count(), baseline);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Properties 1 + 2: under a random seeded fault mix, every run of
    /// a plan either returns exactly its fault-free rows or fails with
    /// a typed error — and the outcome is identical across worker
    /// counts and repeated runs on the same database.
    #[test]
    fn fault_outcomes_replay_and_never_corrupt_rows(
        shape in shape_strategy(),
        mix in mix_strategy(),
    ) {
        let plan = plan_for(&shape);
        // Fault-free reference, serial driver, fresh database.
        let reference = {
            let mut db = database(900);
            db.set_workers(1);
            db.run(&plan).expect("fault-free reference").rows
        };
        let mut db = database(900);
        db.set_faults(Some(mix.config()));
        // Morsel panics exist only under the pool: the serial leg is
        // only outcome-comparable when the mix draws none.
        let grid: &[usize] = if mix.panic > 0.0 { &[2, 4, 8] } else { &[1, 2, 4, 8] };
        let mut first: Option<Outcome> = None;
        for &workers in grid {
            db.set_workers(workers);
            let got = outcome(&db, &plan);
            if let Outcome::Rows(rows) = &got {
                prop_assert!(
                    rows == &reference,
                    "survived run diverged from fault-free rows at {workers} workers ({shape:?}, {mix:?})"
                );
            }
            if let Outcome::Failed(e) = &got {
                prop_assert!(
                    matches!(
                        e,
                        Error::Faulted { .. } | Error::Corrupt(_) | Error::Io(_) | Error::Exec(_)
                    ),
                    "fault surfaced as untyped error {e:?} ({shape:?}, {mix:?})"
                );
            }
            match &first {
                None => first = Some(got),
                Some(expected) => prop_assert!(
                    &got == expected,
                    "outcome changed across worker counts: {expected:?} vs {got:?} at {workers} workers ({shape:?}, {mix:?})"
                ),
            }
            // Replay: the same plan on the same database draws the same
            // faults — cold runs flush the pool, and draws are pure
            // functions of stable coordinates.
            let again = outcome(&db, &plan);
            prop_assert!(
                Some(&again) == first.as_ref(),
                "replay diverged at {workers} workers ({shape:?}, {mix:?})"
            );
        }
    }

    /// Property 3: four concurrent sessions, one poisoned via faults
    /// scoped to its table's heap file. The three clean sessions must
    /// return rows byte-identical to their solo fault-free runs; the
    /// poisoned one either survives (exact rows) or fails typed.
    #[test]
    fn poisoned_session_cannot_perturb_the_others(
        shapes in proptest::collection::vec(shape_strategy(), 3..4),
        seed in any::<u64>(),
        io_err in prop_oneof![Just(0.1), Just(1.0)],
        panic in prop_oneof![Just(0.0), Just(0.1)],
    ) {
        let poison_plan =
            LogicalPlan::scan(ScanSpec::new("p", Predicate::int_half_open(1, 0, 200)))
                .aggregate(vec![], vec![AggFunc::CountStar, AggFunc::Sum(0)]);
        // Solo fault-free references on fresh databases.
        let solo: Vec<Vec<Row>> = shapes
            .iter()
            .map(|shape| {
                let mut db = database(900);
                db.set_workers(1);
                db.run(&plan_for(shape)).expect("solo run").rows
            })
            .collect();
        let mut db = database(900);
        db.set_workers(4);
        let poison_reference = {
            db.set_workers(1);
            let rows = db.run(&poison_plan).expect("poison reference").rows;
            db.set_workers(4);
            rows
        };
        let poison_file = db.table("p").unwrap().heap.file_id();
        db.set_faults(Some(
            FaultConfig::new(seed).io_err(io_err).panic(panic).scope_to_file(poison_file),
        ));
        let (clean_results, poisoned) = std::thread::scope(|scope| {
            let clean: Vec<_> = shapes
                .iter()
                .map(|shape| {
                    let db = &db;
                    let plan = plan_for(shape);
                    scope.spawn(move || db.session().run(&plan).expect("clean session").rows)
                })
                .collect();
            let db = &db;
            let poison_plan = &poison_plan;
            let poisoned = scope.spawn(move || match db.session().run(poison_plan) {
                Ok(out) => Outcome::Rows(out.rows),
                Err(e) => Outcome::Failed(e),
            });
            (
                clean.into_iter().map(|h| h.join().expect("clean thread")).collect::<Vec<_>>(),
                poisoned.join().expect("poisoned thread"),
            )
        });
        for (i, rows) in clean_results.iter().enumerate() {
            prop_assert!(
                rows == &solo[i],
                "clean session {i} perturbed by the poisoned one ({:?})",
                shapes[i]
            );
        }
        match poisoned {
            Outcome::Rows(rows) => prop_assert!(
                rows == poison_reference,
                "poisoned session survived but with wrong rows"
            ),
            Outcome::Failed(e) => prop_assert!(
                matches!(e, Error::Faulted { .. } | Error::Corrupt(_) | Error::Exec(_)),
                "poisoned session failed untyped: {e:?}"
            ),
        }
        // The engine still serves queries after the poisoned failure.
        db.set_faults(None);
        prop_assert!(db.run(&poison_plan).is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Work-stealing legs of the chaos contract: a forced per-claim
    /// chunk size (`set_claim_morsels`) queues runs of morsels on one
    /// worker's deque so dry peers steal them — fault draws must not
    /// care. Page-run draws happen at claim time in serial seq order
    /// and morsel-panic keys are pure functions of (phase, seq), so a
    /// stolen morsel hits exactly the faults its locally-processed
    /// twin would: survived runs return the fault-free rows, failures
    /// stay typed, and the same settings replay exactly.
    #[test]
    fn fault_contract_holds_under_forced_chunk_sizes(
        shape in shape_strategy(),
        mix in mix_strategy(),
        claim in prop_oneof![Just(1usize), Just(4usize), Just(64usize)],
    ) {
        let plan = plan_for(&shape);
        let reference = {
            let mut db = database(900);
            db.set_workers(1);
            db.run(&plan).expect("fault-free reference").rows
        };
        let mut db = database(900);
        db.set_faults(Some(mix.config()));
        db.set_claim_morsels(claim);
        for workers in [2usize, 4, 8] {
            db.set_workers(workers);
            let got = outcome(&db, &plan);
            match &got {
                Outcome::Rows(rows) => prop_assert!(
                    rows == &reference,
                    "survived chunked run diverged at {workers} workers claim={claim} ({shape:?}, {mix:?})"
                ),
                Outcome::Failed(e) => prop_assert!(
                    matches!(
                        e,
                        Error::Faulted { .. } | Error::Corrupt(_) | Error::Io(_) | Error::Exec(_)
                    ),
                    "chunked fault surfaced untyped: {e:?} ({shape:?}, {mix:?})"
                ),
            }
            let again = outcome(&db, &plan);
            prop_assert!(
                again == got,
                "chunked replay diverged at {workers} workers claim={claim} ({shape:?}, {mix:?})"
            );
        }
    }
}

/// Panic containment composes with stealing: a huge forced claim puts
/// the whole scan on the claiming worker's deque, so the other three
/// workers can only contribute by stealing from its back — and with
/// panics injected on every morsel of the scanned file, whichever
/// worker processes a morsel (locally popped or stolen) panics. The
/// query must fail with the typed injected-panic error, leak nothing,
/// and leave the pool serving clean queries; a chunk size of 1 (no
/// surplus to steal) must reach the same typed outcome.
#[test]
fn panics_during_steals_contain_and_clean_up() {
    let mut db = database(900);
    db.set_workers(4);
    let file = db.table("t").unwrap().heap.file_id();
    let plan = plan_for(&PlanShape {
        access: AccessPathChoice::ForceFull,
        lo: 0,
        width: 300,
        join: false,
        agg: true,
    });
    db.set_faults(Some(FaultConfig::new(31).panic(1.0).scope_to_file(file)));
    let baseline = SpillFile::live_count();
    for claim in [64usize, 1] {
        db.set_claim_morsels(claim);
        let err = db.run(&plan).unwrap_err();
        assert!(matches!(err, Error::Exec(_)), "claim={claim}: {err}");
        assert_spills_drain_to(baseline);
    }
    db.set_faults(None);
    assert!(!db.run(&plan).unwrap().rows.is_empty(), "pool must survive contained panics");
}

/// Property 4, deterministically: spill-write faults under a tiny
/// memory budget fail mid-spill without leaking overflow files, and a
/// milder mix that survives retries leaks nothing either.
#[test]
fn failed_and_retried_spills_leak_no_files() {
    let join = LogicalPlan::scan(ScanSpec::new("t", Predicate::int_half_open(1, 0, 250)))
        .join(
            LogicalPlan::scan(ScanSpec::new("r", Predicate::True)),
            1,
            0,
            JoinType::Inner,
            JoinStrategy::Hash,
        )
        .sort(vec![smoothscan::prelude::SortKey::asc(0)]);
    let mut db = database(900);
    db.set_mem_bytes(4096);
    db.set_workers(1);
    let reference = db.run(&join).expect("budgeted fault-free run").rows;
    assert!(!reference.is_empty());
    for workers in [1usize, 4] {
        db.set_workers(workers);
        let baseline = SpillFile::live_count();
        // Certain spill failure: the query dies with the typed variant.
        db.set_faults(Some(FaultConfig::new(17).spill_err(1.0)));
        let err = db.run(&join).unwrap_err();
        assert!(matches!(err, Error::Faulted { .. }), "{err}");
        assert_spills_drain_to(baseline);
        // Sparse spill failure: deterministic per (seed, coordinates) —
        // whether it survives retries with exact rows or fails typed,
        // nothing leaks either way.
        db.set_faults(Some(FaultConfig::new(18).spill_err(0.3)));
        match db.run(&join) {
            Ok(out) => assert_eq!(out.rows, reference, "survived run must be exact"),
            Err(e) => assert!(matches!(e, Error::Faulted { .. }), "{e}"),
        }
        assert_spills_drain_to(baseline);
        db.set_faults(None);
    }
}

/// The CI fault leg sets a process-global `SMOOTH_FAULTS`: assert it
/// latches into every new storage instance and that runs under it
/// replay exactly. A silent no-op when the variable is absent.
#[test]
fn env_faults_latch_and_replay() {
    let Some(cfg) = FaultConfig::from_env() else { return };
    assert!(cfg.is_active(), "SMOOTH_FAULTS set but inactive: {cfg:?}");
    // database() overrides the env config for isolation; build a raw
    // one here to see the auto-installed faults.
    let mut db = Database::new(StorageConfig {
        device: DeviceProfile::custom("t", 1, 10),
        cpu: CpuCosts::default(),
        pool_pages: 48,
    });
    let schema =
        Schema::new(vec![Column::new("c0", DataType::Int64), Column::new("c1", DataType::Int64)])
            .unwrap();
    db.load_table(
        "e",
        schema,
        (0..600).map(|i| Row::new(vec![Value::Int(i), Value::Int(scramble(i, 100))])),
    )
    .unwrap();
    let plan = LogicalPlan::scan(ScanSpec::new("e", Predicate::int_half_open(1, 0, 60)));
    let first = match db.run(&plan) {
        Ok(out) => Outcome::Rows(out.rows),
        Err(e) => Outcome::Failed(e),
    };
    for workers in [1usize, 4] {
        db.set_workers(workers);
        let again = match db.run(&plan) {
            Ok(out) => Outcome::Rows(out.rows),
            Err(e) => Outcome::Failed(e),
        };
        assert!(again == first, "env-seeded faults failed to replay: {first:?} vs {again:?}");
    }
}

/// Cancellation composes with fault injection: a cancelled faulted
/// query completes (typed) without hanging, and the engine serves
/// clean queries afterwards.
#[test]
fn cancel_under_faults_never_hangs() {
    let mut db = database(900);
    db.set_workers(2);
    db.set_faults(Some(FaultConfig::new(23).io_err(0.3).panic(0.05)));
    let plan = plan_for(&PlanShape {
        access: AccessPathChoice::ForceFull,
        lo: 0,
        width: 300,
        join: true,
        agg: false,
    });
    let handle = db.submit(&plan).unwrap();
    handle.cancel();
    match handle.wait() {
        Err(Error::Cancelled | Error::Faulted { .. } | Error::Corrupt(_) | Error::Exec(_)) => {}
        Ok(_) => {}
        Err(e) => panic!("unexpected error: {e}"),
    }
    db.set_faults(None);
    assert!(!db.run(&plan).unwrap().rows.is_empty());
}
