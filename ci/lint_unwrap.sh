#!/usr/bin/env sh
# Unwrap lint for the fault-isolation surface: in the scheduler, the
# parallel pipeline and the spill codec, every `.unwrap()` / `.expect(`
# outside `#[cfg(test)]` must either be replaced with a typed error or
# sit within $WINDOW lines of an `// invariant:` comment stating why it
# cannot fire (see docs/fault_model.md). Keeps panic containment from
# silently re-growing panic sites it would then have to contain.
set -eu
cd "$(dirname "$0")/.."
WINDOW=15
status=0
for f in \
    crates/executor/src/schedule.rs \
    crates/executor/src/parallel.rs \
    crates/executor/src/spill.rs \
    crates/types/src/spill.rs; do
    bad=$(awk -v w="$WINDOW" '
        /#\[cfg\(test\)\]/ { exit }
        /\/\/ invariant:/ { last = NR }
        /\.unwrap\(\)|\.expect\(/ {
            if (last == 0 || NR - last > w) print FILENAME ":" NR ": " $0
        }
    ' "$f")
    if [ -n "$bad" ]; then
        echo "$bad"
        status=1
    fi
done
if [ "$status" -ne 0 ]; then
    echo "error: unannotated unwrap/expect in audited files —" \
        "return a typed error or add an '// invariant:' comment" >&2
fi
exit $status
