#!/usr/bin/env sh
# Markdown link checker for the repo's documentation: every relative
# link target in README.md, ROADMAP.md and docs/*.md must exist on
# disk, and every in-file `#anchor` must match a heading in the target
# file. External (http/https/mailto) links are not touched — no
# network. Keeps the docs cross-links (ARCHITECTURE.md ↔
# scheduler_v2.md ↔ fault_model.md ↔ larger_than_memory.md) from
# rotting as files move.
set -eu
cd "$(dirname "$0")/.."

status=0
for f in README.md ROADMAP.md docs/*.md; do
    [ -f "$f" ] || continue
    dir=$(dirname "$f")
    # Inline markdown links: [text](target). Reference-style links and
    # bare URLs are out of scope; code spans are filtered by requiring
    # the closing paren on the same line.
    links=$(grep -no '\[[^]]*\]([^)]*)' "$f" | sed 's/^\([0-9]*\):.*](\([^)]*\))$/\1 \2/') || true
    [ -n "$links" ] || continue
    echo "$links" | while read -r line target; do
        case "$target" in
            http://*|https://*|mailto:*) continue ;;
        esac
        anchor=${target#*#}
        path=${target%%#*}
        if [ -z "$path" ]; then
            check="$f" # same-file anchor
        else
            check="$dir/$path"
        fi
        if [ ! -e "$check" ]; then
            echo "$f:$line: broken link: $target (no such file: $check)"
            touch .link_check_failed
            continue
        fi
        # Anchor check, only for markdown targets with a fragment.
        if [ "$anchor" != "$target" ] && [ -n "$anchor" ]; then
            case "$check" in
                *.md)
                    # GitHub slug: lowercase headings, spaces -> dashes,
                    # punctuation dropped (approximation that covers the
                    # headings this repo uses).
                    found=$(sed -n 's/^#\{1,6\} \(.*\)$/\1/p' "$check" \
                        | tr '[:upper:]' '[:lower:]' \
                        | sed 's/[^a-z0-9 -]//g; s/ /-/g' \
                        | grep -cx "$anchor") || true
                    if [ "${found:-0}" -eq 0 ]; then
                        echo "$f:$line: broken anchor: $target (no heading #$anchor in $check)"
                        touch .link_check_failed
                    fi
                    ;;
            esac
        fi
    done
done

if [ -e .link_check_failed ]; then
    rm -f .link_check_failed
    echo "error: broken markdown links — fix the targets above" >&2
    status=1
fi
exit $status
