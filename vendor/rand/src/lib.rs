//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! The container has no registry access, so this path dependency provides
//! exactly what the workspace's workload generators use: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer ranges, and
//! `Rng::gen_bool`. The core generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic across platforms for a given seed, which is
//! all the workload generators require (they are seeded explicitly).

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG trait (stand-in for `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a `u64` seed (stand-in for `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// A type uniform sampling is defined for (stand-in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from the half-open range `[lo, hi)`.
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from the closed range `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore>(lo: $ty, hi: $ty, rng: &mut R) -> $ty {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $ty
            }

            fn sample_inclusive<R: RngCore>(lo: $ty, hi: $ty, rng: &mut R) -> $ty {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    fn sample_inclusive<R: RngCore>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        Self::sample_half_open(lo, hi, rng)
    }
}

/// A range that can be sampled from (stand-in for
/// `rand::distributions::uniform::SampleRange`). The two blanket impls are
/// what lets type inference flow from how the result is *used* back into
/// the range literal, exactly as with real rand.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-99_999i64..999_999);
            assert!((-99_999..999_999).contains(&v));
            let w = rng.gen_range(1i64..=7);
            assert!((1..=7).contains(&w));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1_500..2_500).contains(&hits), "p=0.2 gave {hits}/10000");
    }
}
