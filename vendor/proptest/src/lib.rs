//! Offline stand-in for the `proptest` crate.
//!
//! The container has no registry access, so this path dependency implements
//! the subset of proptest the workspace's property tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map` / `boxed`,
//! strategies for integer and float ranges, tuples, `Vec<S>`, `Just`,
//! `any::<T>()`, simple `[class]{m,n}` string patterns,
//! `proptest::collection::vec`, weighted `prop_oneof!`, and the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports its seed and case number but
//!   is not minimised.
//! - **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name (override with `PROPTEST_SEED`), so runs are reproducible
//!   across machines.
//! - Default case count is 64 (override with `PROPTEST_CASES` or
//!   `ProptestConfig::with_cases`), keeping `cargo test -q` fast.

pub mod test_runner {
    /// Error produced inside a `proptest!` body by the `prop_assert*` and
    /// `prop_assume!` macros.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The generated inputs do not satisfy a `prop_assume!` guard; the
        /// case is skipped, not failed.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Per-test configuration (subset: case count only).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
            ProptestConfig { cases }
        }
    }
}

/// The RNG handed to strategies by the `proptest!` runner.
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        use rand::SeedableRng;
        TestRng(rand::rngs::StdRng::seed_from_u64(seed))
    }

    /// Seed for a named test: `PROPTEST_SEED` if set, else a stable hash
    /// of the test name (FNV-1a), so failures reproduce across runs.
    pub fn for_test(name: &str) -> (Self, u64) {
        let seed =
            std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                h
            });
        (Self::from_seed(seed), seed)
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

pub mod strategy {
    use super::TestRng;
    use rand::Rng;

    /// A generator of values of type `Self::Value` (generate-only; no
    /// shrinking, unlike real proptest).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { source: self, whence, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy (`Strategy::boxed`).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of its payload.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        source: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.source.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 1000 candidates in a row", self.whence)
        }
    }

    /// Weighted union of boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            self.arms.last().unwrap().1.generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    /// A `Vec` of strategies generates element-wise (one value per entry).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// String patterns: a `&'static str` is interpreted as a tiny regex
    /// subset — literal characters and `[class]` atoms, each optionally
    /// followed by `{m}` or `{m,n}` repetition. Anything unparseable is
    /// emitted literally.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn expand_class(body: &str) -> Vec<char> {
        let chars: Vec<char> = body.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                for c in lo..=hi {
                    if let Some(c) = char::from_u32(c) {
                        out.push(c);
                    }
                }
                i += 3;
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        out
    }

    fn generate_pattern(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a character class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                match chars[i..].iter().position(|&c| c == ']') {
                    Some(end) => {
                        let body: String = chars[i + 1..i + end].iter().collect();
                        i += end + 1;
                        expand_class(&body)
                    }
                    None => {
                        out.push(chars[i]);
                        i += 1;
                        continue;
                    }
                }
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional {m} / {m,n} repetition.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                match chars[i..].iter().position(|&c| c == '}') {
                    Some(end) => {
                        let body: String = chars[i + 1..i + end].iter().collect();
                        i += end + 1;
                        let mut parts = body.splitn(2, ',');
                        let m: usize =
                            parts.next().and_then(|s| s.trim().parse().ok()).unwrap_or(1);
                        let n: usize =
                            parts.next().and_then(|s| s.trim().parse().ok()).unwrap_or(m);
                        (m, n.max(m))
                    }
                    None => (1, 1),
                }
            } else {
                (1, 1)
            };
            let reps = rng.gen_range(min..=max);
            for _ in 0..reps {
                if !alphabet.is_empty() {
                    out.push(alphabet[rng.gen_range(0..alphabet.len())]);
                }
            }
        }
        out
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Raw bit patterns: exercises subnormals, infinities and NaN,
            // like real proptest's full-range f64 strategy.
            f64::from_bits(rng.next_u64())
        }
    }

    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__pt_left, __pt_right) => {
                if !(*__pt_left == *__pt_right) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                            __pt_left, __pt_right
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__pt_left, __pt_right) => {
                if *__pt_left == *__pt_right {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: `left != right`\n  both: `{:?}`", __pt_left),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::test_runner::ProptestConfig = $cfg;
            let (mut __pt_rng, __pt_seed) = $crate::TestRng::for_test(stringify!($name));
            let __pt_strats = ($($strat,)+);
            for __pt_case in 0..__pt_config.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__pt_strats, &mut __pt_rng);
                let __pt_outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __pt_outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed at case {}/{} (seed {}):\n{}",
                            stringify!($name),
                            __pt_case + 1,
                            __pt_config.cases,
                            __pt_seed,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = i64> {
        (0i64..500).prop_map(|v| v * 2)
    }

    proptest! {
        #[test]
        fn ranges_and_maps((a, b) in (0i64..10, arb_even()), flag in any::<bool>()) {
            prop_assert!((0..10).contains(&a));
            prop_assert_eq!(b % 2, 0);
            prop_assert_eq!(flag as u8 & 0xFE, 0);
        }

        #[test]
        fn collections_and_oneof(
            v in crate::collection::vec(prop_oneof![2 => Just(1u8), 1 => Just(2u8)], 3..30),
            s in "[a-c]{2,5}",
        ) {
            prop_assert!(v.len() >= 3 && v.len() < 30);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
