//! Offline stand-in for the `parking_lot` crate.
//!
//! The container has no registry access, so this path dependency provides
//! the subset of `parking_lot` the workspace uses: `Mutex` and `RwLock`
//! whose `lock()`/`read()`/`write()` return guards directly (no poisoning
//! `Result`), mirroring the real crate's API. Poisoned std locks are
//! recovered via `into_inner` on the poison error, matching parking_lot's
//! panic-free semantics closely enough for this single-process engine.

use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
