//! Offline stand-in for the `criterion` crate.
//!
//! The container has no registry access, so this path dependency provides
//! the subset the workspace's benches use: `Criterion`, `benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical sampling it
//! times a fixed-duration adaptive loop and prints mean ns/iter — enough
//! to compare access paths, not to publish confidence intervals.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per measurement (override with `BENCH_MEASURE_MS`).
fn measure_budget() -> Duration {
    let ms = std::env::var("BENCH_MEASURE_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(200);
    Duration::from_millis(ms)
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Adaptive measurement: doubles the batch size until the time budget
    /// is spent, then records total iterations and elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also forces lazy setup
        let budget = measure_budget();
        let start = Instant::now();
        let mut batch = 1u64;
        let mut iters = 0u64;
        loop {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
            let elapsed = start.elapsed();
            if elapsed >= budget || iters >= (1 << 24) {
                self.iters_done = iters;
                self.elapsed = elapsed;
                return;
            }
            batch = batch.saturating_mul(2);
        }
    }
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the adaptive loop ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher { iters_done: 0, elapsed: Duration::ZERO };
    f(&mut b);
    if b.iters_done > 0 {
        let per_iter = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
        println!("{label:<60} {per_iter:>14.1} ns/iter  ({} iters)", b.iters_done);
    } else {
        println!("{label:<60} (no measurement)");
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs_closures() {
        std::env::set_var("BENCH_MEASURE_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            });
        });
        group.finish();
        assert!(ran > 0);
    }
}
