//! Property tests for the storage layer: accounting invariants must hold
//! under arbitrary access sequences.

use proptest::prelude::*;
use smooth_storage::{
    CpuCosts, DeviceProfile, HeapLoader, PageBuilder, PageView, Storage, StorageConfig,
};
use smooth_types::{Column, DataType, PageId, Row, Schema, Value};

fn heap(rows: i64) -> smooth_storage::HeapFile {
    let schema =
        Schema::new(vec![Column::new("id", DataType::Int64), Column::new("pad", DataType::Text)])
            .unwrap();
    let mut l = HeapLoader::new_mem("t", schema);
    for i in 0..rows {
        l.push(&Row::new(vec![Value::Int(i), Value::str("p".repeat(60))])).unwrap();
    }
    l.finish().unwrap()
}

proptest! {
    /// Every page served is either a device transfer or a buffer hit;
    /// distinct pages never exceed total transfers nor the heap size.
    #[test]
    fn accounting_balances(accesses in proptest::collection::vec((0u32..40, 1u32..6), 1..60),
                           pool_pages in 1usize..64) {
        let h = heap(6000);
        let n = h.page_count();
        prop_assume!(n >= 46);
        let s = Storage::new(StorageConfig {
            device: DeviceProfile::custom("t", 1, 10),
            cpu: CpuCosts::default(),
            pool_pages,
        });
        let mut served = 0u64;
        for (start, len) in accesses {
            let len = len.min(n - start);
            let pages = s.read_heap_run(&h, PageId(start), len).unwrap();
            prop_assert_eq!(pages.len() as u32, len);
            // returned in order, correct ids
            for (i, (pid, buf)) in pages.iter().enumerate() {
                prop_assert_eq!(pid.0, start + i as u32);
                prop_assert!(PageView::new(buf).is_ok());
            }
            served += len as u64;
        }
        let io = s.io_snapshot();
        prop_assert_eq!(io.pages_read + io.buffer_hits, served);
        prop_assert_eq!(io.seq_pages + io.rand_pages, io.pages_read);
        prop_assert!(io.distinct_pages <= io.pages_read);
        prop_assert!(io.distinct_pages <= n as u64);
        prop_assert!(io.io_requests <= io.pages_read);
        // io time equals the device charge implied by the counters
        let expected_io = io.rand_pages * 10 + io.seq_pages;
        prop_assert_eq!(s.clock().snapshot().io_ns, expected_io);
    }

    /// The slotted page accepts tuples until full and returns each intact.
    #[test]
    fn page_roundtrip(tuples in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..300), 1..80)) {
        let mut b = PageBuilder::new();
        let mut stored = Vec::new();
        for t in &tuples {
            if let Some(slot) = b.insert(t) {
                stored.push((slot, t.clone()));
            }
        }
        let buf = b.freeze();
        let v = PageView::new(&buf).unwrap();
        prop_assert_eq!(v.slot_count() as usize, stored.len());
        for (slot, bytes) in stored {
            prop_assert_eq!(v.get(slot).unwrap(), &bytes[..]);
        }
    }
}
