//! Storage engine: slotted heap pages, buffer pool, and device-model I/O
//! accounting.
//!
//! This crate replaces the two pieces of the paper's experimental setup that
//! are not available here:
//!
//! * **PostgreSQL's storage layer** — re-implemented from scratch: 8 KB
//!   slotted pages ([`page`]), append-only heap files ([`heap`]), and a
//!   clock-eviction buffer pool ([`pool`]).
//! * **The physical disks** (2× SAS 15k RPM HDD, OCZ SATA SSD) — replaced by
//!   a *device model* ([`device`], [`tracker`]): every page transfer is
//!   classified as sequential or random based on the previously accessed
//!   physical position, coalesced into I/O requests, and charged to a
//!   [`clock::VirtualClock`] at the paper's measured cost ratios
//!   (HDD rand:seq = 10:1, SSD 2:1 — Sections V-A and VI-E).
//!
//! Execution time reported by the experiment harness is virtual-clock time:
//! `cpu_ns + io_ns`, mirroring the paper's single-threaded cold-run
//! methodology where blocking I/O sits on the critical path (Fig. 4 reports
//! exactly this CPU vs I/O-wait split).

pub mod backend;
pub mod clock;
pub mod costs;
pub mod device;
pub mod faults;
pub mod heap;
pub mod page;
pub mod pool;
pub mod scanstats;
pub mod stats;
pub mod storage;
pub mod tracker;

pub use backend::{Backend, FileBackend, MemBackend};
pub use clock::{ClockSnapshot, VirtualClock};
pub use costs::CpuCosts;
pub use device::DeviceProfile;
pub use faults::{FaultConfig, FaultInjector, InjectedPanic};
pub use heap::{HeapFile, HeapLoader};
pub use page::{PageBuf, PageBuilder, PageView};
pub use pool::BufferPool;
pub use scanstats::{tap_mark, tap_rows, ScanStatistics, TapMark};
pub use stats::{IoSnapshot, IoStatsDelta};
pub use storage::{FileId, Storage, StorageConfig};
pub use tracker::DiskTracker;
