//! The disk tracker: classifies page transfers and charges the clock.
//!
//! Each transfer is sequential if it physically continues the previous one
//! (same file, next page) and random otherwise — the distinction that
//! drives the entire paper: "the sequential access pattern employed by the
//! full table scan is one to two orders of magnitude faster than the random
//! access pattern of an index scan" (Section II). Multi-page runs cost one
//! random positioning plus sequential transfers for the remainder, which is
//! how Smooth Scan's flattening mode (Mode 2) amortizes I/O.

use std::collections::HashSet;

use crate::clock::VirtualClock;
use crate::device::DeviceProfile;
use crate::stats::IoSnapshot;
use crate::storage::FileId;

/// Mutable I/O accounting state (wrapped in a mutex by [`crate::Storage`]).
#[derive(Debug)]
pub struct DiskTracker {
    device: DeviceProfile,
    /// Physical position of the most recent transfer: `(file, page)`.
    last: Option<(FileId, u32)>,
    io_requests: u64,
    pages_read: u64,
    seq_pages: u64,
    rand_pages: u64,
    buffer_hits: u64,
    distinct: HashSet<(FileId, u32)>,
}

impl DiskTracker {
    /// A tracker for the given device with zeroed counters.
    pub fn new(device: DeviceProfile) -> Self {
        DiskTracker {
            device,
            last: None,
            io_requests: 0,
            pages_read: 0,
            seq_pages: 0,
            rand_pages: 0,
            buffer_hits: 0,
            distinct: HashSet::new(),
        }
    }

    /// The device being modeled.
    pub fn device(&self) -> DeviceProfile {
        self.device
    }

    /// Swap the device profile (e.g. HDD → SSD between experiments).
    pub fn set_device(&mut self, device: DeviceProfile) {
        self.device = device;
    }

    /// Record one read request of `len` contiguous pages of `file` starting
    /// at `start`, charging the clock. The first page is sequential only if
    /// it directly continues the previous transfer.
    pub fn read_run(&mut self, clock: &VirtualClock, file: FileId, start: u32, len: u32) {
        if len == 0 {
            return;
        }
        self.io_requests += 1;
        self.pages_read += len as u64;
        let continues = match self.last {
            Some((f, p)) => f == file && p + 1 == start,
            None => false,
        };
        let (first_cost, first_seq) = if continues {
            (self.device.seq_page_ns, true)
        } else {
            (self.device.rand_page_ns, false)
        };
        let io_ns = first_cost + (len as u64 - 1) * self.device.seq_page_ns;
        clock.charge_io(io_ns);
        if first_seq {
            self.seq_pages += len as u64;
        } else {
            self.rand_pages += 1;
            self.seq_pages += len as u64 - 1;
        }
        for p in start..start + len {
            self.distinct.insert((file, p));
        }
        self.last = Some((file, start + len - 1));
    }

    /// Record a buffer-pool hit (no device traffic, no clock charge).
    pub fn note_buffer_hit(&mut self) {
        self.buffer_hits += 1;
    }

    /// Current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            io_requests: self.io_requests,
            pages_read: self.pages_read,
            seq_pages: self.seq_pages,
            rand_pages: self.rand_pages,
            distinct_pages: self.distinct.len() as u64,
            buffer_hits: self.buffer_hits,
        }
    }

    /// Distinct pages transferred for one specific file (Fig. 8b is
    /// reported per heap).
    pub fn distinct_pages_for(&self, file: FileId) -> u64 {
        self.distinct.iter().filter(|(f, _)| *f == file).count() as u64
    }

    /// Zero all counters and forget the head position.
    pub fn reset(&mut self) {
        self.last = None;
        self.io_requests = 0;
        self.pages_read = 0;
        self.seq_pages = 0;
        self.rand_pages = 0;
        self.buffer_hits = 0;
        self.distinct.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DiskTracker, VirtualClock) {
        (DiskTracker::new(DeviceProfile::custom("t", 1, 10)), VirtualClock::new())
    }

    #[test]
    fn first_access_is_random() {
        let (mut t, c) = setup();
        t.read_run(&c, FileId(1), 5, 1);
        let s = t.snapshot();
        assert_eq!((s.rand_pages, s.seq_pages, s.io_requests), (1, 0, 1));
        assert_eq!(c.snapshot().io_ns, 10);
    }

    #[test]
    fn contiguous_accesses_are_sequential() {
        let (mut t, c) = setup();
        t.read_run(&c, FileId(1), 0, 1);
        t.read_run(&c, FileId(1), 1, 1);
        t.read_run(&c, FileId(1), 2, 1);
        let s = t.snapshot();
        assert_eq!((s.rand_pages, s.seq_pages), (1, 2));
        assert_eq!(c.snapshot().io_ns, 10 + 1 + 1);
    }

    #[test]
    fn jumps_and_file_switches_are_random() {
        let (mut t, c) = setup();
        t.read_run(&c, FileId(1), 0, 1);
        t.read_run(&c, FileId(1), 7, 1); // jump
        t.read_run(&c, FileId(2), 8, 1); // different file, even if "adjacent" number
        let s = t.snapshot();
        assert_eq!(s.rand_pages, 3);
        assert_eq!(c.snapshot().io_ns, 30);
    }

    #[test]
    fn runs_cost_one_seek_plus_transfers() {
        let (mut t, c) = setup();
        t.read_run(&c, FileId(1), 100, 8);
        let s = t.snapshot();
        assert_eq!((s.io_requests, s.pages_read), (1, 8));
        assert_eq!((s.rand_pages, s.seq_pages), (1, 7));
        assert_eq!(c.snapshot().io_ns, 10 + 7);
        // A run continuing exactly after the previous one is all-sequential.
        t.read_run(&c, FileId(1), 108, 4);
        let s = t.snapshot();
        assert_eq!((s.rand_pages, s.seq_pages), (1, 11));
    }

    #[test]
    fn distinct_pages_ignore_rereads() {
        let (mut t, c) = setup();
        t.read_run(&c, FileId(1), 0, 4);
        t.read_run(&c, FileId(1), 2, 4); // overlaps 2 pages
        let s = t.snapshot();
        assert_eq!(s.pages_read, 8);
        assert_eq!(s.distinct_pages, 6);
        assert_eq!(t.distinct_pages_for(FileId(1)), 6);
        assert_eq!(t.distinct_pages_for(FileId(9)), 0);
    }

    #[test]
    fn zero_length_run_is_a_noop() {
        let (mut t, c) = setup();
        t.read_run(&c, FileId(1), 0, 0);
        assert_eq!(t.snapshot(), IoSnapshot::default());
        assert_eq!(c.snapshot().io_ns, 0);
    }

    #[test]
    fn reset_clears_counters_and_position() {
        let (mut t, c) = setup();
        t.read_run(&c, FileId(1), 0, 2);
        t.reset();
        assert_eq!(t.snapshot(), IoSnapshot::default());
        // After reset, even the "next" page costs a random access again.
        t.read_run(&c, FileId(1), 2, 1);
        assert_eq!(t.snapshot().rand_pages, 1);
    }
}
