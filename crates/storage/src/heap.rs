//! Heap files: append-only tables of slotted pages.
//!
//! A [`HeapFile`] couples a schema with a page [`Backend`] and assigns TIDs
//! on load. Loading happens through [`HeapLoader`] and is *not* charged to
//! the virtual clock — data generation is experiment setup, exactly like
//! `dbgen`+`COPY` in the paper's methodology. All query-time reads go
//! through [`crate::Storage`], which buffers and charges them.

use smooth_types::{Error, PageId, Result, Row, Schema, Tid};

use crate::backend::{Backend, MemBackend};
use crate::page::{PageBuf, PageBuilder, PageView};
use crate::storage::FileId;

/// An immutable, fully loaded table heap.
pub struct HeapFile {
    name: String,
    schema: Schema,
    file_id: FileId,
    backend: Box<dyn Backend>,
    tuple_count: u64,
    max_slots: u16,
}

impl HeapFile {
    /// Table name (unique within a database).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The file identifier used by the buffer pool and I/O tracker.
    pub fn file_id(&self) -> FileId {
        self.file_id
    }

    /// Number of heap pages (`#P` in Table I).
    pub fn page_count(&self) -> u32 {
        self.backend.page_count()
    }

    /// Number of tuples (`#T` in Table I).
    pub fn tuple_count(&self) -> u64 {
        self.tuple_count
    }

    /// Maximum slots used on any page; an upper bound for dense tuple
    /// ordinals (Tuple-ID cache sizing, Section IV-A).
    pub fn max_slots_per_page(&self) -> u16 {
        self.max_slots
    }

    /// Average tuples per page (`#TP` in Table I).
    pub fn tuples_per_page(&self) -> f64 {
        if self.page_count() == 0 {
            0.0
        } else {
            self.tuple_count as f64 / self.page_count() as f64
        }
    }

    /// Read a raw page image, bypassing the buffer pool and the device
    /// model. Only [`crate::Storage`] and tests should call this.
    pub fn read_raw(&self, page: PageId) -> Result<PageBuf> {
        self.backend.read(page.0)
    }

    /// Decode the tuple at `slot` of an already-fetched page.
    pub fn decode_slot(&self, page: &PageBuf, slot: u16) -> Result<Row> {
        let view = PageView::new(page)?;
        Row::decode(&self.schema, view.get(slot)?)
    }

    /// Decode every tuple of an already-fetched page.
    pub fn decode_all(&self, page: &PageBuf) -> Result<Vec<Row>> {
        let view = PageView::new(page)?;
        let mut rows = Vec::with_capacity(view.slot_count() as usize);
        for bytes in view.iter() {
            rows.push(Row::decode(&self.schema, bytes?)?);
        }
        Ok(rows)
    }
}

/// Streaming loader that packs rows into pages and assigns TIDs.
pub struct HeapLoader {
    name: String,
    schema: Schema,
    backend: Box<dyn Backend>,
    current: PageBuilder,
    pages_done: u32,
    tuple_count: u64,
    max_slots: u16,
    encode_buf: Vec<u8>,
}

impl HeapLoader {
    /// Start loading an in-memory heap.
    pub fn new_mem(name: impl Into<String>, schema: Schema) -> Self {
        Self::with_backend(name, schema, Box::new(MemBackend::new()))
    }

    /// Start loading into an arbitrary backend.
    pub fn with_backend(
        name: impl Into<String>,
        schema: Schema,
        backend: Box<dyn Backend>,
    ) -> Self {
        HeapLoader {
            name: name.into(),
            schema,
            backend,
            current: PageBuilder::new(),
            pages_done: 0,
            tuple_count: 0,
            max_slots: 0,
            encode_buf: Vec::with_capacity(256),
        }
    }

    /// Append one row, returning the TID it was stored under.
    pub fn push(&mut self, row: &Row) -> Result<Tid> {
        self.encode_buf.clear();
        row.encode_into(&self.schema, &mut self.encode_buf)?;
        let slot = match self.current.insert(&self.encode_buf) {
            Some(slot) => slot,
            None => {
                self.seal_current()?;
                self.current.insert(&self.encode_buf).ok_or_else(|| {
                    Error::schema(format!(
                        "tuple of {} bytes exceeds page capacity",
                        self.encode_buf.len()
                    ))
                })?
            }
        };
        self.tuple_count += 1;
        Ok(Tid::new(self.pages_done, slot))
    }

    fn seal_current(&mut self) -> Result<()> {
        let full = std::mem::take(&mut self.current);
        self.max_slots = self.max_slots.max(full.slot_count());
        self.backend.append(full.freeze())?;
        self.pages_done += 1;
        Ok(())
    }

    /// Finish loading and return the immutable heap.
    pub fn finish(mut self) -> Result<HeapFile> {
        if self.current.slot_count() > 0 {
            self.seal_current()?;
        }
        Ok(HeapFile {
            name: self.name,
            schema: self.schema,
            file_id: FileId::fresh(),
            backend: self.backend,
            tuple_count: self.tuple_count,
            max_slots: self.max_slots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_types::{Column, DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![Column::new("id", DataType::Int64), Column::new("pad", DataType::Text)])
            .unwrap()
    }

    fn row(id: i64) -> Row {
        Row::new(vec![Value::Int(id), Value::str("x".repeat(48))])
    }

    #[test]
    fn loads_rows_and_assigns_dense_tids() {
        let mut l = HeapLoader::new_mem("t", schema());
        let mut tids = Vec::new();
        for i in 0..500 {
            tids.push(l.push(&row(i)).unwrap());
        }
        let heap = l.finish().unwrap();
        assert_eq!(heap.tuple_count(), 500);
        assert!(heap.page_count() > 1);
        // TIDs are page-major dense and decode back to the right rows.
        for (i, tid) in tids.iter().enumerate() {
            let page = heap.read_raw(tid.page).unwrap();
            let r = heap.decode_slot(&page, tid.slot).unwrap();
            assert_eq!(r.int(0).unwrap(), i as i64);
        }
        assert!(tids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn decode_all_returns_page_tuples_in_slot_order() {
        let mut l = HeapLoader::new_mem("t", schema());
        for i in 0..50 {
            l.push(&row(i)).unwrap();
        }
        let heap = l.finish().unwrap();
        let page = heap.read_raw(PageId(0)).unwrap();
        let rows = heap.decode_all(&page).unwrap();
        assert!(!rows.is_empty());
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.int(0).unwrap(), i as i64);
        }
    }

    #[test]
    fn empty_heap_has_no_pages() {
        let heap = HeapLoader::new_mem("t", schema()).finish().unwrap();
        assert_eq!(heap.page_count(), 0);
        assert_eq!(heap.tuple_count(), 0);
        assert_eq!(heap.tuples_per_page(), 0.0);
    }

    #[test]
    fn max_slots_tracks_fullest_page() {
        let mut l = HeapLoader::new_mem("t", schema());
        for i in 0..400 {
            l.push(&row(i)).unwrap();
        }
        let heap = l.finish().unwrap();
        let spp = heap.max_slots_per_page();
        assert!(spp > 0);
        // every page holds at most max_slots tuples
        for p in 0..heap.page_count() {
            let page = heap.read_raw(PageId(p)).unwrap();
            assert!(PageView::new(&page).unwrap().slot_count() <= spp);
        }
    }

    #[test]
    fn oversized_tuple_is_rejected() {
        let mut l = HeapLoader::new_mem("t", schema());
        let huge = Row::new(vec![Value::Int(1), Value::str("y".repeat(9000))]);
        assert!(l.push(&huge).is_err());
    }

    #[test]
    fn validates_rows_against_schema() {
        let mut l = HeapLoader::new_mem("t", schema());
        let bad = Row::new(vec![Value::str("nope"), Value::str("x")]);
        assert!(l.push(&bad).is_err());
    }
}
