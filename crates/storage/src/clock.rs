//! The virtual clock: accumulated CPU and I/O time for one engine instance.
//!
//! The paper reports cold-run wall time of a single-threaded executor where
//! blocking I/O sits on the critical path, and Fig. 4 decomposes it into
//! "CPU utilization" and "I/O wait time". The virtual clock keeps those two
//! components separately; *execution time* is their sum.
//!
//! The clock is shared by every operator of a query through [`crate::Storage`],
//! so it uses atomics and is cheap to charge from hot loops.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonically accumulating CPU + I/O nanosecond counters.
#[derive(Debug, Default)]
pub struct VirtualClock {
    cpu_ns: AtomicU64,
    io_ns: AtomicU64,
}

/// A point-in-time reading of the clock. Subtract two snapshots to get the
/// cost of the work between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClockSnapshot {
    /// Accumulated CPU nanoseconds.
    pub cpu_ns: u64,
    /// Accumulated I/O (wait) nanoseconds.
    pub io_ns: u64,
}

impl ClockSnapshot {
    /// Total virtual time: CPU plus I/O wait.
    #[inline]
    pub fn total_ns(&self) -> u64 {
        self.cpu_ns + self.io_ns
    }

    /// Total virtual time in (fractional) seconds.
    #[inline]
    pub fn total_secs(&self) -> f64 {
        self.total_ns() as f64 / 1e9
    }

    /// Component-wise difference `self - earlier`.
    pub fn since(&self, earlier: &ClockSnapshot) -> ClockSnapshot {
        ClockSnapshot { cpu_ns: self.cpu_ns - earlier.cpu_ns, io_ns: self.io_ns - earlier.io_ns }
    }
}

impl VirtualClock {
    /// A fresh clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `ns` nanoseconds of CPU work.
    #[inline]
    pub fn charge_cpu(&self, ns: u64) {
        self.cpu_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Charge `ns` nanoseconds of blocking I/O.
    #[inline]
    pub fn charge_io(&self, ns: u64) {
        self.io_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Read the current totals.
    pub fn snapshot(&self) -> ClockSnapshot {
        ClockSnapshot {
            cpu_ns: self.cpu_ns.load(Ordering::Relaxed),
            io_ns: self.io_ns.load(Ordering::Relaxed),
        }
    }

    /// Reset both counters to zero (between experiment runs).
    pub fn reset(&self) {
        self.cpu_ns.store(0, Ordering::Relaxed);
        self.io_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_component() {
        let c = VirtualClock::new();
        c.charge_cpu(5);
        c.charge_io(7);
        c.charge_cpu(3);
        let s = c.snapshot();
        assert_eq!(s.cpu_ns, 8);
        assert_eq!(s.io_ns, 7);
        assert_eq!(s.total_ns(), 15);
    }

    #[test]
    fn since_diffs_snapshots() {
        let c = VirtualClock::new();
        c.charge_io(10);
        let before = c.snapshot();
        c.charge_io(5);
        c.charge_cpu(2);
        let delta = c.snapshot().since(&before);
        assert_eq!(delta, ClockSnapshot { cpu_ns: 2, io_ns: 5 });
    }

    #[test]
    fn reset_zeroes() {
        let c = VirtualClock::new();
        c.charge_cpu(1);
        c.reset();
        assert_eq!(c.snapshot().total_ns(), 0);
    }

    #[test]
    fn seconds_conversion() {
        let s = ClockSnapshot { cpu_ns: 1_500_000_000, io_ns: 500_000_000 };
        assert!((s.total_secs() - 2.0).abs() < 1e-12);
    }
}
