//! Physical page stores: where frozen pages live.
//!
//! Two interchangeable backends implement [`Backend`]:
//!
//! * [`MemBackend`] — pages in a `Vec`; the default for experiments (the
//!   *cost* of I/O is charged by the device model, so the bytes may as well
//!   come from RAM — this is what makes the harness fast and deterministic).
//! * [`FileBackend`] — pages in a real file via positional reads; proves the
//!   engine runs against a durable store and exercises the same code paths.

use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::Arc;

use smooth_types::{Error, Result, PAGE_SIZE};

use crate::page::PageBuf;

/// A store of fixed-size pages addressed by dense page number.
pub trait Backend: Send + Sync {
    /// Number of pages currently stored.
    fn page_count(&self) -> u32;
    /// Fetch a page image by number.
    fn read(&self, page: u32) -> Result<PageBuf>;
    /// Append a page, returning its number.
    fn append(&mut self, page: PageBuf) -> Result<u32>;
}

/// In-memory page store.
#[derive(Debug, Default)]
pub struct MemBackend {
    pages: Vec<PageBuf>,
}

impl MemBackend {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Backend for MemBackend {
    fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    fn read(&self, page: u32) -> Result<PageBuf> {
        self.pages
            .get(page as usize)
            .cloned()
            .ok_or_else(|| Error::exec(format!("page {page} past end of file")))
    }

    fn append(&mut self, page: PageBuf) -> Result<u32> {
        let id = self.pages.len() as u32;
        self.pages.push(page);
        Ok(id)
    }
}

/// File-backed page store using positional reads (no shared seek cursor).
#[derive(Debug)]
pub struct FileBackend {
    file: File,
    page_count: u32,
}

impl FileBackend {
    /// Create (truncating) a page file at `path`.
    pub fn create(path: &Path) -> Result<Self> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(FileBackend { file, page_count: 0 })
    }

    /// Open an existing page file; its size must be page-aligned.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(Error::corrupt(format!("file length {len} not page aligned")));
        }
        Ok(FileBackend { file, page_count: (len / PAGE_SIZE as u64) as u32 })
    }
}

impl Backend for FileBackend {
    fn page_count(&self) -> u32 {
        self.page_count
    }

    fn read(&self, page: u32) -> Result<PageBuf> {
        if page >= self.page_count {
            return Err(Error::exec(format!("page {page} past end of file")));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(&mut buf, page as u64 * PAGE_SIZE as u64)?;
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = self.file.try_clone()?;
            f.seek(SeekFrom::Start(page as u64 * PAGE_SIZE as u64))?;
            f.read_exact(&mut buf)?;
        }
        Ok(Arc::from(buf.into_boxed_slice()))
    }

    fn append(&mut self, page: PageBuf) -> Result<u32> {
        let id = self.page_count;
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.write_all_at(&page, id as u64 * PAGE_SIZE as u64)?;
        }
        #[cfg(not(unix))]
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = self.file.try_clone()?;
            f.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
            f.write_all(&page)?;
        }
        self.page_count += 1;
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageBuilder;

    fn page_with(byte: &[u8]) -> PageBuf {
        let mut b = PageBuilder::new();
        b.insert(byte).unwrap();
        b.freeze()
    }

    #[test]
    fn mem_backend_roundtrip() {
        let mut m = MemBackend::new();
        assert_eq!(m.append(page_with(b"one")).unwrap(), 0);
        assert_eq!(m.append(page_with(b"two")).unwrap(), 1);
        assert_eq!(m.page_count(), 2);
        let p = m.read(1).unwrap();
        assert_eq!(crate::page::PageView::new(&p).unwrap().get(0).unwrap(), b"two");
        assert!(m.read(2).is_err());
    }

    #[test]
    fn file_backend_roundtrip_and_reopen() {
        let path =
            std::env::temp_dir().join(format!("smooth_fb_{}_{}", std::process::id(), line!()));
        {
            let mut f = FileBackend::create(&path).unwrap();
            f.append(page_with(b"persisted")).unwrap();
            f.append(page_with(b"more")).unwrap();
            assert_eq!(f.page_count(), 2);
        }
        let f = FileBackend::open(&path).unwrap();
        assert_eq!(f.page_count(), 2);
        let p = f.read(0).unwrap();
        assert_eq!(crate::page::PageView::new(&p).unwrap().get(0).unwrap(), b"persisted");
        assert!(f.read(9).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_unaligned_file() {
        let path =
            std::env::temp_dir().join(format!("smooth_fb_bad_{}_{}", std::process::id(), line!()));
        std::fs::write(&path, b"not a page").unwrap();
        assert!(FileBackend::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
