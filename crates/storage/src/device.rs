//! Device profiles: the cost of moving one page, sequentially or randomly.
//!
//! The paper's analysis is parameterized entirely by the ratio between a
//! random and a sequential page transfer (`randcost`/`seqcost`, Table I).
//! Section V-A uses `randcost = 10, seqcost = 1` for HDDs and
//! `randcost = 2, seqcost = 1` for SSDs; Section VI-A reports 130 MB/s of
//! sequential bandwidth for the HDD array and Section VI-E 550 MB/s for the
//! SSD. The presets below translate those figures to per-page latencies.

use std::fmt;

/// Timing model of one storage device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Human-readable name ("hdd", "ssd", ...).
    pub name: &'static str,
    /// Cost of transferring one page that continues a sequential run.
    pub seq_page_ns: u64,
    /// Cost of transferring one page at a random position (seek + transfer).
    pub rand_page_ns: u64,
}

impl DeviceProfile {
    /// The paper's HDD array: ~130 MB/s sequential (≈ 62.5 µs per 8 KB
    /// page), random accesses 10× slower (Section V-A).
    pub const fn hdd() -> Self {
        DeviceProfile { name: "hdd", seq_page_ns: 62_500, rand_page_ns: 625_000 }
    }

    /// The paper's SSD: ~550 MB/s sequential (≈ 15 µs per 8 KB page),
    /// random accesses 2× slower (Sections V-A, VI-E).
    pub const fn ssd() -> Self {
        DeviceProfile { name: "ssd", seq_page_ns: 15_000, rand_page_ns: 30_000 }
    }

    /// A custom profile, mainly for tests and ablations.
    pub const fn custom(name: &'static str, seq_page_ns: u64, rand_page_ns: u64) -> Self {
        DeviceProfile { name, seq_page_ns, rand_page_ns }
    }

    /// `randcost / seqcost` — the quantity that drives the competitive
    /// ratio bounds of Section V-A.
    pub fn rand_seq_ratio(&self) -> f64 {
        self.rand_page_ns as f64 / self.seq_page_ns as f64
    }

    /// Cost of one run of `len` pages starting at a random position:
    /// one random transfer plus `len - 1` sequential ones.
    pub fn run_cost_ns(&self, len: u64) -> u64 {
        if len == 0 {
            0
        } else {
            self.rand_page_ns + (len - 1) * self.seq_page_ns
        }
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        DeviceProfile::hdd()
    }
}

impl fmt::Display for DeviceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (seq {} ns/page, rand {} ns/page, ratio {:.1})",
            self.name,
            self.seq_page_ns,
            self.rand_page_ns,
            self.rand_seq_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratios_hold() {
        assert_eq!(DeviceProfile::hdd().rand_seq_ratio(), 10.0);
        assert_eq!(DeviceProfile::ssd().rand_seq_ratio(), 2.0);
    }

    #[test]
    fn run_cost_mixes_one_random_with_sequential() {
        let d = DeviceProfile::custom("t", 1, 10);
        assert_eq!(d.run_cost_ns(0), 0);
        assert_eq!(d.run_cost_ns(1), 10);
        assert_eq!(d.run_cost_ns(5), 10 + 4);
    }

    #[test]
    fn display_is_informative() {
        let s = DeviceProfile::hdd().to_string();
        assert!(s.contains("hdd") && s.contains("10.0"));
    }
}
