//! CPU cost constants charged by the executor.
//!
//! The paper's guiding ratio is that "a single I/O operation corresponds to
//! a million CPU cycles" (Section V, citing Graefe's Modern B-Tree
//! Techniques): inspecting extra tuples on an already-fetched page is
//! orders of magnitude cheaper than fetching the page. The constants below
//! encode that gap against the [`crate::DeviceProfile`] page latencies
//! (62.5 µs per sequential HDD page): tens of nanoseconds per tuple touch,
//! a few hundred per emitted row.
//!
//! All constants are grouped in one struct so ablation benches can scale
//! them coherently.

/// Per-operation CPU costs in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuCosts {
    /// Inspecting one tuple on a page (predicate check on a decoded field).
    pub inspect_tuple_ns: u64,
    /// Materializing one qualifying tuple into an output row.
    pub emit_tuple_ns: u64,
    /// One B+-tree descent step (binary search within a node).
    pub index_node_search_ns: u64,
    /// Advancing an index leaf cursor by one entry.
    pub index_leaf_step_ns: u64,
    /// One hash-table probe or insert (joins, result cache).
    pub hash_op_ns: u64,
    /// One comparison inside a sort.
    pub sort_cmp_ns: u64,
    /// One aggregate accumulator update.
    pub agg_update_ns: u64,
    /// One bit check/set in a bitmap cache (page-ID / tuple-ID caches).
    pub bitmap_op_ns: u64,
}

impl CpuCosts {
    /// Calibrated defaults (see module docs).
    pub const fn default_costs() -> Self {
        CpuCosts {
            inspect_tuple_ns: 40,
            emit_tuple_ns: 250,
            index_node_search_ns: 300,
            index_leaf_step_ns: 25,
            hash_op_ns: 60,
            sort_cmp_ns: 30,
            agg_update_ns: 20,
            bitmap_op_ns: 2,
        }
    }

    /// Uniformly scale all costs (ablation: CPU-rich vs CPU-poor hosts).
    pub fn scaled(&self, factor: f64) -> Self {
        let s = |v: u64| ((v as f64 * factor).round() as u64).max(1);
        CpuCosts {
            inspect_tuple_ns: s(self.inspect_tuple_ns),
            emit_tuple_ns: s(self.emit_tuple_ns),
            index_node_search_ns: s(self.index_node_search_ns),
            index_leaf_step_ns: s(self.index_leaf_step_ns),
            hash_op_ns: s(self.hash_op_ns),
            sort_cmp_ns: s(self.sort_cmp_ns),
            agg_update_ns: s(self.agg_update_ns),
            bitmap_op_ns: s(self.bitmap_op_ns),
        }
    }
}

impl Default for CpuCosts {
    fn default() -> Self {
        Self::default_costs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProfile;

    #[test]
    fn tuple_inspection_is_orders_cheaper_than_io() {
        let c = CpuCosts::default();
        let hdd = DeviceProfile::hdd();
        // Scanning a full page worth of tuples (~120) must cost well under
        // one sequential page transfer — the premise of Mode 1 (§III-A).
        assert!(120 * c.inspect_tuple_ns < hdd.seq_page_ns);
        // And a random fetch dwarfs even emitting every tuple on the page.
        assert!(120 * (c.inspect_tuple_ns + c.emit_tuple_ns) < hdd.rand_page_ns);
    }

    #[test]
    fn scaling_is_monotone_and_floors_at_one() {
        let c = CpuCosts::default().scaled(0.0001);
        assert_eq!(c.bitmap_op_ns, 1);
        let d = CpuCosts::default().scaled(2.0);
        assert_eq!(d.inspect_tuple_ns, 80);
    }
}
