//! Deterministic fault injection: seeded, replayable failures at the
//! engine's I/O and execution boundaries.
//!
//! Smooth Scan's thesis is graceful degradation when the world lies to
//! the engine; this module extends that story from *stale statistics*
//! to *faulty hardware and hostile queries*. A [`FaultInjector`]
//! decides — deterministically — whether a given operation fails:
//!
//! * **page reads** ([`Storage::read_heap_page`](crate::storage::Storage::read_heap_page) /
//!   [`Storage::read_heap_run`](crate::storage::Storage::read_heap_run) misses) can fail transiently
//!   (`io_err`) or permanently (`corrupt`). Buffer-pool hits never
//!   fault: a cached page needs no device.
//! * **spill writes** (overflow files in `smooth-executor`'s spill
//!   layer) can fail transiently (`spill_err`).
//! * **worker morsels** (the scheduler's execution boundary) can
//!   panic (`panic`), exercising the engine's panic containment.
//!
//! [`Storage::touch_index_page`](crate::storage::Storage::touch_index_page) is *not* an injection point: index
//! nodes are virtual pages (residency accounting only, no bytes move),
//! so there is no device operation to fail.
//!
//! # Determinism
//!
//! Every decision is a *stateless hash draw*: the configured seed and
//! the operation's stable coordinates (file id, page number, byte
//! size, attempt index, …) are mixed through SplitMix64 and compared
//! against the configured probability. No RNG state is consumed, so
//! the verdict for a given operation is independent of thread
//! interleaving, worker count, and which queries run concurrently —
//! a faulted run is replayable byte-for-byte, and a query's fault
//! pattern is identical solo or under concurrency.
//!
//! # Retry and backoff
//!
//! Transient faults (`io_err`, `spill_err`) are retried in place up to
//! [`RETRY_LIMIT`] total attempts. Each retry first charges
//! [`backoff_ns`] — bounded exponential backoff, doubling from
//! [`BACKOFF_BASE_NS`] — to the virtual clock's *I/O lane* (the failed
//! attempt's bus time is folded into this charge; the disk-arm
//! counters are never perturbed, so sequential/random classification
//! and page counts stay fault-independent). A draw keyed on the
//! attempt index means a retried operation can succeed; if all
//! [`RETRY_LIMIT`] attempts fail the fault is permanent for this query
//! and surfaces as [`Error::Faulted`]. `corrupt` faults are keyed
//! *without* the attempt index — a corrupt page stays corrupt — and
//! surface immediately as [`Error::Corrupt`].
//!
//! # Scope
//!
//! An optional `file=N` scope confines page-read and morsel-panic
//! faults to the heap file with [`FileId`] `N`, leaving every other
//! table clean — this is how the `faults` experiment poisons exactly
//! one of four concurrent sessions. Spill writes are not attributable
//! to a heap file, so a scoped config never injects `spill_err`.
//!
//! See `docs/fault_model.md` for the whole model.

use smooth_types::{Error, Result};

use crate::clock::VirtualClock;
use crate::storage::FileId;

/// Maximum total attempts for a transiently-faulting operation
/// (the first try plus `RETRY_LIMIT - 1` retries).
pub const RETRY_LIMIT: u32 = 4;

/// Backoff charged before the first retry; doubles per further retry.
pub const BACKOFF_BASE_NS: u64 = 50_000;

/// Backoff charged to the virtual clock before retry `retry`
/// (1-based): `BACKOFF_BASE_NS << (retry - 1)`.
#[inline]
pub fn backoff_ns(retry: u32) -> u64 {
    BACKOFF_BASE_NS << (retry.saturating_sub(1)).min(16)
}

/// Total backoff charged by an operation that fails `fails` times
/// before succeeding (or exhausting [`RETRY_LIMIT`]).
pub fn total_backoff_ns(fails: u32) -> u64 {
    (1..=fails.min(RETRY_LIMIT - 1)).map(backoff_ns).sum()
}

/// Panic payload used by injected worker panics, so the engine's panic
/// hook can tell deliberate chaos from a real bug (and keep the latter
/// loud).
#[derive(Debug)]
pub struct InjectedPanic {
    /// The stable morsel key the draw was made on.
    pub key: u64,
}

/// Configuration of one [`FaultInjector`]: a seed plus per-site fault
/// probabilities (clamped to `0.0..=1.0`), optionally scoped to one
/// heap file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed mixed into every draw.
    pub seed: u64,
    /// Probability a page-read attempt fails transiently.
    pub io_err: f64,
    /// Probability a page is (permanently) corrupt.
    pub corrupt: f64,
    /// Probability a spill-write attempt fails transiently.
    pub spill_err: f64,
    /// Probability a worker morsel panics.
    pub panic: f64,
    /// When set, confine faults to this heap file (and suppress
    /// `spill_err`, which has no file attribution).
    pub file: Option<u32>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig { seed: 0, io_err: 0.0, corrupt: 0.0, spill_err: 0.0, panic: 0.0, file: None }
    }
}

impl FaultConfig {
    /// A zero-probability config with the given seed; switch individual
    /// sites on with the builder methods.
    pub fn new(seed: u64) -> Self {
        FaultConfig { seed, ..FaultConfig::default() }
    }

    /// Set the transient page-read fault probability.
    pub fn io_err(mut self, p: f64) -> Self {
        self.io_err = p.clamp(0.0, 1.0);
        self
    }

    /// Set the corrupt-page probability.
    pub fn corrupt(mut self, p: f64) -> Self {
        self.corrupt = p.clamp(0.0, 1.0);
        self
    }

    /// Set the transient spill-write fault probability.
    pub fn spill_err(mut self, p: f64) -> Self {
        self.spill_err = p.clamp(0.0, 1.0);
        self
    }

    /// Set the worker-morsel panic probability.
    pub fn panic(mut self, p: f64) -> Self {
        self.panic = p.clamp(0.0, 1.0);
        self
    }

    /// Confine faults to one heap file (see the module docs).
    pub fn scope_to_file(mut self, file: FileId) -> Self {
        self.file = Some(file.0);
        self
    }

    /// Parse the `SMOOTH_FAULTS` syntax:
    /// `"seed=1,io_err=0.01,corrupt=0.001,spill_err=0.01,panic=0.005,file=3"`.
    /// Every key is optional; unknown keys or malformed values yield
    /// `None` (the caller treats that as "no faults" rather than
    /// guessing).
    pub fn parse(s: &str) -> Option<FaultConfig> {
        let mut cfg = FaultConfig::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part.split_once('=')?;
            match key.trim() {
                "seed" => cfg.seed = value.trim().parse().ok()?,
                "io_err" => cfg.io_err = parse_prob(value)?,
                "corrupt" => cfg.corrupt = parse_prob(value)?,
                "spill_err" => cfg.spill_err = parse_prob(value)?,
                "panic" => cfg.panic = parse_prob(value)?,
                "file" => cfg.file = Some(value.trim().parse().ok()?),
                _ => return None,
            }
        }
        Some(cfg)
    }

    /// The process-wide `SMOOTH_FAULTS` config, if any — parsed once
    /// and latched, like every `SMOOTH_*` knob.
    pub fn from_env() -> Option<FaultConfig> {
        static ENV: std::sync::OnceLock<Option<FaultConfig>> = std::sync::OnceLock::new();
        *ENV.get_or_init(|| std::env::var("SMOOTH_FAULTS").ok().and_then(|s| Self::parse(&s)))
    }

    /// Whether any site has a non-zero probability.
    pub fn is_active(&self) -> bool {
        self.io_err > 0.0 || self.corrupt > 0.0 || self.spill_err > 0.0 || self.panic > 0.0
    }
}

fn parse_prob(v: &str) -> Option<f64> {
    let p: f64 = v.trim().parse().ok()?;
    if p.is_finite() {
        Some(p.clamp(0.0, 1.0))
    } else {
        None
    }
}

/// Site discriminants mixed into every draw so distinct fault kinds at
/// the same coordinates draw independently.
const SITE_IO_ERR: u64 = 0x49;
const SITE_CORRUPT: u64 = 0xC0;
const SITE_SPILL: u64 = 0x5B;
const SITE_PANIC: u64 = 0xBA;

/// SplitMix64 finalizer — the same mixer seeding the vendored xoshiro
/// RNG, used here as a stateless hash.
#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The injector: a [`FaultConfig`] plus the stateless draw machinery.
/// Cheap to share (`Copy` config behind an `Arc` in [`Storage`](crate::storage::Storage)).
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
}

impl FaultInjector {
    /// An injector for `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector { cfg }
    }

    /// The configuration this injector draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// A unit-interval draw at `(site, a, b)` under this seed.
    #[inline]
    fn draw(&self, site: u64, a: u64, b: u64) -> f64 {
        let mut h = splitmix(self.cfg.seed ^ site.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        h = splitmix(h ^ a);
        h = splitmix(h ^ b);
        // 53 high bits → uniform in [0, 1).
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    #[inline]
    fn in_scope(&self, file: Option<FileId>) -> bool {
        match self.cfg.file {
            None => true,
            Some(scoped) => file.is_some_and(|f| f.0 == scoped),
        }
    }

    /// Gate one heap-page device read: retries transient `io_err`
    /// draws in place, charging [`backoff_ns`] per retry to `clock`'s
    /// I/O lane; a `corrupt` draw (attempt-independent) or an
    /// exhausted retry budget fails the read.
    pub fn page_read(&self, clock: &VirtualClock, file: FileId, page: u32) -> Result<()> {
        if !self.in_scope(Some(file)) {
            return Ok(());
        }
        if self.cfg.corrupt > 0.0
            && self.draw(SITE_CORRUPT, file.0 as u64, page as u64) < self.cfg.corrupt
        {
            return Err(Error::Corrupt(format!(
                "injected: page {page} of file {} failed validation",
                file.0
            )));
        }
        if self.cfg.io_err <= 0.0 {
            return Ok(());
        }
        let key = (file.0 as u64) << 32 | page as u64;
        for attempt in 0..RETRY_LIMIT {
            if self.draw(SITE_IO_ERR, key, attempt as u64) >= self.cfg.io_err {
                return Ok(());
            }
            if attempt + 1 == RETRY_LIMIT {
                return Err(Error::Faulted { attempts: RETRY_LIMIT });
            }
            clock.charge_io(backoff_ns(attempt + 1));
        }
        // invariant: the loop always returns — every iteration either
        // succeeds, exhausts the budget, or charges backoff and retries.
        unreachable!("retry loop returns within RETRY_LIMIT attempts")
    }

    /// Gate one spill-write of `bytes`/`rows`: same retry/backoff
    /// policy as page reads, keyed on the write's stable size
    /// coordinates. Never fires under a `file=` scope (spill writes
    /// have no file attribution).
    pub fn spill_write(&self, clock: &VirtualClock, bytes: u64, rows: u64) -> Result<()> {
        if self.cfg.spill_err <= 0.0 || self.cfg.file.is_some() {
            return Ok(());
        }
        for attempt in 0..RETRY_LIMIT {
            if self.draw(SITE_SPILL, bytes ^ rows.rotate_left(32), attempt as u64)
                >= self.cfg.spill_err
            {
                return Ok(());
            }
            if attempt + 1 == RETRY_LIMIT {
                return Err(Error::Faulted { attempts: RETRY_LIMIT });
            }
            clock.charge_io(backoff_ns(attempt + 1));
        }
        // invariant: as in `page_read` — the loop always returns.
        unreachable!("retry loop returns within RETRY_LIMIT attempts")
    }

    /// Whether the worker morsel identified by `(file, key)` should
    /// panic. `file` is the morsel's heap file when it has one
    /// (shared-source morsels pass `None` and only fire unscoped).
    pub fn morsel_panics(&self, file: Option<FileId>, key: u64) -> bool {
        self.cfg.panic > 0.0
            && self.in_scope(file)
            && self.draw(SITE_PANIC, file.map_or(u64::MAX, |f| f.0 as u64), key) < self.cfg.panic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_every_key() {
        let cfg =
            FaultConfig::parse("seed=7, io_err=0.25, corrupt=0.5, spill_err=1, panic=0, file=3")
                .unwrap();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.io_err, 0.25);
        assert_eq!(cfg.corrupt, 0.5);
        assert_eq!(cfg.spill_err, 1.0);
        assert_eq!(cfg.panic, 0.0);
        assert_eq!(cfg.file, Some(3));
        assert!(cfg.is_active());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultConfig::parse("seed").is_none());
        assert!(FaultConfig::parse("bogus=1").is_none());
        assert!(FaultConfig::parse("io_err=NaN").is_none());
        assert!(FaultConfig::parse("seed=x").is_none());
        // Probabilities clamp rather than reject.
        assert_eq!(FaultConfig::parse("io_err=7").unwrap().io_err, 1.0);
        assert!(!FaultConfig::parse("").unwrap().is_active());
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let a = FaultInjector::new(FaultConfig::new(1).io_err(0.5));
        let b = FaultInjector::new(FaultConfig::new(1).io_err(0.5));
        let c = FaultInjector::new(FaultConfig::new(2).io_err(0.5));
        let clock = VirtualClock::new();
        let pattern = |inj: &FaultInjector| -> Vec<bool> {
            (0..64).map(|p| inj.page_read(&clock, FileId(9), p).is_err()).collect()
        };
        assert_eq!(pattern(&a), pattern(&b));
        assert_ne!(pattern(&a), pattern(&c));
    }

    #[test]
    fn certain_io_err_exhausts_retries_with_full_backoff() {
        let inj = FaultInjector::new(FaultConfig::new(1).io_err(1.0));
        let clock = VirtualClock::new();
        let err = inj.page_read(&clock, FileId(1), 0).unwrap_err();
        assert_eq!(err, Error::Faulted { attempts: RETRY_LIMIT });
        // Backoff 50k + 100k + 200k for the three retries.
        assert_eq!(clock.snapshot().io_ns, total_backoff_ns(RETRY_LIMIT - 1));
        assert_eq!(clock.snapshot().io_ns, 350_000);
    }

    #[test]
    fn corrupt_wins_over_io_err_and_skips_retries() {
        let inj = FaultInjector::new(FaultConfig::new(1).io_err(1.0).corrupt(1.0));
        let clock = VirtualClock::new();
        let err = inj.page_read(&clock, FileId(1), 5).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)));
        assert_eq!(clock.snapshot().io_ns, 0, "permanent faults never back off");
    }

    #[test]
    fn file_scope_confines_page_and_panic_faults() {
        let inj =
            FaultInjector::new(FaultConfig::new(1).io_err(1.0).panic(1.0).scope_to_file(FileId(7)));
        let clock = VirtualClock::new();
        assert!(inj.page_read(&clock, FileId(7), 0).is_err());
        assert!(inj.page_read(&clock, FileId(8), 0).is_ok());
        assert!(inj.morsel_panics(Some(FileId(7)), 0));
        assert!(!inj.morsel_panics(Some(FileId(8)), 0));
        assert!(!inj.morsel_panics(None, 0), "shared morsels are unattributed");
    }

    #[test]
    fn scoped_config_never_injects_spill_faults() {
        let clock = VirtualClock::new();
        let scoped =
            FaultInjector::new(FaultConfig::new(1).spill_err(1.0).scope_to_file(FileId(7)));
        assert!(scoped.spill_write(&clock, 4096, 10).is_ok());
        let unscoped = FaultInjector::new(FaultConfig::new(1).spill_err(1.0));
        assert!(unscoped.spill_write(&clock, 4096, 10).is_err());
    }

    #[test]
    fn transient_faults_can_succeed_on_retry() {
        // With p = 0.5 over many pages, some must fail the first
        // attempt and pass a later one — observable as Ok with a
        // non-zero backoff charge.
        let inj = FaultInjector::new(FaultConfig::new(42).io_err(0.5));
        let mut retried_ok = 0;
        for page in 0..256 {
            let clock = VirtualClock::new();
            if inj.page_read(&clock, FileId(3), page).is_ok() && clock.snapshot().io_ns > 0 {
                retried_ok += 1;
            }
        }
        assert!(retried_ok > 0, "some reads must succeed after backoff");
    }

    #[test]
    fn backoff_doubles_and_is_bounded() {
        assert_eq!(backoff_ns(1), BACKOFF_BASE_NS);
        assert_eq!(backoff_ns(2), 2 * BACKOFF_BASE_NS);
        assert_eq!(backoff_ns(3), 4 * BACKOFF_BASE_NS);
        assert_eq!(total_backoff_ns(0), 0);
        assert_eq!(total_backoff_ns(2), 3 * BACKOFF_BASE_NS);
        // Saturation backstop: huge retry indices don't overflow.
        assert!(backoff_ns(u32::MAX) > 0);
    }
}
