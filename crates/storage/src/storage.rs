//! The storage facade: buffered, accounted page access.
//!
//! One [`Storage`] instance plays the role of PostgreSQL's buffer manager +
//! storage manager for a database: every heap-page or index-node access from
//! any operator funnels through it, consults the buffer pool, and charges
//! the device model on misses. It is cheaply cloneable (shared interior) so
//! each operator in a plan can hold a handle.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use smooth_types::{PageId, Result};

use crate::clock::VirtualClock;
use crate::costs::CpuCosts;
use crate::device::DeviceProfile;
use crate::faults::{FaultConfig, FaultInjector};
use crate::heap::HeapFile;
use crate::page::PageBuf;
use crate::pool::{BufferPool, Cached};
use crate::scanstats::{tap_hits, tap_io};
use crate::stats::IoSnapshot;
use crate::tracker::DiskTracker;

/// Identifier of one on-"disk" file (heap or index) within the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

static NEXT_FILE_ID: AtomicU32 = AtomicU32::new(1);

impl FileId {
    /// A process-unique file id.
    pub fn fresh() -> FileId {
        FileId(NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// Tunables for one storage instance.
#[derive(Debug, Clone, Copy)]
pub struct StorageConfig {
    /// Device timing model.
    pub device: DeviceProfile,
    /// CPU cost constants charged by operators.
    pub cpu: CpuCosts,
    /// Buffer pool capacity in pages.
    pub pool_pages: usize,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig { device: DeviceProfile::hdd(), cpu: CpuCosts::default(), pool_pages: 256 }
    }
}

struct Inner {
    clock: VirtualClock,
    cpu: CpuCosts,
    tracker: Mutex<DiskTracker>,
    pool: Mutex<BufferPool>,
    /// Fast-path flag mirroring `faults.is_some()` so the hot read
    /// paths pay one relaxed load when injection is off.
    faulty: AtomicBool,
    faults: Mutex<Option<Arc<FaultInjector>>>,
}

/// Shared storage-manager handle.
#[derive(Clone)]
pub struct Storage {
    inner: Arc<Inner>,
}

impl Storage {
    /// Build a storage manager from a config.
    pub fn new(cfg: StorageConfig) -> Self {
        let storage = Storage {
            inner: Arc::new(Inner {
                clock: VirtualClock::new(),
                cpu: cfg.cpu,
                tracker: Mutex::new(DiskTracker::new(cfg.device)),
                pool: Mutex::new(BufferPool::new(cfg.pool_pages)),
                faulty: AtomicBool::new(false),
                faults: Mutex::new(None),
            }),
        };
        // `SMOOTH_FAULTS` auto-installs an injector on every storage
        // instance (tests and embedders override via `set_faults`).
        if let Some(env) = FaultConfig::from_env() {
            storage.set_faults(Some(env));
        }
        storage
    }

    /// Storage with default config (HDD, 256-page pool).
    pub fn default_hdd() -> Self {
        Self::new(StorageConfig::default())
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.inner.clock
    }

    /// CPU cost constants.
    pub fn cpu(&self) -> &CpuCosts {
        &self.inner.cpu
    }

    /// The current device profile.
    pub fn device(&self) -> DeviceProfile {
        self.inner.tracker.lock().device()
    }

    /// Swap the device profile (between experiments).
    pub fn set_device(&self, device: DeviceProfile) {
        self.inner.tracker.lock().set_device(device);
    }

    /// Install (or clear, with `None`) a [`FaultInjector`] on this
    /// storage instance. Inactive configs (all probabilities zero)
    /// clear instead of installing, keeping the hot-path flag honest.
    pub fn set_faults(&self, cfg: Option<FaultConfig>) {
        let injector = cfg.filter(FaultConfig::is_active).map(|c| Arc::new(FaultInjector::new(c)));
        self.inner.faulty.store(injector.is_some(), Ordering::Relaxed);
        *self.inner.faults.lock() = injector;
    }

    /// The installed fault injector, if any.
    pub fn faults(&self) -> Option<Arc<FaultInjector>> {
        if !self.inner.faulty.load(Ordering::Relaxed) {
            return None;
        }
        self.inner.faults.lock().clone()
    }

    /// Fault-gate one heap-page device read (pool misses only): a
    /// no-op without an injector, otherwise the injector's retry /
    /// backoff / fail verdict (see [`FaultInjector::page_read`]).
    #[inline]
    fn page_fault_check(&self, file: FileId, page: u32) -> Result<()> {
        match self.faults() {
            None => Ok(()),
            Some(inj) => inj.page_read(&self.inner.clock, file, page),
        }
    }

    /// Fault-gate one spill write of `bytes`/`rows` (the executor's
    /// overflow files route through this before charging the write).
    pub fn spill_fault_check(&self, bytes: u64, rows: u64) -> Result<()> {
        match self.faults() {
            None => Ok(()),
            Some(inj) => inj.spill_write(&self.inner.clock, bytes, rows),
        }
    }

    /// Whether the worker morsel `(file, key)` should panic under the
    /// installed injector (always `false` without one).
    pub fn morsel_panics(&self, file: Option<FileId>, key: u64) -> bool {
        self.faults().is_some_and(|inj| inj.morsel_panics(file, key))
    }

    /// Read one heap page through the pool, charging on miss.
    pub fn read_heap_page(&self, heap: &HeapFile, page: PageId) -> Result<PageBuf> {
        self.inner.clock.charge_cpu(self.inner.cpu.hash_op_ns); // pool lookup
        let file = heap.file_id();
        {
            let mut pool = self.inner.pool.lock();
            if let Some(Cached::Heap(buf)) = pool.get(file, page.0) {
                self.inner.tracker.lock().note_buffer_hit();
                tap_hits(1);
                return Ok(buf);
            }
        }
        self.page_fault_check(file, page.0)?;
        self.inner.tracker.lock().read_run(&self.inner.clock, file, page.0, 1);
        tap_io(1, 1);
        let buf = heap.read_raw(page)?;
        self.inner.pool.lock().insert(file, page.0, Cached::Heap(buf.clone()));
        Ok(buf)
    }

    /// Charge the buffer-pool probe CPU for `pages` pages of a heap
    /// run: one `hash_op_ns` lookup per page. [`Storage::read_heap_run`]
    /// does **not** charge this itself — every caller charges it on its
    /// own thread right after (or, for the parallel heap source, on the
    /// worker that decodes the run), so the serialized source lock holds
    /// only the irreducible device I/O.
    pub fn charge_page_probes(&self, pages: u64) {
        self.inner.clock.charge_cpu(self.inner.cpu.hash_op_ns * pages);
    }

    /// Read a contiguous run of heap pages `[start, start+len)` through the
    /// pool. Resident pages are served from cache; the missing pages are
    /// coalesced into maximal contiguous device requests (each one seek +
    /// sequential transfers). Returns the pages in order. Callers charge
    /// the per-page pool-probe CPU via [`Storage::charge_page_probes`].
    pub fn read_heap_run(
        &self,
        heap: &HeapFile,
        start: PageId,
        len: u32,
    ) -> Result<Vec<(PageId, PageBuf)>> {
        let file = heap.file_id();
        let mut out = Vec::with_capacity(len as usize);
        let mut missing: Vec<u32> = Vec::new();
        {
            let mut pool = self.inner.pool.lock();
            let mut tracker = self.inner.tracker.lock();
            for p in start.0..start.0 + len {
                match pool.get(file, p) {
                    Some(Cached::Heap(buf)) => {
                        tracker.note_buffer_hit();
                        out.push((PageId(p), buf));
                    }
                    _ => missing.push(p),
                }
            }
        }
        tap_hits(out.len() as u64);
        // Coalesce misses into maximal contiguous runs and fetch each.
        let mut i = 0;
        while i < missing.len() {
            let run_start = missing[i];
            let mut run_len = 1u32;
            while i + (run_len as usize) < missing.len()
                && missing[i + run_len as usize] == run_start + run_len
            {
                run_len += 1;
            }
            // Fault-gate the whole run before charging it: a faulted
            // page fails the read with the disk-arm counters untouched.
            for p in run_start..run_start + run_len {
                self.page_fault_check(file, p)?;
            }
            self.inner.tracker.lock().read_run(&self.inner.clock, file, run_start, run_len);
            tap_io(run_len as u64, 1);
            for p in run_start..run_start + run_len {
                let buf = heap.read_raw(PageId(p))?;
                self.inner.pool.lock().insert(file, p, Cached::Heap(buf.clone()));
                out.push((PageId(p), buf));
            }
            i += run_len as usize;
        }
        out.sort_unstable_by_key(|(p, _)| *p);
        Ok(out)
    }

    /// Touch a *virtual* page (a B+-tree node): pool residency decides
    /// whether the device is charged. Returns `true` on a pool hit.
    pub fn touch_index_page(&self, file: FileId, node: u32) -> bool {
        self.inner.clock.charge_cpu(self.inner.cpu.hash_op_ns);
        {
            let mut pool = self.inner.pool.lock();
            if pool.get(file, node).is_some() {
                self.inner.tracker.lock().note_buffer_hit();
                tap_hits(1);
                return true;
            }
            pool.insert(file, node, Cached::Virtual);
        }
        self.inner.tracker.lock().read_run(&self.inner.clock, file, node, 1);
        tap_io(1, 1);
        false
    }

    /// Flush the buffer pool (the paper's cold-run methodology: "we clear
    /// database buffer caches as well as OS file system caches before each
    /// query execution", Section VI-A).
    pub fn flush_pool(&self) {
        self.inner.pool.lock().clear();
    }

    /// Zero the clock and all I/O counters (between experiments).
    pub fn reset_metrics(&self) {
        self.inner.clock.reset();
        self.inner.tracker.lock().reset();
    }

    /// Current I/O counters.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.inner.tracker.lock().snapshot()
    }

    /// Distinct pages transferred for `file` since the last reset.
    pub fn distinct_pages_for(&self, file: FileId) -> u64 {
        self.inner.tracker.lock().distinct_pages_for(file)
    }

    /// Buffer pool occupancy (pages resident).
    pub fn pool_len(&self) -> usize {
        self.inner.pool.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_types::{Column, DataType, Row, Schema, Value};

    fn small_heap(rows: i64) -> HeapFile {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int64),
            Column::new("pad", DataType::Text),
        ])
        .unwrap();
        let mut l = crate::heap::HeapLoader::new_mem("t", schema);
        for i in 0..rows {
            l.push(&Row::new(vec![Value::Int(i), Value::str("x".repeat(100))])).unwrap();
        }
        l.finish().unwrap()
    }

    fn storage(pool_pages: usize) -> Storage {
        Storage::new(StorageConfig {
            device: DeviceProfile::custom("t", 1, 10),
            cpu: CpuCosts::default(),
            pool_pages,
        })
    }

    #[test]
    fn cold_read_charges_miss_then_hit_is_free() {
        let heap = small_heap(500);
        let s = storage(64);
        s.read_heap_page(&heap, PageId(3)).unwrap();
        let after_first = s.io_snapshot();
        assert_eq!(after_first.pages_read, 1);
        s.read_heap_page(&heap, PageId(3)).unwrap();
        let after_second = s.io_snapshot();
        assert_eq!(after_second.pages_read, 1);
        assert_eq!(after_second.buffer_hits, 1);
    }

    #[test]
    fn run_read_coalesces_around_cached_pages() {
        let heap = small_heap(2000);
        let s = storage(64);
        // Warm page 5 only.
        s.read_heap_page(&heap, PageId(5)).unwrap();
        s.reset_metrics();
        // Run [3, 9): pages 3,4 and 6,7,8 are missing → two requests.
        let pages = s.read_heap_run(&heap, PageId(3), 6).unwrap();
        assert_eq!(pages.len(), 6);
        assert!(pages.windows(2).all(|w| w[0].0 < w[1].0));
        let io = s.io_snapshot();
        assert_eq!(io.io_requests, 2);
        assert_eq!(io.pages_read, 5);
        assert_eq!(io.buffer_hits, 1);
    }

    #[test]
    fn read_bytes_counts_pages_once_per_coalesced_run() {
        // Regression guard for `ScanStatistics.read_bytes`: a coalesced
        // multi-page run must charge each page's bytes exactly once —
        // neither once per *request* (undercounting the run) nor again
        // on pool hits (double-counting warm pages).
        use crate::scanstats::tap_mark;
        use smooth_types::PAGE_SIZE;
        let heap = small_heap(2000);
        let s = storage(64);
        // Cold 5-page run: one seek, five transfers, 5×PAGE_SIZE bytes.
        let mark = tap_mark();
        s.read_heap_run(&heap, PageId(0), 5).unwrap();
        let cold = mark.delta();
        assert_eq!(cold.pages_read, 5);
        assert_eq!(cold.io_requests, 1, "contiguous misses coalesce into one request");
        assert_eq!(cold.read_bytes, 5 * PAGE_SIZE as u64);
        // Warm rerun: all hits, zero device traffic, zero bytes.
        let mark = tap_mark();
        s.read_heap_run(&heap, PageId(0), 5).unwrap();
        let warm = mark.delta();
        assert_eq!((warm.pages_read, warm.io_requests, warm.read_bytes), (0, 0, 0));
        assert_eq!(warm.buffer_hits, 5);
        // Partial warm: pages 0..5 resident, 5..8 missing. The split
        // run still counts each *missed* page's bytes exactly once.
        let mark = tap_mark();
        s.read_heap_run(&heap, PageId(0), 8).unwrap();
        let mixed = mark.delta();
        assert_eq!(mixed.pages_read, 3);
        assert_eq!(mixed.io_requests, 1);
        assert_eq!(mixed.buffer_hits, 5);
        assert_eq!(mixed.read_bytes, 3 * PAGE_SIZE as u64);
        assert_eq!(mixed.mb_read(), 3.0 * PAGE_SIZE as f64 / (1024.0 * 1024.0));
    }

    #[test]
    fn flush_makes_next_read_cold() {
        let heap = small_heap(500);
        let s = storage(64);
        s.read_heap_page(&heap, PageId(0)).unwrap();
        s.flush_pool();
        s.read_heap_page(&heap, PageId(0)).unwrap();
        assert_eq!(s.io_snapshot().pages_read, 2);
    }

    #[test]
    fn index_touch_tracks_residency() {
        let s = storage(64);
        let f = FileId::fresh();
        assert!(!s.touch_index_page(f, 0)); // cold
        assert!(s.touch_index_page(f, 0)); // now cached
        let io = s.io_snapshot();
        assert_eq!(io.pages_read, 1);
        assert_eq!(io.buffer_hits, 1);
    }

    #[test]
    fn tiny_pool_causes_rereads() {
        let heap = small_heap(2000);
        let s = storage(2);
        let n = heap.page_count();
        for p in 0..n {
            s.read_heap_page(&heap, PageId(p)).unwrap();
        }
        // Second sweep: everything was evicted.
        for p in 0..n {
            s.read_heap_page(&heap, PageId(p)).unwrap();
        }
        assert_eq!(s.io_snapshot().pages_read as u32, 2 * n);
        assert_eq!(s.io_snapshot().distinct_pages as u32, n);
    }

    #[test]
    fn faults_fire_on_misses_only_and_clear() {
        use crate::faults::FaultConfig;
        let heap = small_heap(500);
        let s = storage(64);
        // Warm a page fault-free, then poison every device read.
        s.read_heap_page(&heap, PageId(0)).unwrap();
        s.set_faults(Some(FaultConfig::new(1).corrupt(1.0)));
        // Pool hit: no device read, no fault.
        s.read_heap_page(&heap, PageId(0)).unwrap();
        // Miss: injected corruption, and no disk-arm perturbation.
        let io0 = s.io_snapshot();
        assert!(s.read_heap_page(&heap, PageId(1)).is_err());
        assert!(s.read_heap_run(&heap, PageId(1), 3).is_err());
        let io = s.io_snapshot().since(&io0);
        assert_eq!(io.pages_read, 0);
        assert_eq!(io.io_requests, 0);
        s.set_faults(None);
        s.read_heap_page(&heap, PageId(1)).unwrap();
    }

    #[test]
    fn inactive_fault_config_never_installs() {
        let s = storage(8);
        s.set_faults(Some(crate::faults::FaultConfig::new(9)));
        assert!(s.faults().is_none());
        assert!(!s.morsel_panics(None, 0));
        assert!(s.spill_fault_check(1 << 20, 100).is_ok());
    }

    #[test]
    fn clock_separates_cpu_and_io() {
        let heap = small_heap(500);
        let s = storage(64);
        s.read_heap_page(&heap, PageId(0)).unwrap();
        let snap = s.clock().snapshot();
        assert!(snap.io_ns > 0);
        assert!(snap.cpu_ns > 0);
        assert_eq!(snap.io_ns, 10); // one random page on the test device
    }
}
