//! Per-query scan/flow statistics and the thread-local accounting tap.
//!
//! The global [`crate::DiskTracker`] counters answer "what did the
//! *engine* do" — under concurrent sessions they sum traffic from every
//! in-flight query. [`ScanStatistics`] answers "what did *this query*
//! do": tuples inspected vs. emitted by scan filters, pages/bytes pulled
//! through the buffer pool, request and hit counts. The design follows
//! TiKV's `CFStatistics`/`FlowStatistics` split: small mergeable counter
//! structs accumulated per worker and summed into the per-query total.
//!
//! Attribution is exact even under concurrency because all charged page
//! traffic happens on the claiming worker's thread inside the query's
//! source lock: a worker brackets each unit of work with [`tap_mark`] /
//! [`TapMark::delta`] on its own thread-local monotone counters, so
//! concurrent queries on other threads never leak into the delta.

use std::cell::Cell;

use smooth_types::PAGE_SIZE;

/// Per-query scan/flow counters, merged TiKV-style from per-worker
/// partials. All fields are plain sums; [`ScanStatistics::merge`] adds
/// them field-wise ([`ScanStatistics::rows_total`] is set once by the
/// planner from catalog cardinalities, after the partials merge).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStatistics {
    /// Tuples inspected by scan filters (TiKV's "total" flow: every
    /// tuple the scan looked at, qualifying or not).
    pub rows_scanned: u64,
    /// Tuples that qualified and were emitted by the scans (TiKV's
    /// "processed" flow).
    pub rows_processed: u64,
    /// Total rows of the scanned base tables (planner-filled from
    /// catalog cardinalities; `0` when the query bypassed the planner).
    pub rows_total: u64,
    /// Pages this query transferred from the device.
    pub pages_read: u64,
    /// Device read requests this query issued (a coalesced multi-page
    /// run counts once).
    pub io_requests: u64,
    /// Buffer-pool hits this query scored.
    pub buffer_hits: u64,
    /// Bytes this query transferred from the device.
    pub read_bytes: u64,
    /// Wall-clock nanoseconds workers spent waiting to acquire this
    /// query's source lock (measured, informational — not part of the
    /// deterministic virtual-clock model).
    pub lock_wait_ns: u64,
    /// Morsels processed for this query (0 under the serial driver,
    /// which runs no morsel loop).
    pub morsels: u64,
}

impl ScanStatistics {
    /// Fold another partial in (field-wise sum; `rows_total` adds too —
    /// partials carry `0` there, the planner stamps the final value).
    pub fn merge(&mut self, other: &ScanStatistics) {
        self.rows_scanned += other.rows_scanned;
        self.rows_processed += other.rows_processed;
        self.rows_total += other.rows_total;
        self.pages_read += other.pages_read;
        self.io_requests += other.io_requests;
        self.buffer_hits += other.buffer_hits;
        self.read_bytes += other.read_bytes;
        self.lock_wait_ns += other.lock_wait_ns;
        self.morsels += other.morsels;
    }

    /// Observed scan selectivity: emitted over inspected tuples
    /// (`1.0` when nothing was inspected).
    pub fn selectivity(&self) -> f64 {
        if self.rows_scanned == 0 {
            1.0
        } else {
            self.rows_processed as f64 / self.rows_scanned as f64
        }
    }

    /// Megabytes transferred from the device for this query.
    pub fn mb_read(&self) -> f64 {
        self.read_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// The thread-local monotone counters the storage layer ticks.
#[derive(Debug, Clone, Copy, Default)]
struct TapCounters {
    rows_scanned: u64,
    rows_processed: u64,
    pages_read: u64,
    io_requests: u64,
    buffer_hits: u64,
}

thread_local! {
    static TAP: Cell<TapCounters> = const { Cell::new(TapCounters {
        rows_scanned: 0,
        rows_processed: 0,
        pages_read: 0,
        io_requests: 0,
        buffer_hits: 0,
    }) };
}

/// A snapshot of this thread's tap counters; subtracting two snapshots
/// ([`TapMark::delta`]) yields the scan traffic of the work between
/// them. Marks nest: the counters are monotone, so an inner
/// mark/delta pair never disturbs an outer one.
#[derive(Debug, Clone, Copy)]
pub struct TapMark(TapCounters);

/// Snapshot this thread's tap counters.
pub fn tap_mark() -> TapMark {
    TapMark(TAP.get())
}

impl TapMark {
    /// The scan traffic this thread performed since the mark.
    pub fn delta(&self) -> ScanStatistics {
        let now = TAP.get();
        let pages = now.pages_read - self.0.pages_read;
        ScanStatistics {
            rows_scanned: now.rows_scanned - self.0.rows_scanned,
            rows_processed: now.rows_processed - self.0.rows_processed,
            rows_total: 0,
            pages_read: pages,
            io_requests: now.io_requests - self.0.io_requests,
            buffer_hits: now.buffer_hits - self.0.buffer_hits,
            read_bytes: pages * PAGE_SIZE as u64,
            lock_wait_ns: 0,
            morsels: 0,
        }
    }
}

/// Tick tuple-flow counters: `scanned` tuples inspected, of which
/// `processed` qualified. Called by the executor's scan filters.
pub fn tap_rows(scanned: u64, processed: u64) {
    let mut c = TAP.get();
    c.rows_scanned += scanned;
    c.rows_processed += processed;
    TAP.set(c);
}

/// Tick device traffic: `pages` transferred in `requests` requests.
pub(crate) fn tap_io(pages: u64, requests: u64) {
    let mut c = TAP.get();
    c.pages_read += pages;
    c.io_requests += requests;
    TAP.set(c);
}

/// Tick buffer-pool hits.
pub(crate) fn tap_hits(hits: u64) {
    let mut c = TAP.get();
    c.buffer_hits += hits;
    TAP.set(c);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_nest_and_deltas_are_disjoint() {
        let outer = tap_mark();
        tap_rows(10, 4);
        let inner = tap_mark();
        tap_io(3, 1);
        tap_hits(2);
        let d_inner = inner.delta();
        assert_eq!(d_inner.rows_scanned, 0);
        assert_eq!(d_inner.pages_read, 3);
        assert_eq!(d_inner.io_requests, 1);
        assert_eq!(d_inner.buffer_hits, 2);
        assert_eq!(d_inner.read_bytes, 3 * PAGE_SIZE as u64);
        let d_outer = outer.delta();
        assert_eq!(d_outer.rows_scanned, 10);
        assert_eq!(d_outer.rows_processed, 4);
        assert_eq!(d_outer.pages_read, 3);
    }

    #[test]
    fn merge_sums_every_field() {
        let mut a = ScanStatistics {
            rows_scanned: 5,
            rows_processed: 2,
            rows_total: 0,
            pages_read: 3,
            io_requests: 1,
            buffer_hits: 4,
            read_bytes: 3 * PAGE_SIZE as u64,
            lock_wait_ns: 7,
            morsels: 1,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.rows_scanned, 10);
        assert_eq!(a.rows_processed, 4);
        assert_eq!(a.pages_read, 6);
        assert_eq!(a.io_requests, 2);
        assert_eq!(a.buffer_hits, 8);
        assert_eq!(a.lock_wait_ns, 14);
        assert_eq!(a.morsels, 2);
    }

    #[test]
    fn selectivity_handles_empty_scans() {
        assert_eq!(ScanStatistics::default().selectivity(), 1.0);
        let s = ScanStatistics { rows_scanned: 8, rows_processed: 2, ..Default::default() };
        assert!((s.selectivity() - 0.25).abs() < 1e-12);
    }
}
