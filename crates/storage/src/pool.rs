//! Buffer pool with clock (second-chance) eviction.
//!
//! Caches both heap pages (with their images) and *virtual* pages — B+-tree
//! nodes whose bytes live in the index structure itself but whose presence
//! in the pool decides whether touching them costs an I/O. This mirrors the
//! paper's observation that internal index nodes are usually cached ("these
//! pages are usually 1‰ to 1% of data pages", Section IV-A) while leaf and
//! heap pages contend for buffer space.
//!
//! The pool is deliberately small relative to table size in the experiments
//! (cold-run methodology: caches are flushed before each query).

use std::collections::HashMap;

use crate::page::PageBuf;
use crate::storage::FileId;

/// What the pool holds for a cached page.
#[derive(Debug, Clone)]
pub enum Cached {
    /// A heap page image.
    Heap(PageBuf),
    /// A B+-tree node; bytes live in the index, only residency is tracked.
    Virtual,
}

#[derive(Debug)]
struct Frame {
    key: (FileId, u32),
    value: Cached,
    referenced: bool,
}

/// A fixed-capacity page cache with clock eviction.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<(FileId, u32), usize>,
    hand: usize,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BufferPool {
            capacity,
            frames: Vec::with_capacity(capacity.min(4096)),
            map: HashMap::with_capacity(capacity.min(4096)),
            hand: 0,
        }
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up a page, marking it recently used on hit.
    pub fn get(&mut self, file: FileId, page: u32) -> Option<Cached> {
        let idx = *self.map.get(&(file, page))?;
        self.frames[idx].referenced = true;
        Some(self.frames[idx].value.clone())
    }

    /// Residency check without touching recency state.
    pub fn contains(&self, file: FileId, page: u32) -> bool {
        self.map.contains_key(&(file, page))
    }

    /// Insert (or refresh) a page, evicting via the clock hand if full.
    pub fn insert(&mut self, file: FileId, page: u32, value: Cached) {
        let key = (file, page);
        if let Some(&idx) = self.map.get(&key) {
            self.frames[idx].value = value;
            self.frames[idx].referenced = true;
            return;
        }
        if self.frames.len() < self.capacity {
            let idx = self.frames.len();
            self.frames.push(Frame { key, value, referenced: true });
            self.map.insert(key, idx);
            return;
        }
        // Clock sweep: clear reference bits until an unreferenced victim.
        loop {
            let f = &mut self.frames[self.hand];
            if f.referenced {
                f.referenced = false;
                self.hand = (self.hand + 1) % self.frames.len();
            } else {
                let old = std::mem::replace(f, Frame { key, value, referenced: true });
                self.map.remove(&old.key);
                self.map.insert(key, self.hand);
                self.hand = (self.hand + 1) % self.frames.len();
                return;
            }
        }
    }

    /// Drop everything (cold-run flush).
    pub fn clear(&mut self) {
        self.frames.clear();
        self.map.clear();
        self.hand = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(n: u32) -> FileId {
        FileId(n)
    }

    fn heap_page() -> Cached {
        let b = crate::page::PageBuilder::new();
        Cached::Heap(b.freeze())
    }

    #[test]
    fn hit_and_miss() {
        let mut p = BufferPool::new(4);
        assert!(p.get(fid(1), 0).is_none());
        p.insert(fid(1), 0, heap_page());
        assert!(matches!(p.get(fid(1), 0), Some(Cached::Heap(_))));
        p.insert(fid(2), 0, Cached::Virtual);
        assert!(matches!(p.get(fid(2), 0), Some(Cached::Virtual)));
        assert!(p.get(fid(1), 99).is_none());
    }

    #[test]
    fn evicts_when_full_and_respects_capacity() {
        let mut p = BufferPool::new(3);
        for i in 0..10 {
            p.insert(fid(1), i, Cached::Virtual);
        }
        assert_eq!(p.len(), 3);
        // The most recent insert must be resident.
        assert!(p.contains(fid(1), 9));
    }

    #[test]
    fn clock_gives_second_chance_to_referenced_pages() {
        let mut p = BufferPool::new(2);
        p.insert(fid(1), 0, Cached::Virtual);
        p.insert(fid(1), 1, Cached::Virtual);
        // Touch page 0 so it is referenced; inserting a third page should
        // evict page 1 (both start referenced; the sweep clears bits, and
        // the second pass picks the first unreferenced frame).
        p.get(fid(1), 0);
        p.insert(fid(1), 2, Cached::Virtual);
        assert_eq!(p.len(), 2);
        assert!(p.contains(fid(1), 2));
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let mut p = BufferPool::new(2);
        p.insert(fid(1), 0, Cached::Virtual);
        p.insert(fid(1), 0, heap_page());
        assert_eq!(p.len(), 1);
        assert!(matches!(p.get(fid(1), 0), Some(Cached::Heap(_))));
    }

    #[test]
    fn clear_empties_pool() {
        let mut p = BufferPool::new(2);
        p.insert(fid(1), 0, Cached::Virtual);
        p.clear();
        assert!(p.is_empty());
        assert!(p.get(fid(1), 0).is_none());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut p = BufferPool::new(0);
        assert_eq!(p.capacity(), 1);
        p.insert(fid(1), 0, Cached::Virtual);
        p.insert(fid(1), 1, Cached::Virtual);
        assert_eq!(p.len(), 1);
    }
}
