//! I/O counters: what Table II and Fig. 8b report.
//!
//! The tracker accumulates monotone counters; experiments snapshot before
//! and after a query and subtract, which is how the paper reports
//! per-query "#I/O requests" and "read data (GB)" (Table II) and
//! "number of read pages" (Fig. 8b).

use smooth_types::PAGE_SIZE;

/// Point-in-time I/O counter values. Subtracting two snapshots (via
/// [`IoSnapshot::since`]) yields the traffic of the work between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Number of I/O requests issued to the device (a multi-page
    /// sequential run counts once — this is what Table II counts).
    pub io_requests: u64,
    /// Pages transferred from the device (including re-reads).
    pub pages_read: u64,
    /// Pages transferred at sequential cost.
    pub seq_pages: u64,
    /// Pages transferred at random cost.
    pub rand_pages: u64,
    /// *Distinct* pages ever transferred (Fig. 8b's metric).
    pub distinct_pages: u64,
    /// Buffer pool hits (no device traffic).
    pub buffer_hits: u64,
}

/// Alias making call-sites explicit about deltas vs totals.
pub type IoStatsDelta = IoSnapshot;

impl IoSnapshot {
    /// Component-wise difference `self - earlier`.
    pub fn since(&self, earlier: &IoSnapshot) -> IoStatsDelta {
        IoSnapshot {
            io_requests: self.io_requests - earlier.io_requests,
            pages_read: self.pages_read - earlier.pages_read,
            seq_pages: self.seq_pages - earlier.seq_pages,
            rand_pages: self.rand_pages - earlier.rand_pages,
            distinct_pages: self.distinct_pages - earlier.distinct_pages,
            buffer_hits: self.buffer_hits - earlier.buffer_hits,
        }
    }

    /// Bytes transferred from the device.
    pub fn bytes_read(&self) -> u64 {
        self.pages_read * PAGE_SIZE as u64
    }

    /// Megabytes transferred from the device.
    pub fn mb_read(&self) -> f64 {
        self.bytes_read() as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_every_field() {
        let a = IoSnapshot {
            io_requests: 10,
            pages_read: 100,
            seq_pages: 90,
            rand_pages: 10,
            distinct_pages: 80,
            buffer_hits: 5,
        };
        let b = IoSnapshot {
            io_requests: 4,
            pages_read: 40,
            seq_pages: 36,
            rand_pages: 4,
            distinct_pages: 30,
            buffer_hits: 2,
        };
        let d = a.since(&b);
        assert_eq!(d.io_requests, 6);
        assert_eq!(d.pages_read, 60);
        assert_eq!(d.seq_pages, 54);
        assert_eq!(d.rand_pages, 6);
        assert_eq!(d.distinct_pages, 50);
        assert_eq!(d.buffer_hits, 3);
    }

    #[test]
    fn byte_accounting_uses_page_size() {
        let s = IoSnapshot { pages_read: 3, ..Default::default() };
        assert_eq!(s.bytes_read(), 3 * PAGE_SIZE as u64);
        assert!((s.mb_read() - 3.0 * 8192.0 / 1048576.0).abs() < 1e-12);
    }
}
