//! Slotted heap pages.
//!
//! Classic slotted layout inside an 8 KB buffer (PostgreSQL-style):
//!
//! ```text
//! +--------+----------------+...free space...+----------------+
//! | header |  slot array →  |                |  ← tuple data  |
//! +--------+----------------+----------------+----------------+
//! 0        4                4+4*n                              8192
//! ```
//!
//! * header: `n_slots: u16`, `data_start: u16` (lowest used tuple byte);
//! * slot array: one `(offset: u16, len: u16)` entry per tuple, growing up;
//! * tuple payloads grow down from the end of the page.
//!
//! Pages are immutable once frozen ([`PageBuilder::freeze`] →
//! [`PageBuf`]); the engine is an append-only analytical store, matching
//! the paper's read-only evaluation (cold-run selections and joins).

use std::sync::Arc;

use smooth_types::{Error, Result, SlotId, PAGE_SIZE};

/// Byte offset where the slot array begins.
const HEADER_LEN: usize = 4;
/// Bytes per slot-array entry.
const SLOT_LEN: usize = 4;

/// An immutable, reference-counted page image. This is the same type as
/// [`smooth_types::SharedBytes`], so a pinned page can be handed straight
/// to the columnar decoder as the backing buffer for zero-copy text
/// views.
pub type PageBuf = smooth_types::SharedBytes;

/// Builder for one page: accepts tuples until full, then freezes.
#[derive(Debug)]
pub struct PageBuilder {
    buf: Vec<u8>,
    n_slots: u16,
    data_start: u16,
}

impl PageBuilder {
    /// An empty page.
    pub fn new() -> Self {
        PageBuilder { buf: vec![0u8; PAGE_SIZE], n_slots: 0, data_start: PAGE_SIZE as u16 }
    }

    /// Bytes still available for one more tuple (accounting for its slot).
    pub fn free_space(&self) -> usize {
        let slots_end = HEADER_LEN + SLOT_LEN * self.n_slots as usize;
        (self.data_start as usize).saturating_sub(slots_end)
    }

    /// Number of tuples inserted so far.
    pub fn slot_count(&self) -> u16 {
        self.n_slots
    }

    /// Try to append a tuple; returns its slot, or `None` if it does not fit.
    pub fn insert(&mut self, tuple: &[u8]) -> Option<SlotId> {
        let need = tuple.len() + SLOT_LEN;
        if self.free_space() < need || tuple.len() > u16::MAX as usize {
            return None;
        }
        let slot = self.n_slots;
        let new_start = self.data_start as usize - tuple.len();
        self.buf[new_start..self.data_start as usize].copy_from_slice(tuple);
        let entry = HEADER_LEN + SLOT_LEN * slot as usize;
        self.buf[entry..entry + 2].copy_from_slice(&(new_start as u16).to_le_bytes());
        self.buf[entry + 2..entry + 4].copy_from_slice(&(tuple.len() as u16).to_le_bytes());
        self.n_slots += 1;
        self.data_start = new_start as u16;
        Some(slot)
    }

    /// Finalize: write the header and return the immutable image.
    pub fn freeze(mut self) -> PageBuf {
        self.buf[0..2].copy_from_slice(&self.n_slots.to_le_bytes());
        self.buf[2..4].copy_from_slice(&self.data_start.to_le_bytes());
        Arc::from(self.buf.into_boxed_slice())
    }
}

impl Default for PageBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Read-only view over a frozen page image.
#[derive(Debug, Clone, Copy)]
pub struct PageView<'a> {
    bytes: &'a [u8],
}

impl<'a> PageView<'a> {
    /// Wrap a page image, validating its size and header.
    pub fn new(bytes: &'a [u8]) -> Result<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(Error::corrupt(format!("page image of {} bytes", bytes.len())));
        }
        let view = PageView { bytes };
        let slots_end = HEADER_LEN + SLOT_LEN * view.slot_count() as usize;
        if slots_end > PAGE_SIZE || (view.data_start() as usize) < slots_end {
            return Err(Error::corrupt("page header out of bounds"));
        }
        Ok(view)
    }

    /// Number of tuples on the page.
    #[inline]
    pub fn slot_count(&self) -> u16 {
        u16::from_le_bytes([self.bytes[0], self.bytes[1]])
    }

    fn data_start(&self) -> u16 {
        u16::from_le_bytes([self.bytes[2], self.bytes[3]])
    }

    /// Raw bytes of the tuple in `slot`.
    pub fn get(&self, slot: SlotId) -> Result<&'a [u8]> {
        if slot >= self.slot_count() {
            return Err(Error::exec(format!(
                "slot {slot} out of range (page has {})",
                self.slot_count()
            )));
        }
        let entry = HEADER_LEN + SLOT_LEN * slot as usize;
        let off = u16::from_le_bytes([self.bytes[entry], self.bytes[entry + 1]]) as usize;
        let len = u16::from_le_bytes([self.bytes[entry + 2], self.bytes[entry + 3]]) as usize;
        if off + len > PAGE_SIZE || off < HEADER_LEN {
            return Err(Error::corrupt(format!("slot {slot} points outside the page")));
        }
        Ok(&self.bytes[off..off + len])
    }

    /// Iterate over all tuples in slot order.
    pub fn iter(&self) -> impl Iterator<Item = Result<&'a [u8]>> + '_ {
        let view = *self;
        (0..self.slot_count()).map(move |s| view.get(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_read_back() {
        let mut b = PageBuilder::new();
        let s0 = b.insert(b"alpha").unwrap();
        let s1 = b.insert(b"bravo!").unwrap();
        assert_eq!((s0, s1), (0, 1));
        let buf = b.freeze();
        let v = PageView::new(&buf).unwrap();
        assert_eq!(v.slot_count(), 2);
        assert_eq!(v.get(0).unwrap(), b"alpha");
        assert_eq!(v.get(1).unwrap(), b"bravo!");
        assert!(v.get(2).is_err());
    }

    #[test]
    fn fills_until_capacity() {
        let mut b = PageBuilder::new();
        let tuple = [7u8; 64];
        let mut n = 0;
        while b.insert(&tuple).is_some() {
            n += 1;
        }
        // (8192 - 4) / (64 + 4) = 120 tuples — the paper's §VI-D density.
        assert_eq!(n, 120);
        let buf = b.freeze();
        let v = PageView::new(&buf).unwrap();
        assert_eq!(v.slot_count(), 120);
        assert!(v.iter().all(|t| t.unwrap() == tuple));
    }

    #[test]
    fn rejects_oversized_tuple_but_accepts_next() {
        let mut b = PageBuilder::new();
        assert!(b.insert(&vec![0u8; PAGE_SIZE]).is_none());
        assert!(b.insert(b"ok").is_some());
    }

    #[test]
    fn empty_tuples_are_allowed() {
        let mut b = PageBuilder::new();
        let s = b.insert(b"").unwrap();
        let buf = b.freeze();
        assert_eq!(PageView::new(&buf).unwrap().get(s).unwrap(), b"");
    }

    #[test]
    fn view_validates_image() {
        assert!(PageView::new(&[0u8; 16]).is_err());
        let mut img = vec![0u8; PAGE_SIZE];
        img[0..2].copy_from_slice(&5000u16.to_le_bytes()); // absurd slot count
        assert!(PageView::new(&img).is_err());
    }

    #[test]
    fn free_space_decreases_by_tuple_plus_slot() {
        let mut b = PageBuilder::new();
        let before = b.free_space();
        b.insert(&[0u8; 10]).unwrap();
        assert_eq!(b.free_space(), before - 14);
    }
}
