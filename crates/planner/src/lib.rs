//! Cost-based planner and database facade.
//!
//! The smallest planner that can reproduce the paper's failure mode: it
//! estimates selectivities from (possibly stale — [`smooth_stats`])
//! statistics, prices the access paths with the Section-V cost model, and
//! picks the cheapest — so a wrong estimate flips a plan from Full Scan to
//! Index Scan exactly the way DBMS-X does in Fig. 1. The same machinery
//! then lets Smooth Scan replace the access-path decision altogether
//! ("the optimizer can always choose a Smooth Scan", Section IV-B).
//!
//! * [`catalog`] — tables, indexes, statistics, staleness injection;
//! * [`plan`] — logical plans (scan/join/aggregate/sort/project);
//! * [`optimizer`] — access-path and join-strategy selection;
//! * [`db`] — the [`db::Database`] facade: load, index, analyze, run, and
//!   measure queries under a chosen execution discipline.

pub mod catalog;
pub mod db;
pub mod optimizer;
pub mod plan;

pub use catalog::{Catalog, IndexEntry, TableEntry};
pub use db::{BatchResult, Database, QueryResult, RunStats, Session};
pub use optimizer::{AccessPathKind, Optimizer};
pub use plan::{AccessPathChoice, JoinSpec, JoinStrategy, LogicalPlan, ScanSpec};
