//! The optimizer: selectivity estimation → cost model → plan choice.
//!
//! Textbook System-R style, on purpose: the estimates come from the
//! (possibly damaged) statistics in the catalog, the costs from the
//! Section-V model. "Even a small estimation error may lead to a
//! drastically different result in terms of performance" (Section I) — the
//! mechanism below is faithful enough to reproduce that: the Full-vs-Index
//! tipping point sits at a fraction of a percent of selectivity, so a
//! correlation-blind estimate flips plans exactly like DBMS-X in Fig. 1.

use std::ops::Bound;

use smooth_core::{CostModel, TableGeometry};
use smooth_executor::Predicate;
use smooth_stats::{RangePredicate, StaleCatalog, StatsQuality};
use smooth_storage::DeviceProfile;

use crate::catalog::{Catalog, TableEntry};
use crate::plan::{JoinStrategy, LogicalPlan};

/// The access path the optimizer picked for a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPathKind {
    /// Sequential scan of the heap.
    FullScan,
    /// Non-clustered B+-tree scan.
    IndexScan,
    /// Bitmap (sort) scan.
    SortScan,
}

/// Stateless planning routines over a catalog.
pub struct Optimizer;

/// Default selectivity for predicates the statistics cannot price
/// (matches `smooth_stats::estimate::DEFAULT_RANGE_SELECTIVITY`).
const DEFAULT_SEL: f64 = 1.0 / 3.0;

impl Optimizer {
    /// Collect the pieces of a conjunction the statistics can price.
    /// Returns the priceable range predicates and the count of opaque
    /// conjuncts (string predicates, disjunctions, ...).
    fn collect_ranges(pred: &Predicate, out: &mut Vec<RangePredicate>) -> usize {
        match pred {
            Predicate::True => 0,
            Predicate::IntRange { col, lo, hi } => {
                out.push(RangePredicate { column: *col, lo: *lo, hi: *hi });
                0
            }
            Predicate::And(ps) => ps.iter().map(|p| Self::collect_ranges(p, out)).sum(),
            _ => 1,
        }
    }

    /// Estimated selectivity of a predicate under the table's statistics
    /// quality.
    pub fn estimate_selectivity(stats: &StaleCatalog, pred: &Predicate) -> f64 {
        let mut ranges = Vec::new();
        let opaque = Self::collect_ranges(pred, &mut ranges);
        let base = stats.estimated_selectivity(&ranges);
        match stats.quality() {
            // A pinned estimate is already a final answer.
            StatsQuality::FixedCardinality(_) => base,
            _ => base * DEFAULT_SEL.powi(opaque as i32),
        }
    }

    /// Estimated result cardinality for a scan.
    pub fn estimate_scan_rows(entry: &TableEntry, pred: &Predicate) -> f64 {
        Self::estimate_selectivity(&entry.stats, pred) * entry.stats.honest().row_count as f64
    }

    /// The cost model for a table on a device.
    pub fn cost_model(entry: &TableEntry, device: DeviceProfile) -> CostModel {
        let width = entry.heap.schema().estimated_tuple_width(16) as u64;
        CostModel::new(TableGeometry::new(width.max(1), entry.heap.tuple_count().max(1)), device)
    }

    /// Choose the access path for an `Auto` scan: price Full, Index and
    /// Sort Scan at the *estimated* cardinality and take the cheapest.
    /// `ordered` adds a posterior-sort penalty to the order-destroying
    /// paths (Section II).
    pub fn choose_access_path(
        entry: &TableEntry,
        pred: &Predicate,
        ordered: bool,
        device: DeviceProfile,
    ) -> AccessPathKind {
        let indexed_range =
            pred.split_index_range().filter(|(col, _, _, _)| entry.index_on(*col).is_some());
        if indexed_range.is_none() {
            return AccessPathKind::FullScan;
        }
        let model = Self::cost_model(entry, device);
        let est_rows = Self::estimate_scan_rows(entry, pred).max(0.0);
        let card = est_rows.round() as u64;
        // Posterior sort: n log n comparisons at the default 30 ns.
        let sort_penalty =
            if ordered && card > 1 { 30.0 * est_rows * est_rows.log2().max(1.0) } else { 0.0 };
        let full = model.fs_cost_ns() + sort_penalty;
        let index = model.is_cost_ns(card);
        let tid_sort = if card > 1 { 30.0 * est_rows * est_rows.log2().max(1.0) } else { 0.0 };
        let sort = model.sort_scan_cost_ns(card) + tid_sort + sort_penalty;
        if index <= full && index <= sort {
            AccessPathKind::IndexScan
        } else if sort <= full {
            AccessPathKind::SortScan
        } else {
            AccessPathKind::FullScan
        }
    }

    /// Estimated output rows of an arbitrary plan (used for join-strategy
    /// choices). Coarse on purpose — real optimizers are too.
    pub fn estimate_rows(catalog: &Catalog, plan: &LogicalPlan) -> f64 {
        match plan {
            LogicalPlan::Scan(spec) => match catalog.get(&spec.table) {
                Ok(entry) => Self::estimate_scan_rows(entry, &spec.predicate),
                Err(_) => 0.0,
            },
            LogicalPlan::Join(spec) => {
                let l = Self::estimate_rows(catalog, &spec.left);
                let r = Self::estimate_rows(catalog, &spec.right);
                // Assume a PK-FK equi-join: output ≈ the larger input's
                // qualifying fraction.
                l.max(r).max(1.0).min(l * r)
            }
            LogicalPlan::Aggregate { input, group_cols, .. } => {
                if group_cols.is_empty() {
                    1.0
                } else {
                    Self::estimate_rows(catalog, input).sqrt().max(1.0)
                }
            }
            LogicalPlan::Sort { input, .. } | LogicalPlan::Project { input, .. } => {
                Self::estimate_rows(catalog, input)
            }
            LogicalPlan::Filter { input, .. } => {
                // Opaque filter: apply the default selectivity.
                Self::estimate_rows(catalog, input) * DEFAULT_SEL
            }
        }
    }

    /// Choose between hash and index-nested-loop for an `Auto` join: INLJ
    /// wins when the *estimated* outer cardinality times the per-probe
    /// random cost undercuts scanning the inner table once. An
    /// underestimated outer flips this the wrong way — the Fig. 1 engine.
    pub fn choose_join_strategy(
        catalog: &Catalog,
        left: &LogicalPlan,
        right: &LogicalPlan,
        right_col: usize,
        device: DeviceProfile,
    ) -> JoinStrategy {
        // INLJ is only possible when the inner is a base scan with an
        // index on the join column.
        let LogicalPlan::Scan(rspec) = right else { return JoinStrategy::Hash };
        let Ok(rentry) = catalog.get(&rspec.table) else { return JoinStrategy::Hash };
        if rentry.index_on(right_col).is_none() {
            return JoinStrategy::Hash;
        }
        let outer_rows = Self::estimate_rows(catalog, left);
        let model = Self::cost_model(rentry, device);
        let probes =
            outer_rows * (model.geometry.height() as f64 + 1.0) * device.rand_page_ns as f64;
        let build = model.fs_cost_ns();
        if probes < build {
            JoinStrategy::IndexNestedLoop
        } else {
            JoinStrategy::Hash
        }
    }

    /// "Tuning tool": propose one secondary index per table, on the column
    /// most often constrained by the workload's range predicates — the
    /// moral equivalent of the DBMS-X advisor the paper runs with a 5 GB
    /// budget (Section VI-B).
    pub fn advise_indexes(workload: &[LogicalPlan]) -> Vec<(String, usize)> {
        use std::collections::HashMap;
        let mut votes: HashMap<(String, usize), usize> = HashMap::new();
        fn walk(plan: &LogicalPlan, votes: &mut HashMap<(String, usize), usize>) {
            match plan {
                LogicalPlan::Scan(spec) => {
                    if let Some((col, _, _, _)) = spec.predicate.split_index_range() {
                        *votes.entry((spec.table.clone(), col)).or_default() += 1;
                    }
                }
                LogicalPlan::Join(j) => {
                    walk(&j.left, votes);
                    walk(&j.right, votes);
                }
                LogicalPlan::Aggregate { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Project { input, .. }
                | LogicalPlan::Filter { input, .. } => walk(input, votes),
            }
        }
        for plan in workload {
            walk(plan, &mut votes);
        }
        // Keep the most-voted column per table.
        let mut best: HashMap<String, (usize, usize)> = HashMap::new();
        for ((table, col), n) in votes {
            let e = best.entry(table).or_insert((col, 0));
            if n > e.1 {
                *e = (col, n);
            }
        }
        let mut out: Vec<(String, usize)> = best.into_iter().map(|(t, (c, _))| (t, c)).collect();
        out.sort();
        out
    }

    /// Honest tipping point: the selectivity where the index scan model
    /// crosses the full scan model (Section II puts it at a fraction of a
    /// percent on HDDs).
    pub fn tipping_selectivity(entry: &TableEntry, device: DeviceProfile) -> f64 {
        let model = Self::cost_model(entry, device);
        let total = model.geometry.tuples;
        let (mut lo, mut hi) = (0u64, total);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if model.is_cost_ns(mid) < model.fs_cost_ns() {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo as f64 / total.max(1) as f64
    }
}

/// Convenience: the micro-benchmark predicate `lo <= col < hi` as bounds.
pub fn bounds_of(pred: &Predicate) -> Option<(usize, Bound<i64>, Bound<i64>, Predicate)> {
    pred.split_index_range()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_storage::HeapLoader;
    use smooth_types::{Column, DataType, Row, Schema, Value};

    fn catalog(rows: i64) -> Catalog {
        let schema = Schema::new(vec![
            Column::new("c0", DataType::Int64),
            Column::new("c1", DataType::Int64),
            Column::new("pad", DataType::Text),
        ])
        .unwrap();
        let mut l = HeapLoader::new_mem("t", schema);
        for i in 0..rows {
            l.push(&Row::new(vec![
                Value::Int(i),
                Value::Int(i % 10_000),
                Value::str("x".repeat(60)),
            ]))
            .unwrap();
        }
        let mut c = Catalog::new();
        c.register(Arc::new(l.finish().unwrap())).unwrap();
        c.create_index("t", 1, "t_c1").unwrap();
        c
    }

    use std::sync::Arc;

    #[test]
    fn narrow_predicates_pick_the_index_wide_ones_the_full_scan() {
        let c = catalog(100_000);
        let e = c.get("t").unwrap();
        let hdd = DeviceProfile::hdd();
        let narrow = Predicate::int_eq(1, 5); // ~10 rows (0.01%)
        let choice = Optimizer::choose_access_path(e, &narrow, false, hdd);
        assert_ne!(choice, AccessPathKind::FullScan);
        let wide = Predicate::int_half_open(1, 0, 9000); // 90%
        let choice = Optimizer::choose_access_path(e, &wide, false, hdd);
        assert_eq!(choice, AccessPathKind::FullScan);
    }

    #[test]
    fn no_index_means_full_scan() {
        let c = catalog(10_000);
        let e = c.get("t").unwrap();
        let pred = Predicate::int_eq(0, 5); // c0 has no index
        assert_eq!(
            Optimizer::choose_access_path(e, &pred, false, DeviceProfile::hdd()),
            AccessPathKind::FullScan
        );
    }

    #[test]
    fn stale_stats_flip_the_choice() {
        let mut c = catalog(100_000);
        let e = c.get("t").unwrap();
        let hdd = DeviceProfile::hdd();
        let wide = Predicate::int_half_open(1, 0, 9000); // truly 90%
        assert_eq!(Optimizer::choose_access_path(e, &wide, false, hdd), AccessPathKind::FullScan);
        // Damage: the optimizer believes almost nothing qualifies.
        c.set_stats_quality("t", smooth_stats::StatsQuality::FixedCardinality(10)).unwrap();
        let e = c.get("t").unwrap();
        let choice = Optimizer::choose_access_path(e, &wide, false, hdd);
        assert_ne!(
            choice,
            AccessPathKind::FullScan,
            "underestimation must flip to an index-based path"
        );
    }

    #[test]
    fn tipping_point_is_a_fraction_of_a_percent_on_hdd() {
        let c = catalog(100_000);
        let tip = Optimizer::tipping_selectivity(c.get("t").unwrap(), DeviceProfile::hdd());
        assert!(tip > 0.0 && tip < 0.02, "tipping at {tip}");
        let ssd = Optimizer::tipping_selectivity(c.get("t").unwrap(), DeviceProfile::ssd());
        assert!(ssd > tip, "SSD tolerates more index accesses: {ssd} vs {tip}");
    }

    #[test]
    fn join_strategy_flips_with_outer_estimate() {
        let mut c = catalog(100_000);
        let hdd = DeviceProfile::hdd();
        let outer = LogicalPlan::scan(
            // ~1000 rows: enough probes that an honest optimizer hashes.
            crate::plan::ScanSpec::new("t", Predicate::int_half_open(1, 0, 1000)),
        );
        let inner = LogicalPlan::scan(crate::plan::ScanSpec::new("t", Predicate::True));
        // With honest statistics, ~100 random probes against a ~400-page
        // inner lose to one sequential pass: hash join.
        assert_eq!(Optimizer::choose_join_strategy(&c, &outer, &inner, 1, hdd), JoinStrategy::Hash);
        // A correlation-blind underestimate of the outer flips the choice
        // to index-nested-loop — the Fig. 1 / Q12 failure mode.
        c.set_stats_quality("t", smooth_stats::StatsQuality::FixedCardinality(5)).unwrap();
        assert_eq!(
            Optimizer::choose_join_strategy(&c, &outer, &inner, 1, hdd),
            JoinStrategy::IndexNestedLoop
        );
        // No index on the join column → hash regardless.
        assert_eq!(Optimizer::choose_join_strategy(&c, &outer, &inner, 0, hdd), JoinStrategy::Hash);
    }

    #[test]
    fn advisor_votes_for_predicate_columns() {
        let q1 = LogicalPlan::scan(crate::plan::ScanSpec::new("t", Predicate::int_eq(1, 5)));
        let q2 = LogicalPlan::scan(crate::plan::ScanSpec::new("t", Predicate::int_eq(1, 9)))
            .aggregate(vec![], vec![smooth_executor::AggFunc::CountStar]);
        let q3 = LogicalPlan::scan(crate::plan::ScanSpec::new("t", Predicate::int_eq(0, 1)));
        let advice = Optimizer::advise_indexes(&[q1, q2, q3]);
        assert_eq!(advice, vec![("t".to_string(), 1)]);
    }
}
