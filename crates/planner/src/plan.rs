//! Logical plans.
//!
//! Plans are built programmatically (there is no SQL front end — the
//! paper's experiments are a fixed query set, and plan *shapes* are what
//! matters). The planner's job is the two decisions the paper studies:
//! which access path serves each scan, and which join strategy connects
//! inputs.

use smooth_core::SmoothScanConfig;
use smooth_executor::sort::SortKey;
use smooth_executor::{AggFunc, JoinType, Predicate};

/// How a scan's access path is chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPathChoice {
    /// Let the optimizer pick from its (possibly stale) statistics.
    Auto,
    /// Force a full table scan.
    ForceFull,
    /// Force a (non-clustered) index scan.
    ForceIndex,
    /// Force a sort (bitmap) scan.
    ForceSort,
    /// Use Smooth Scan with this configuration.
    Smooth(SmoothScanConfig),
    /// Use Switch Scan with this cardinality estimate.
    Switch {
        /// Cardinality threshold at which the scan abandons the index.
        estimate: u64,
    },
}

/// One base-table scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanSpec {
    /// Table name.
    pub table: String,
    /// Full predicate (the planner splits an index range out of it).
    pub predicate: Predicate,
    /// Output must be ordered by the predicate's index column.
    pub ordered: bool,
    /// Access-path discipline.
    pub access: AccessPathChoice,
}

impl ScanSpec {
    /// An auto-planned scan.
    pub fn new(table: impl Into<String>, predicate: Predicate) -> Self {
        ScanSpec { table: table.into(), predicate, ordered: false, access: AccessPathChoice::Auto }
    }

    /// Builder: require key order.
    pub fn with_order(mut self) -> Self {
        self.ordered = true;
        self
    }

    /// Builder: set the access-path discipline.
    pub fn with_access(mut self, access: AccessPathChoice) -> Self {
        self.access = access;
        self
    }
}

/// Join strategy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Optimizer decides between hash and index-nested-loop.
    Auto,
    /// Hash join (build on the right input).
    Hash,
    /// Merge join (inputs must arrive sorted on the join keys).
    Merge,
    /// Index nested-loop: the right side must be a base-table scan whose
    /// join column is indexed.
    IndexNestedLoop,
    /// Plain nested loop over a materialized right side.
    NestedLoop,
}

/// One equi-join.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinSpec {
    /// Left (outer/probe) input.
    pub left: LogicalPlan,
    /// Right (inner/build) input.
    pub right: LogicalPlan,
    /// Join column ordinal in the left output.
    pub left_col: usize,
    /// Join column ordinal in the right output.
    pub right_col: usize,
    /// Inner or left-semi.
    pub ty: JoinType,
    /// Strategy discipline.
    pub strategy: JoinStrategy,
}

/// A logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base-table access.
    Scan(ScanSpec),
    /// Equi-join of two plans.
    Join(Box<JoinSpec>),
    /// Grouped or scalar aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by column ordinals (empty = scalar).
        group_cols: Vec<usize>,
        /// Aggregates to compute.
        aggs: Vec<AggFunc>,
    },
    /// Blocking sort.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys.
        keys: Vec<SortKey>,
    },
    /// Column projection.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Columns to keep, in order.
        cols: Vec<usize>,
    },
    /// Row filter above another plan (predicates that cannot push into a
    /// scan, e.g. conditions spanning both sides of a join).
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Keep rows where this holds.
        predicate: Predicate,
    },
}

impl LogicalPlan {
    /// Convenience: a scan plan.
    pub fn scan(spec: ScanSpec) -> Self {
        LogicalPlan::Scan(spec)
    }

    /// Convenience: join this plan with another.
    pub fn join(
        self,
        right: LogicalPlan,
        left_col: usize,
        right_col: usize,
        ty: JoinType,
        strategy: JoinStrategy,
    ) -> Self {
        LogicalPlan::Join(Box::new(JoinSpec {
            left: self,
            right,
            left_col,
            right_col,
            ty,
            strategy,
        }))
    }

    /// Convenience: aggregate this plan.
    pub fn aggregate(self, group_cols: Vec<usize>, aggs: Vec<AggFunc>) -> Self {
        LogicalPlan::Aggregate { input: Box::new(self), group_cols, aggs }
    }

    /// Convenience: sort this plan.
    pub fn sort(self, keys: Vec<SortKey>) -> Self {
        LogicalPlan::Sort { input: Box::new(self), keys }
    }

    /// Convenience: project this plan.
    pub fn project(self, cols: Vec<usize>) -> Self {
        LogicalPlan::Project { input: Box::new(self), cols }
    }

    /// Convenience: filter this plan.
    pub fn filter(self, predicate: Predicate) -> Self {
        LogicalPlan::Filter { input: Box::new(self), predicate }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let plan = LogicalPlan::scan(ScanSpec::new("a", Predicate::True))
            .join(
                LogicalPlan::scan(ScanSpec::new("b", Predicate::True)),
                0,
                1,
                JoinType::Inner,
                JoinStrategy::Auto,
            )
            .aggregate(vec![0], vec![AggFunc::CountStar])
            .sort(vec![SortKey::asc(0)])
            .project(vec![0]);
        match plan {
            LogicalPlan::Project { input, cols } => {
                assert_eq!(cols, vec![0]);
                assert!(matches!(*input, LogicalPlan::Sort { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scan_spec_builders() {
        let s = ScanSpec::new("t", Predicate::int_eq(0, 5))
            .with_order()
            .with_access(AccessPathChoice::ForceFull);
        assert!(s.ordered);
        assert_eq!(s.access, AccessPathChoice::ForceFull);
    }
}
