//! The `Database` facade: load tables, build indexes, run measured
//! queries.
//!
//! `run` follows the paper's cold-run methodology (Section VI-A): the
//! buffer pool is flushed before each query and the virtual clock / I/O
//! counters are snapshotted around execution, yielding per-query
//! [`RunStats`] — execution time split into CPU and I/O wait (Fig. 4),
//! I/O requests and bytes moved (Table II).
//!
//! Queries execute through the columnar pipeline: `run_batches` /
//! `run_operator_batches` drain the operator tree with
//! [`collect_batches`], which requests [`smooth_types::ColumnBatch`]es
//! of `smooth_executor::batch_size()` rows (the `SMOOTH_BATCH_ROWS`
//! knob) per virtual call rather than one tuple at a time, and the
//! result stays columnar — text columns keep their zero-copy views into
//! pinned heap pages. `Row`s materialize only when a caller crosses the
//! user-facing boundary ([`BatchResult::into_rows`], or the
//! row-carrying [`Database::run`] / [`QueryResult`] wrappers).
//!
//! With more than one worker configured (`SMOOTH_WORKERS` /
//! [`Database::with_workers`], default = available cores), `run`
//! decomposes the plan via [`Database::parallel_pipeline`] and submits
//! it to the database's **persistent** worker pool
//! ([`smooth_executor::Scheduler`]) — same rows, byte for byte, and
//! (when the query runs alone) the same virtual clock/I-O totals, with
//! per-worker stages doing the CPU-heavy work in parallel.
//!
//! The pool is engine-global: concurrent [`Session`]s (cheap handles
//! from [`Database::session`]) share it, along with the buffer pool,
//! disk-arm tracker and virtual clock. At most
//! [`Database::max_queries`] queries run concurrently
//! (`SMOOTH_MAX_QUERIES`, default 4); submissions beyond the cap queue
//! FIFO. Every [`QueryResult`] carries per-query
//! [`ScanStatistics`] — tuple flow, pages/bytes read, buffer hits,
//! source-lock wait — attributed exactly to that query even under
//! concurrency (`RunStats`' clock/I-O *deltas*, by contrast, read the
//! shared engine counters and are only meaningful single-session).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use smooth_core::{SmoothScan, SmoothScanConfig, SwitchScan};
use smooth_executor::scan::FULL_SCAN_READAHEAD;
use smooth_executor::sort::SortKey;
use smooth_executor::{
    batch_size, collect_batches, BoxedOperator, BuildSpec, Filter, FullTableScan, HashAggregate,
    HashJoin, IndexNestedLoopJoin, IndexScan, MergeJoin, NestedLoopJoin, Operator,
    ParallelPipeline, ParallelSource, Predicate, Project, QueryHandle, Scheduler, SinkSpec, Sort,
    SortScan, StageSpec,
};
use smooth_stats::StatsQuality;
use smooth_storage::{
    tap_mark, ClockSnapshot, FaultConfig, HeapLoader, IoStatsDelta, ScanStatistics, Storage,
    StorageConfig,
};
use smooth_types::{ColumnBatch, Error, Result, Row, Schema};

use crate::catalog::{Catalog, TableEntry};
use crate::optimizer::{AccessPathKind, Optimizer};
use crate::plan::{AccessPathChoice, JoinSpec, JoinStrategy, LogicalPlan, ScanSpec};

/// Per-query measurements.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Rows returned.
    pub rows: u64,
    /// Virtual clock delta (CPU + I/O wait).
    pub clock: ClockSnapshot,
    /// I/O counter deltas.
    pub io: IoStatsDelta,
}

impl RunStats {
    /// Execution time in virtual seconds.
    pub fn secs(&self) -> f64 {
        self.clock.total_secs()
    }
}

/// A query's rows plus its measurements.
#[derive(Debug)]
pub struct QueryResult {
    /// The result rows.
    pub rows: Vec<Row>,
    /// Engine-counter deltas around the run (clock, I/O). Meaningful
    /// when the query ran alone; under concurrent sessions they include
    /// whatever else the engine did in the window.
    pub stats: RunStats,
    /// Per-query scan statistics, attributed exactly to this query even
    /// under concurrent sessions (`rows_total` is stamped from catalog
    /// cardinalities of the plan's base tables).
    pub scan: ScanStatistics,
}

/// A query's *columnar* result plus its measurements — the
/// late-materialization twin of [`QueryResult`]. Pipeline-shaped output
/// (scans, filters, projections, joins) arrives as [`ColumnBatch`]es in
/// serial morsel order; aggregate/sort sinks, which fold to rows by
/// nature, arrive in `rows`. Exactly one of the two is non-empty for a
/// non-empty result. Callers that want `Row`s call
/// [`BatchResult::into_rows`] (or use [`Database::run`], which does it
/// for them) — that conversion is the only place result tuples
/// materialize.
#[derive(Debug)]
pub struct BatchResult {
    /// Columnar result batches, in serial morsel order.
    pub batches: Vec<ColumnBatch>,
    /// Row results from aggregate / sort sinks.
    pub rows: Vec<Row>,
    /// Engine-counter deltas around the run (see [`QueryResult::stats`]).
    pub stats: RunStats,
    /// Per-query scan statistics (see [`QueryResult::scan`]).
    pub scan: ScanStatistics,
}

impl BatchResult {
    /// Total result rows across batches and folded rows.
    pub fn len(&self) -> usize {
        self.batches.iter().map(ColumnBatch::len).sum::<usize>() + self.rows.len()
    }

    /// True when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize every result tuple as a [`Row`] — the user-facing
    /// boundary where zero-copy text views become owned strings.
    pub fn into_rows(self) -> Vec<Row> {
        let mut rows: Vec<Row> =
            self.batches.into_iter().flat_map(ColumnBatch::into_rows).collect();
        let mut tail = self.rows;
        rows.append(&mut tail);
        rows
    }

    /// Materialize into the row-carrying [`QueryResult`].
    pub fn into_result(self) -> QueryResult {
        let (stats, scan) = (self.stats, self.scan);
        QueryResult { rows: self.into_rows(), stats, scan }
    }
}

/// Worker-pool width used by [`Database::run`] when none is set on the
/// instance: the `SMOOTH_WORKERS` environment variable (minimum 1, read
/// **once per process** and latched, like `SMOOTH_BATCH_ROWS`), else the
/// number of available cores.
pub fn default_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("SMOOTH_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.clamp(1, 1024))
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// Per-operator memory budget used when none is set on the instance:
/// the process-wide `SMOOTH_MEM_BYTES` knob
/// ([`smooth_executor::mem_budget_bytes`]); `0` = unlimited. Each
/// blocking operator instance (hash-join build, sort) of an active
/// query gets this budget and spills to charged overflow files beyond
/// it — see `docs/larger_than_memory.md`.
pub fn default_mem_bytes() -> usize {
    smooth_executor::mem_budget_bytes()
}

/// Concurrent-query admission cap used when none is set on the
/// instance: the `SMOOTH_MAX_QUERIES` environment variable (clamped to
/// 1..=1024, read **once per process** and latched), else 4.
pub fn default_max_queries() -> usize {
    static MAX_QUERIES: OnceLock<usize> = OnceLock::new();
    *MAX_QUERIES.get_or_init(|| {
        std::env::var("SMOOTH_MAX_QUERIES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.clamp(1, 1024))
            .unwrap_or(4)
    })
}

/// A peeled hash-join build side: its morsel source, the per-worker
/// stages it runs (filters, projections, nested probes), its output
/// schema, and its slot in the serial open cascade (see
/// `Database::peel_build`).
struct PeeledBuild {
    source: ParallelSource,
    stages: Vec<StageSpec>,
    schema: Schema,
    mem_bytes: usize,
    open_at: usize,
    open_order: usize,
}

/// An engine instance: storage manager + catalog + (lazily) the
/// persistent worker pool concurrent sessions share.
pub struct Database {
    storage: Storage,
    catalog: Catalog,
    workers: Option<usize>,
    max_queries: Option<usize>,
    mem_bytes: Option<usize>,
    timeout_ms: Option<u64>,
    claim_morsels: Option<usize>,
    /// The engine's worker pool, built on first parallel run and keyed
    /// by the (workers, max_queries) knobs so knob changes rebuild it.
    scheduler: Mutex<Option<(usize, usize, Arc<Scheduler>)>>,
}

impl Database {
    /// A database over the given storage configuration.
    pub fn new(cfg: StorageConfig) -> Self {
        Database {
            storage: Storage::new(cfg),
            catalog: Catalog::new(),
            workers: None,
            max_queries: None,
            mem_bytes: None,
            timeout_ms: None,
            claim_morsels: None,
            scheduler: Mutex::new(None),
        }
    }

    /// Builder: fix the worker-pool width for [`Database::run`]
    /// (overrides `SMOOTH_WORKERS` / the core count). `1` forces the
    /// single-threaded columnar driver.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.set_workers(workers);
        self
    }

    /// Fix the worker-pool width (see [`Database::with_workers`]).
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = Some(workers.max(1));
    }

    /// Worker-pool width `run` will use.
    pub fn workers(&self) -> usize {
        self.workers.unwrap_or_else(default_workers)
    }

    /// Builder: fix the concurrent-query admission cap (overrides
    /// `SMOOTH_MAX_QUERIES`). Submissions beyond the cap queue FIFO.
    pub fn with_max_queries(mut self, max_queries: usize) -> Self {
        self.set_max_queries(max_queries);
        self
    }

    /// Fix the admission cap (see [`Database::with_max_queries`]).
    pub fn set_max_queries(&mut self, max_queries: usize) {
        self.max_queries = Some(max_queries.max(1));
    }

    /// Concurrent queries the shared worker pool admits at once.
    pub fn max_queries(&self) -> usize {
        self.max_queries.unwrap_or_else(default_max_queries)
    }

    /// Builder: fix the per-operator memory budget in bytes (overrides
    /// `SMOOTH_MEM_BYTES`; 0 = unlimited). Each blocking operator of a
    /// query — hash-join build, sort — spills to charged overflow files
    /// beyond it.
    pub fn with_mem_bytes(mut self, mem_bytes: usize) -> Self {
        self.set_mem_bytes(mem_bytes);
        self
    }

    /// Fix the per-operator memory budget (see
    /// [`Database::with_mem_bytes`]).
    pub fn set_mem_bytes(&mut self, mem_bytes: usize) {
        self.mem_bytes = Some(mem_bytes);
    }

    /// Per-operator memory budget plans will run under (0 = unlimited).
    pub fn mem_bytes(&self) -> usize {
        self.mem_bytes.unwrap_or_else(default_mem_bytes)
    }

    /// Builder: fix the per-query timeout in **virtual-clock**
    /// milliseconds (overrides `SMOOTH_QUERY_TIMEOUT_MS`; 0 disables).
    /// A query whose modeled CPU + I/O time crosses the deadline fails
    /// with [`Error::Cancelled`] at its next morsel boundary, releasing
    /// everything it held; other sessions are untouched.
    pub fn with_query_timeout_ms(mut self, ms: u64) -> Self {
        self.set_query_timeout_ms(ms);
        self
    }

    /// Fix the per-query timeout (see
    /// [`Database::with_query_timeout_ms`]).
    pub fn set_query_timeout_ms(&mut self, ms: u64) {
        self.timeout_ms = Some(ms);
        // The pool may already exist: the knob is a live atomic on the
        // scheduler, so apply it there too rather than forcing a
        // rebuild (which would tear down the worker threads).
        let slot = self.scheduler.lock().unwrap_or_else(|p| p.into_inner());
        if let Some((_, _, s)) = slot.as_ref() {
            s.set_timeout_ms(ms);
        }
    }

    /// Per-query virtual-clock timeout in milliseconds (0 = none).
    pub fn query_timeout_ms(&self) -> u64 {
        self.timeout_ms.unwrap_or_else(smooth_executor::default_query_timeout_ms)
    }

    /// Builder: fix the worker pool's morsels-per-claim chunk size
    /// (overrides `SMOOTH_CLAIM_MORSELS`; 0 = guided by remaining
    /// work). Larger chunks amortize source-lock traffic and feed the
    /// per-worker stealing queues; 1 reproduces the one-at-a-time
    /// claims of the pre-stealing scheduler.
    pub fn with_claim_morsels(mut self, n: usize) -> Self {
        self.set_claim_morsels(n);
        self
    }

    /// Fix the morsels-per-claim chunk size (see
    /// [`Database::with_claim_morsels`]).
    pub fn set_claim_morsels(&mut self, n: usize) {
        self.claim_morsels = Some(n);
        // The pool may already exist: the knob is a live atomic on the
        // scheduler, so apply it there too rather than forcing a
        // rebuild (which would tear down the worker threads).
        let slot = self.scheduler.lock().unwrap_or_else(|p| p.into_inner());
        if let Some((_, _, s)) = slot.as_ref() {
            s.set_claim_morsels(n);
        }
    }

    /// Morsels per source claim (0 = guided).
    pub fn claim_morsels(&self) -> usize {
        self.claim_morsels.unwrap_or_else(smooth_executor::default_claim_morsels)
    }

    /// Builder: install a deterministic fault-injection configuration
    /// on this database's storage (overrides `SMOOTH_FAULTS`; see
    /// `docs/fault_model.md`). Injected faults are a pure function of
    /// the seed and the I/O's coordinates, so runs replay exactly.
    pub fn with_faults(self, cfg: FaultConfig) -> Self {
        self.set_faults(Some(cfg));
        self
    }

    /// Install (or, with `None`, remove) the fault-injection
    /// configuration (see [`Database::with_faults`]).
    pub fn set_faults(&self, cfg: Option<FaultConfig>) {
        self.storage.set_faults(cfg);
    }

    /// A session handle onto this shared database. Sessions are cheap,
    /// carry a process-unique id, and any number may run queries
    /// concurrently: result rows are always exactly the rows a solo run
    /// would return, while clock/I-O deltas interleave (one disk arm,
    /// one buffer pool) — use [`QueryResult::scan`] for per-query
    /// attribution.
    pub fn session(&self) -> Session<'_> {
        static NEXT_SESSION: AtomicU64 = AtomicU64::new(1);
        Session { db: self, id: NEXT_SESSION.fetch_add(1, Ordering::Relaxed) }
    }

    /// The persistent worker pool for the current knob settings,
    /// building (or rebuilding, after a knob change) it on demand.
    fn scheduler(&self) -> Arc<Scheduler> {
        let workers = self.workers();
        let max_queries = self.max_queries();
        let mut slot = self.scheduler.lock().unwrap_or_else(|p| p.into_inner());
        match slot.as_ref() {
            Some((w, m, s)) if *w == workers && *m == max_queries => Arc::clone(s),
            _ => {
                let s = Arc::new(Scheduler::new(workers, max_queries));
                if let Some(ms) = self.timeout_ms {
                    s.set_timeout_ms(ms);
                }
                if let Some(n) = self.claim_morsels {
                    s.set_claim_morsels(n);
                }
                *slot = Some((workers, max_queries, Arc::clone(&s)));
                s
            }
        }
    }

    /// The shared storage handle.
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// The catalog (immutable).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Load a table from a row iterator (setup work, not charged).
    pub fn load_table(
        &mut self,
        name: &str,
        schema: Schema,
        rows: impl IntoIterator<Item = Row>,
    ) -> Result<()> {
        let mut loader = HeapLoader::new_mem(name, schema);
        for row in rows {
            loader.push(&row)?;
        }
        self.catalog.register(Arc::new(loader.finish()?))
    }

    /// Build a secondary index.
    pub fn create_index(&mut self, table: &str, column: usize, name: &str) -> Result<()> {
        self.catalog.create_index(table, column, name)
    }

    /// Set the staleness model for a table's statistics.
    pub fn set_stats_quality(&mut self, table: &str, quality: StatsQuality) -> Result<()> {
        self.catalog.set_stats_quality(table, quality)
    }

    /// Look up a table entry.
    pub fn table(&self, name: &str) -> Result<&TableEntry> {
        self.catalog.get(name)
    }

    /// Build the physical operator tree for a plan.
    pub fn build(&self, plan: &LogicalPlan) -> Result<BoxedOperator> {
        match plan {
            LogicalPlan::Scan(spec) => self.build_scan(spec),
            LogicalPlan::Join(spec) => {
                let strategy = self.resolve_join_strategy(spec);
                let left = self.build(&spec.left)?;
                match strategy {
                    JoinStrategy::IndexNestedLoop => {
                        let LogicalPlan::Scan(rspec) = &spec.right else {
                            return Err(Error::plan(
                                "index-nested-loop join needs a base-table inner",
                            ));
                        };
                        let entry = self.catalog.get(&rspec.table)?;
                        let idx = entry.index_on(spec.right_col).ok_or_else(|| {
                            Error::plan(format!(
                                "no index on {}.{} for INLJ",
                                rspec.table, spec.right_col
                            ))
                        })?;
                        Ok(Box::new(IndexNestedLoopJoin::new(
                            left,
                            spec.left_col,
                            Arc::clone(&entry.heap),
                            Arc::clone(&idx.index),
                            rspec.predicate.clone(),
                            spec.ty,
                            self.storage.clone(),
                        )))
                    }
                    JoinStrategy::Hash | JoinStrategy::Auto => {
                        let right = self.build(&spec.right)?;
                        Ok(Box::new(
                            HashJoin::new(
                                left,
                                right,
                                spec.left_col,
                                spec.right_col,
                                spec.ty,
                                self.storage.clone(),
                            )
                            .with_mem_budget(self.mem_bytes()),
                        ))
                    }
                    JoinStrategy::Merge => {
                        // Guarantee the ordering contract by sorting both
                        // inputs on their join keys.
                        let left = Box::new(
                            Sort::new(
                                left,
                                self.storage.clone(),
                                vec![SortKey::asc(spec.left_col)],
                            )
                            .with_mem_budget(self.mem_bytes()),
                        );
                        let right = Box::new(
                            Sort::new(
                                self.build(&spec.right)?,
                                self.storage.clone(),
                                vec![SortKey::asc(spec.right_col)],
                            )
                            .with_mem_budget(self.mem_bytes()),
                        );
                        Ok(Box::new(MergeJoin::new(
                            left,
                            right,
                            spec.left_col,
                            spec.right_col,
                            self.storage.clone(),
                        )))
                    }
                    JoinStrategy::NestedLoop => {
                        let right = self.build(&spec.right)?;
                        // Equi-join predicate over the concatenated row is
                        // not expressible with IntRange on two columns, so
                        // NLJ here materializes and hashes instead — kept
                        // as an explicit fallback for non-equi needs.
                        let _ = &right;
                        Ok(Box::new(NestedLoopJoin::new(
                            left,
                            right,
                            Predicate::True,
                            spec.ty,
                            self.storage.clone(),
                        )))
                    }
                }
            }
            LogicalPlan::Aggregate { input, group_cols, aggs } => {
                let child = self.build(input)?;
                Ok(Box::new(HashAggregate::new(
                    child,
                    group_cols.clone(),
                    aggs.clone(),
                    self.storage.clone(),
                )?))
            }
            LogicalPlan::Sort { input, keys } => {
                let child = self.build(input)?;
                Ok(Box::new(
                    Sort::new(child, self.storage.clone(), keys.clone())
                        .with_mem_budget(self.mem_bytes()),
                ))
            }
            LogicalPlan::Project { input, cols } => {
                let child = self.build(input)?;
                Ok(Box::new(Project::new(child, cols.clone())?))
            }
            LogicalPlan::Filter { input, predicate } => {
                let child = self.build(input)?;
                Ok(Box::new(Filter::new(child, predicate.clone())))
            }
        }
    }

    /// Resolve `Auto` join strategies the way [`Database::build`] would.
    fn resolve_join_strategy(&self, spec: &JoinSpec) -> JoinStrategy {
        match spec.strategy {
            JoinStrategy::Auto => Optimizer::choose_join_strategy(
                &self.catalog,
                &spec.left,
                &spec.right,
                spec.right_col,
                self.storage.device(),
            ),
            other => other,
        }
    }

    /// Resolve an `Auto` access path the way [`Database::build`] would.
    fn resolve_access(&self, entry: &TableEntry, spec: &ScanSpec) -> AccessPathChoice {
        match &spec.access {
            AccessPathChoice::Auto => match Optimizer::choose_access_path(
                entry,
                &spec.predicate,
                spec.ordered,
                self.storage.device(),
            ) {
                AccessPathKind::FullScan => AccessPathChoice::ForceFull,
                AccessPathKind::IndexScan => AccessPathChoice::ForceIndex,
                AccessPathKind::SortScan => AccessPathChoice::ForceSort,
            },
            other => other.clone(),
        }
    }

    fn build_scan(&self, spec: &ScanSpec) -> Result<BoxedOperator> {
        let entry = self.catalog.get(&spec.table)?;
        let heap = Arc::clone(&entry.heap);
        let split = spec.predicate.split_index_range();
        let indexed = split.clone().filter(|(col, _, _, _)| entry.index_on(*col).is_some());
        let choice = self.resolve_access(entry, spec);
        let need_index = |what: &str| {
            indexed.clone().ok_or_else(|| {
                Error::plan(format!("{what} on '{}' needs an indexed range predicate", spec.table))
            })
        };
        let sort_wrap = |op: BoxedOperator| -> Result<BoxedOperator> {
            if spec.ordered {
                let (col, _, _, _) = split
                    .clone()
                    .ok_or_else(|| Error::plan("ordered scan without a range predicate column"))?;
                Ok(Box::new(
                    Sort::new(op, self.storage.clone(), vec![SortKey::asc(col)])
                        .with_mem_budget(self.mem_bytes()),
                ))
            } else {
                Ok(op)
            }
        };
        match choice {
            AccessPathChoice::ForceFull => {
                let op: BoxedOperator = Box::new(FullTableScan::new(
                    heap,
                    self.storage.clone(),
                    spec.predicate.clone(),
                ));
                sort_wrap(op)
            }
            AccessPathChoice::ForceIndex => {
                let (col, lo, hi, residual) = need_index("index scan")?;
                let idx = entry.index_on(col).expect("checked");
                Ok(Box::new(IndexScan::new(
                    heap,
                    Arc::clone(&idx.index),
                    self.storage.clone(),
                    lo,
                    hi,
                    residual,
                )))
            }
            AccessPathChoice::ForceSort => {
                let (col, lo, hi, residual) = need_index("sort scan")?;
                let idx = entry.index_on(col).expect("checked");
                let op: BoxedOperator = Box::new(SortScan::new(
                    heap,
                    Arc::clone(&idx.index),
                    self.storage.clone(),
                    lo,
                    hi,
                    residual,
                ));
                sort_wrap(op)
            }
            AccessPathChoice::Smooth(config) => {
                let (col, lo, hi, residual) = need_index("smooth scan")?;
                let idx = entry.index_on(col).expect("checked");
                let config = config.with_order(config.ordered || spec.ordered);
                Ok(Box::new(SmoothScan::new(
                    heap,
                    Arc::clone(&idx.index),
                    self.storage.clone(),
                    col,
                    lo,
                    hi,
                    residual,
                    config,
                )))
            }
            AccessPathChoice::Switch { estimate } => {
                let (col, lo, hi, residual) = need_index("switch scan")?;
                let idx = entry.index_on(col).expect("checked");
                Ok(Box::new(SwitchScan::new(
                    heap,
                    Arc::clone(&idx.index),
                    self.storage.clone(),
                    col,
                    lo,
                    hi,
                    residual,
                    estimate,
                )))
            }
            AccessPathChoice::Auto => unreachable!("resolved above"),
        }
    }

    /// Build a Smooth Scan directly (experiments that need
    /// [`smooth_core::SmoothScanMetrics`] after the run).
    pub fn build_smooth_scan(
        &self,
        spec: &ScanSpec,
        config: SmoothScanConfig,
    ) -> Result<SmoothScan> {
        let entry = self.catalog.get(&spec.table)?;
        let (col, lo, hi, residual) = spec
            .predicate
            .split_index_range()
            .filter(|(col, _, _, _)| entry.index_on(*col).is_some())
            .ok_or_else(|| Error::plan("smooth scan needs an indexed range predicate"))?;
        let idx = entry.index_on(col).expect("checked");
        Ok(SmoothScan::new(
            Arc::clone(&entry.heap),
            Arc::clone(&idx.index),
            self.storage.clone(),
            col,
            lo,
            hi,
            residual,
            config.with_order(config.ordered || spec.ordered),
        ))
    }

    /// EXPLAIN: the physical operator tree the plan would run as.
    pub fn explain(&self, plan: &LogicalPlan) -> Result<String> {
        Ok(self.build(plan)?.label())
    }

    /// Decompose `plan` into a [`ParallelPipeline`] for the morsel-driven
    /// worker pool, or `None` when nothing in the plan would fan out
    /// (in which case `run` stays on the single-threaded driver).
    ///
    /// The decomposition peels parallel-safe nodes off the top — one
    /// `Aggregate` (the sink), then `Filter` / `Project` / hash-strategy
    /// `Join` probes (per-worker stages, build sides built and drained
    /// serially) — until it reaches the morsel source. An unordered full
    /// table scan becomes the *partitioned* heap source (workers decode
    /// page runs in parallel); any other subtree (Smooth / Switch /
    /// index / sort scans, non-hash joins, nested aggregates) runs
    /// unchanged as a serial shared source, which is exactly how the
    /// adaptive scans' morph decisions stay centralized while the stages
    /// above them still parallelize. Plan validation errors (missing
    /// tables, bad ordinals) surface here identically to [`Database::build`].
    pub fn parallel_pipeline(&self, plan: &LogicalPlan) -> Result<Option<ParallelPipeline>> {
        if let LogicalPlan::Scan(spec) = plan {
            if let Some(pipeline) = self.ordered_scan_pipeline(spec)? {
                return Ok(Some(pipeline));
            }
        }
        let (sink_spec, inner) = match plan {
            LogicalPlan::Aggregate { input, group_cols, aggs } => {
                (Some((group_cols.clone(), aggs.clone())), input.as_ref())
            }
            other => (None, other),
        };
        let (source, stages, builds, schema) = self.peel(inner)?;
        let sink = match sink_spec {
            Some((group_cols, aggs)) => {
                // Validate exactly like HashAggregate::new.
                smooth_executor::agg::output_schema(&schema, &group_cols, &aggs)?;
                let merge_exact = aggs.iter().all(|a| a.merge_exact(&schema));
                SinkSpec::Aggregate { group_cols, aggs, merge_exact }
            }
            None => SinkSpec::Collect,
        };
        if stages.is_empty()
            && builds.is_empty()
            && matches!(source, ParallelSource::Shared { .. })
            && matches!(sink, SinkSpec::Collect)
        {
            // Nothing would fan out: the whole plan is the serial section.
            return Ok(None);
        }
        Ok(Some(ParallelPipeline {
            source,
            builds,
            stages,
            sink,
            storage: self.storage.clone(),
            morsel_rows: batch_size(),
        }))
    }

    /// Validate a projection against `schema` exactly like `Project::new`
    /// and return the projected schema (shared by the probe-side and
    /// build-side peels).
    fn project_schema(schema: &Schema, cols: &[usize]) -> Result<Schema> {
        let kept = cols
            .iter()
            .map(|&c| {
                if c >= schema.len() {
                    Err(Error::schema(format!("project column {c} out of range")))
                } else {
                    Ok(schema.column(c).clone())
                }
            })
            .collect::<Result<Vec<_>>>()?;
        Schema::new(kept)
    }

    /// Parallelize an `ordered:` full table scan: the partitioned heap
    /// source decodes page runs across workers, rows buffer at the sink
    /// in morsel (= heap) order, and completion runs the same charged
    /// stable sort pass the serial `Sort`-over-`FullTableScan` plan
    /// runs — so rows *and* charges are byte-identical to the serial
    /// driver. Other ordered access paths (sort scan, smooth scan)
    /// order at the source and keep their serial shared-source path.
    fn ordered_scan_pipeline(&self, spec: &ScanSpec) -> Result<Option<ParallelPipeline>> {
        if !spec.ordered {
            return Ok(None);
        }
        let entry = self.catalog.get(&spec.table)?;
        if !matches!(self.resolve_access(entry, spec), AccessPathChoice::ForceFull) {
            return Ok(None);
        }
        // Same validation — and error — as the serial plan's sort wrap.
        let (col, _, _, _) = spec
            .predicate
            .split_index_range()
            .ok_or_else(|| Error::plan("ordered scan without a range predicate column"))?;
        Ok(Some(ParallelPipeline {
            source: ParallelSource::Heap {
                heap: Arc::clone(&entry.heap),
                predicate: spec.predicate.clone(),
                readahead: FULL_SCAN_READAHEAD,
            },
            builds: Vec::new(),
            stages: Vec::new(),
            sink: SinkSpec::Sort { keys: vec![SortKey::asc(col)], mem_bytes: self.mem_bytes() },
            storage: self.storage.clone(),
            morsel_rows: batch_size(),
        }))
    }

    /// Decompose one scan into a morsel source: an unordered full table
    /// scan becomes the *partitioned* heap source (workers decode page
    /// runs in parallel), anything else runs whole as a serial shared
    /// source. Shared by the probe-side and build-side peels so both
    /// resolve access paths identically.
    fn scan_source(&self, spec: &ScanSpec) -> Result<(ParallelSource, Schema)> {
        let entry = self.catalog.get(&spec.table)?;
        if matches!(self.resolve_access(entry, spec), AccessPathChoice::ForceFull) && !spec.ordered
        {
            let heap = Arc::clone(&entry.heap);
            let schema = heap.schema().clone();
            return Ok((
                ParallelSource::Heap {
                    heap,
                    predicate: spec.predicate.clone(),
                    readahead: FULL_SCAN_READAHEAD,
                },
                schema,
            ));
        }
        let op = self.build_scan(spec)?;
        let schema = op.schema().clone();
        Ok((ParallelSource::Shared { op }, schema))
    }

    /// Bottom-up pipeline peel: returns the source, the per-worker
    /// stages (source side first), the serial hash-join builds
    /// (bottom-up), and the subtree's output schema.
    #[allow(clippy::type_complexity)]
    fn peel(
        &self,
        plan: &LogicalPlan,
    ) -> Result<(ParallelSource, Vec<StageSpec>, Vec<BuildSpec>, Schema)> {
        let mut builds = Vec::new();
        let mut open_seq = 0;
        let (source, stages, schema) = self.peel_into(plan, &mut builds, &mut open_seq)?;
        Ok((source, stages, builds, schema))
    }

    /// The probe-side peel. `builds` accumulates every hash-join build
    /// in completion order (nested builds land before the builds that
    /// probe them); `open_seq` numbers build-source opens in the serial
    /// cascade's open order across the whole tree.
    fn peel_into(
        &self,
        plan: &LogicalPlan,
        builds: &mut Vec<BuildSpec>,
        open_seq: &mut usize,
    ) -> Result<(ParallelSource, Vec<StageSpec>, Schema)> {
        match plan {
            LogicalPlan::Filter { input, predicate } => {
                let (source, mut stages, schema) = self.peel_into(input, builds, open_seq)?;
                stages.push(StageSpec::Filter(predicate.clone()));
                Ok((source, stages, schema))
            }
            LogicalPlan::Project { input, cols } => {
                let (source, mut stages, schema) = self.peel_into(input, builds, open_seq)?;
                let schema = Self::project_schema(&schema, cols)?;
                stages.push(StageSpec::Project(cols.clone()));
                Ok((source, stages, schema))
            }
            LogicalPlan::Join(spec) if self.resolve_join_strategy(spec) == JoinStrategy::Hash => {
                let (source, mut stages, left_schema) =
                    self.peel_into(&spec.left, builds, open_seq)?;
                // The build is a pipeline breaker with a pipeline of its
                // own: decompose the right subtree into a build-side
                // source + stages so the partitioned parallel build can
                // fan its decode/insert CPU out too.
                let build = self.peel_build(&spec.right, builds, open_seq)?;
                let schema = Self::push_build(spec, build, &left_schema, &mut stages, builds)?;
                Ok((source, stages, schema))
            }
            LogicalPlan::Scan(spec) => {
                let (source, schema) = self.scan_source(spec)?;
                Ok((source, Vec::new(), schema))
            }
            // Pipeline breakers that stay serial (sorts, non-hash joins,
            // nested aggregates): the whole subtree is the shared source.
            other => {
                let op = self.build(other)?;
                let schema = op.schema().clone();
                Ok((ParallelSource::Shared { op }, Vec::new(), schema))
            }
        }
    }

    /// Validate one hash join against its peeled build side, append the
    /// probe stage, and push the [`BuildSpec`]. Shared by the probe-side
    /// and build-side peels so bushy trees compose the same way.
    fn push_build(
        spec: &JoinSpec,
        build: PeeledBuild,
        left_schema: &Schema,
        stages: &mut Vec<StageSpec>,
        builds: &mut Vec<BuildSpec>,
    ) -> Result<Schema> {
        if spec.right_col >= build.schema.len() {
            return Err(Error::plan(format!(
                "hash-join build key column {} out of range",
                spec.right_col
            )));
        }
        let schema = match spec.ty {
            smooth_executor::JoinType::Inner => left_schema.join(&build.schema),
            smooth_executor::JoinType::LeftSemi => left_schema.clone(),
        };
        stages.push(StageSpec::Probe(builds.len()));
        builds.push(BuildSpec {
            source: build.source,
            stages: build.stages,
            right_col: spec.right_col,
            left_col: spec.left_col,
            ty: spec.ty,
            partitions: smooth_executor::BUILD_PARTITIONS,
            mem_bytes: build.mem_bytes,
            open_at: build.open_at,
            open_order: build.open_order,
        });
        Ok(schema)
    }

    /// Decompose a hash-join *build side* into its own morsel source
    /// plus per-worker stages. Filters and projections peel into
    /// stages; a nested hash join peels recursively — its own build
    /// lands in `builds` first and the outer build-side pipeline probes
    /// it through a [`StageSpec::Probe`] stage, so bushy trees (hash
    /// joins on the build side of hash joins) parallelize end to end.
    /// Anything deeper (a non-hash join, an aggregate, a sort) runs
    /// unchanged as a serial shared source. An unordered full scan
    /// becomes the partitioned heap source, so the build input's decode
    /// fans out exactly like the probe side's.
    ///
    /// `open_at` captures how many builds must complete before this
    /// source opens: the number of builds already accumulated when the
    /// source is reached, which preserves the left-deep open cascade
    /// (build `i + 1` opens when build `i` drains) and lets bushy
    /// sources open at admission. `open_order` numbers the opens.
    fn peel_build(
        &self,
        plan: &LogicalPlan,
        builds: &mut Vec<BuildSpec>,
        open_seq: &mut usize,
    ) -> Result<PeeledBuild> {
        match plan {
            LogicalPlan::Filter { input, predicate } => {
                let mut build = self.peel_build(input, builds, open_seq)?;
                build.stages.push(StageSpec::Filter(predicate.clone()));
                Ok(build)
            }
            LogicalPlan::Project { input, cols } => {
                let mut build = self.peel_build(input, builds, open_seq)?;
                build.schema = Self::project_schema(&build.schema, cols)?;
                build.stages.push(StageSpec::Project(cols.clone()));
                Ok(build)
            }
            LogicalPlan::Join(spec) if self.resolve_join_strategy(spec) == JoinStrategy::Hash => {
                // Probe side first: its source is this build's source
                // (and opens before the nested build's, mirroring the
                // serial cascade), then the nested build lands below
                // the outer one in `builds`.
                let mut probe = self.peel_build(&spec.left, builds, open_seq)?;
                let inner = self.peel_build(&spec.right, builds, open_seq)?;
                let left_schema = probe.schema.clone();
                probe.schema =
                    Self::push_build(spec, inner, &left_schema, &mut probe.stages, builds)?;
                Ok(probe)
            }
            LogicalPlan::Scan(spec) => {
                let (source, schema) = self.scan_source(spec)?;
                Ok(self.peeled_build(source, schema, builds, open_seq))
            }
            other => {
                let op = self.build(other)?;
                let schema = op.schema().clone();
                Ok(self.peeled_build(ParallelSource::Shared { op }, schema, builds, open_seq))
            }
        }
    }

    /// Stamp a build-side source with its open tranche and order.
    fn peeled_build(
        &self,
        source: ParallelSource,
        schema: Schema,
        builds: &[BuildSpec],
        open_seq: &mut usize,
    ) -> PeeledBuild {
        let open_order = *open_seq;
        *open_seq += 1;
        PeeledBuild {
            source,
            stages: Vec::new(),
            schema,
            mem_bytes: self.mem_bytes(),
            open_at: builds.len(),
            open_order,
        }
    }

    /// Total catalog cardinality of the plan's base tables (the
    /// denominator behind "processed X of Y rows" progress reporting).
    /// Tables missing from the catalog count 0 — the run itself
    /// surfaces the error.
    fn plan_rows_total(&self, plan: &LogicalPlan) -> u64 {
        match plan {
            LogicalPlan::Scan(spec) => self
                .catalog
                .get(&spec.table)
                .map(|entry| entry.stats.honest().row_count)
                .unwrap_or(0),
            LogicalPlan::Join(spec) => {
                self.plan_rows_total(&spec.left) + self.plan_rows_total(&spec.right)
            }
            LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Filter { input, .. } => self.plan_rows_total(input),
        }
    }

    /// Cold-run a plan: flush the buffer pool, execute to completion, and
    /// report rows plus clock/I-O deltas and per-query scan statistics.
    ///
    /// With more than one worker configured (`SMOOTH_WORKERS` /
    /// [`Database::with_workers`]) and a plan with parallelizable work,
    /// execution goes through the engine's persistent worker pool — the
    /// rows are identical to the single-threaded columnar driver either
    /// way, and so are the virtual clock/I-O totals when the query runs
    /// alone.
    pub fn run(&self, plan: &LogicalPlan) -> Result<QueryResult> {
        Ok(self.run_batches(plan)?.into_result())
    }

    /// Cold-run a plan and keep the result *columnar*: the
    /// late-materialization entry point. Same measurement protocol as
    /// [`Database::run`] (which is a thin `into_result()` over this),
    /// but pipeline-shaped results stay as [`ColumnBatch`]es — text
    /// columns keep their zero-copy views — until the caller decides
    /// whether rows are needed at all.
    pub fn run_batches(&self, plan: &LogicalPlan) -> Result<BatchResult> {
        let mut result = if self.workers() > 1 {
            match self.parallel_pipeline(plan)? {
                Some(pipeline) => self.run_parallel_batches(pipeline)?,
                None => {
                    let mut op = self.build(plan)?;
                    self.run_operator_batches(op.as_mut())?
                }
            }
        } else {
            let mut op = self.build(plan)?;
            self.run_operator_batches(op.as_mut())?
        };
        result.scan.rows_total = self.plan_rows_total(plan);
        Ok(result)
    }

    /// Cold-run an already-decomposed pipeline on the database's
    /// persistent worker pool (`scan.rows_total` stays 0 here — only
    /// [`Database::run`] sees the plan).
    pub fn run_parallel(&self, pipeline: ParallelPipeline) -> Result<QueryResult> {
        Ok(self.run_parallel_batches(pipeline)?.into_result())
    }

    /// Columnar twin of [`Database::run_parallel`]: Collect-sink output
    /// arrives as the scheduler's ordered batches, untouched.
    pub fn run_parallel_batches(&self, pipeline: ParallelPipeline) -> Result<BatchResult> {
        self.storage.flush_pool();
        let clock0 = self.storage.clock().snapshot();
        let io0 = self.storage.io_snapshot();
        let scheduler = self.scheduler();
        let out = scheduler.submit(pipeline)?.wait()?;
        let stats = RunStats {
            rows: out.len() as u64,
            clock: self.storage.clock().snapshot().since(&clock0),
            io: self.storage.io_snapshot().since(&io0),
        };
        Ok(BatchResult { batches: out.batches, rows: out.rows, stats, scan: out.stats })
    }

    /// Cold-run an already-built operator (used when the caller needs to
    /// keep the operator around for its metrics). Drives the columnar
    /// protocol end to end; scan statistics come from this thread's
    /// accounting tap bracketing the run.
    pub fn run_operator(&self, op: &mut dyn Operator) -> Result<QueryResult> {
        Ok(self.run_operator_batches(op)?.into_result())
    }

    /// Columnar twin of [`Database::run_operator`]: drains via
    /// [`collect_batches`], so no `Row` materializes anywhere in the
    /// serial path.
    pub fn run_operator_batches(&self, op: &mut dyn Operator) -> Result<BatchResult> {
        self.storage.flush_pool();
        let clock0 = self.storage.clock().snapshot();
        let io0 = self.storage.io_snapshot();
        let mark = tap_mark();
        let batches = collect_batches(op)?;
        let scan = mark.delta();
        let stats = RunStats {
            rows: batches.iter().map(ColumnBatch::len).sum::<usize>() as u64,
            clock: self.storage.clock().snapshot().since(&clock0),
            io: self.storage.io_snapshot().since(&io0),
        };
        Ok(BatchResult { batches, rows: Vec::new(), stats, scan })
    }

    /// Run with a filter applied on top (for plans whose predicate cannot
    /// push into the scan). Routed through [`Database::run`], so the
    /// filter becomes a per-worker stage under the parallel driver.
    pub fn run_filtered(&self, plan: &LogicalPlan, pred: Predicate) -> Result<QueryResult> {
        self.run(&plan.clone().filter(pred))
    }

    /// Submit a plan to the shared worker pool **without blocking**,
    /// returning a [`QueryHandle`] that can be waited on or cancelled
    /// ([`QueryHandle::cancel`]). Plans with nothing to fan out run as
    /// a serial shared source on the pool, so every submitted query —
    /// parallel or not — is cancellable and subject to the per-query
    /// timeout. Unlike [`Database::run`] this neither flushes the
    /// buffer pool nor snapshots the engine counters: the handle's
    /// [`smooth_executor::QueryOutput`] carries per-query
    /// [`ScanStatistics`] instead (with `rows_total` left 0 — only
    /// `run` stamps it).
    pub fn submit(&self, plan: &LogicalPlan) -> Result<QueryHandle> {
        let pipeline = match self.parallel_pipeline(plan)? {
            Some(pipeline) => pipeline,
            None => {
                // Serial section only: wrap the whole operator tree as
                // the shared morsel source with a collect sink, which
                // the pool drains one morsel at a time — checking the
                // cancel flag and deadline at every boundary.
                let op = self.build(plan)?;
                ParallelPipeline {
                    source: ParallelSource::Shared { op },
                    builds: Vec::new(),
                    stages: Vec::new(),
                    sink: SinkSpec::Collect,
                    storage: self.storage.clone(),
                    morsel_rows: batch_size(),
                }
            }
        };
        self.scheduler().submit(pipeline)
    }
}

/// One client's handle onto a shared [`Database`]: queries submitted
/// through concurrent sessions interleave on the engine's one worker
/// pool, buffer pool and disk arm (admission-capped at
/// [`Database::max_queries`]), yet each returns exactly the rows a solo
/// run would — only the accounting interleaves. Obtained from
/// [`Database::session`]; cheap enough to create per client or per
/// request.
#[derive(Clone, Copy)]
pub struct Session<'db> {
    db: &'db Database,
    id: u64,
}

impl<'db> Session<'db> {
    /// This session's process-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The shared database this session serves queries against.
    pub fn database(&self) -> &'db Database {
        self.db
    }

    /// Run a plan on the shared engine (see [`Database::run`]).
    pub fn run(&self, plan: &LogicalPlan) -> Result<QueryResult> {
        self.db.run(plan)
    }

    /// Run with a filter applied on top (see [`Database::run_filtered`]).
    pub fn run_filtered(&self, plan: &LogicalPlan, pred: Predicate) -> Result<QueryResult> {
        self.db.run_filtered(plan, pred)
    }

    /// Submit a plan without blocking, returning a cancellable
    /// [`QueryHandle`] (see [`Database::submit`]).
    pub fn submit(&self, plan: &LogicalPlan) -> Result<QueryHandle> {
        self.db.submit(plan)
    }

    /// EXPLAIN a plan (see [`Database::explain`]).
    pub fn explain(&self, plan: &LogicalPlan) -> Result<String> {
        self.db.explain(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_executor::AggFunc;
    use smooth_storage::{CpuCosts, DeviceProfile};
    use smooth_types::{Column, DataType, Value};

    fn db(rows: i64) -> Database {
        let mut db = Database::new(StorageConfig {
            device: DeviceProfile::custom("t", 1, 10),
            cpu: CpuCosts::default(),
            pool_pages: 64,
        });
        let schema = Schema::new(vec![
            Column::new("c0", DataType::Int64),
            Column::new("c1", DataType::Int64),
            Column::new("pad", DataType::Text),
        ])
        .unwrap();
        db.load_table(
            "t",
            schema,
            (0..rows).map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::Int(((i.wrapping_mul(2654435761)) % 1000 + 1000) % 1000),
                    Value::str("x".repeat(40)),
                ])
            }),
        )
        .unwrap();
        db.create_index("t", 1, "t_c1").unwrap();
        db
    }

    fn q(hi: i64, access: AccessPathChoice) -> LogicalPlan {
        LogicalPlan::scan(
            ScanSpec::new("t", Predicate::int_half_open(1, 0, hi)).with_access(access),
        )
    }

    #[test]
    fn all_access_paths_agree() {
        let db = db(3000);
        let reference = db.run(&q(250, AccessPathChoice::ForceFull)).unwrap();
        let mut expected: Vec<i64> = reference.rows.iter().map(|r| r.int(0).unwrap()).collect();
        expected.sort_unstable();
        for access in [
            AccessPathChoice::ForceIndex,
            AccessPathChoice::ForceSort,
            AccessPathChoice::Smooth(SmoothScanConfig::default()),
            AccessPathChoice::Switch { estimate: 100 },
            AccessPathChoice::Auto,
        ] {
            let got = db.run(&q(250, access.clone())).unwrap();
            let mut ids: Vec<i64> = got.rows.iter().map(|r| r.int(0).unwrap()).collect();
            ids.sort_unstable();
            assert_eq!(ids, expected, "{access:?}");
            assert!(got.stats.secs() > 0.0);
            assert!(got.stats.io.pages_read > 0);
        }
    }

    #[test]
    fn ordered_scans_sort_when_needed() {
        let db = db(2000);
        for access in [AccessPathChoice::ForceFull, AccessPathChoice::ForceSort] {
            let plan = LogicalPlan::scan(
                ScanSpec::new("t", Predicate::int_half_open(1, 0, 500))
                    .with_order()
                    .with_access(access.clone()),
            );
            let got = db.run(&plan).unwrap();
            let keys: Vec<i64> = got.rows.iter().map(|r| r.int(1).unwrap()).collect();
            assert!(keys.windows(2).all(|w| w[0] <= w[1]), "{access:?}");
        }
    }

    #[test]
    fn aggregation_over_scan() {
        let db = db(2000);
        let plan = q(100, AccessPathChoice::Auto)
            .aggregate(vec![], vec![AggFunc::CountStar, AggFunc::Min(1), AggFunc::Max(1)]);
        let got = db.run(&plan).unwrap();
        assert_eq!(got.rows.len(), 1);
        let count = got.rows[0].int(0).unwrap();
        assert!(count > 0);
        assert!(got.rows[0].int(2).unwrap() < 100);
    }

    #[test]
    fn join_strategies_agree() {
        let db = db(2000);
        let outer = LogicalPlan::scan(ScanSpec::new("t", Predicate::int_half_open(1, 0, 50)));
        let mk = |strategy| {
            outer.clone().join(
                LogicalPlan::scan(ScanSpec::new("t", Predicate::True)),
                1,
                1,
                smooth_executor::JoinType::Inner,
                strategy,
            )
        };
        let hash = db.run(&mk(JoinStrategy::Hash)).unwrap().rows.len();
        let inlj = db.run(&mk(JoinStrategy::IndexNestedLoop)).unwrap().rows.len();
        let merge = db.run(&mk(JoinStrategy::Merge)).unwrap().rows.len();
        let auto = db.run(&mk(JoinStrategy::Auto)).unwrap().rows.len();
        assert!(hash > 0);
        assert_eq!(hash, inlj);
        assert_eq!(hash, merge);
        assert_eq!(hash, auto);
    }

    #[test]
    fn explain_names_the_operators() {
        let db = db(500);
        let text =
            db.explain(&q(10, AccessPathChoice::Smooth(SmoothScanConfig::default()))).unwrap();
        assert!(text.contains("SmoothScan"), "{text}");
        let text = db.explain(&q(900, AccessPathChoice::Auto)).unwrap();
        assert!(text.contains("FullTableScan"), "{text}");
    }

    #[test]
    fn plan_errors_are_reported() {
        let db = db(500);
        assert!(db.run(&q(10, AccessPathChoice::ForceIndex)).is_ok());
        // Predicate on a non-indexed column cannot be forced to the index.
        let bad = LogicalPlan::scan(
            ScanSpec::new("t", Predicate::int_eq(0, 1)).with_access(AccessPathChoice::ForceIndex),
        );
        assert!(db.run(&bad).is_err());
        let missing = LogicalPlan::scan(ScanSpec::new("nope", Predicate::True));
        assert!(db.run(&missing).is_err());
    }

    /// Serial reference for a plan on `db`: cold-run through the
    /// single-threaded columnar driver regardless of the worker setting.
    fn serial_reference(db: &Database, plan: &LogicalPlan) -> QueryResult {
        let mut op = db.build(plan).unwrap();
        db.run_operator(op.as_mut()).unwrap()
    }

    /// The per-run I/O counters that must match exactly between drivers
    /// (`distinct_pages` is a monotone per-database set, so its *delta*
    /// differs between a first and a repeated run of the same query).
    fn io_key(io: &IoStatsDelta) -> (u64, u64, u64, u64, u64) {
        (io.io_requests, io.pages_read, io.seq_pages, io.rand_pages, io.buffer_hits)
    }

    #[test]
    fn parallel_run_matches_serial_for_every_access_path() {
        let mut db = db(3000);
        for access in [
            AccessPathChoice::ForceFull,
            AccessPathChoice::ForceIndex,
            AccessPathChoice::ForceSort,
            AccessPathChoice::Smooth(SmoothScanConfig::default()),
            AccessPathChoice::Switch { estimate: 100 },
            AccessPathChoice::Auto,
        ] {
            let plan = q(250, access.clone());
            db.set_workers(1);
            let serial = serial_reference(&db, &plan);
            for workers in [2usize, 4, 8] {
                db.set_workers(workers);
                let got = db.run(&plan).unwrap();
                assert_eq!(got.rows, serial.rows, "{access:?} rows at {workers} workers");
                assert_eq!(
                    (got.stats.clock.cpu_ns, got.stats.clock.io_ns),
                    (serial.stats.clock.cpu_ns, serial.stats.clock.io_ns),
                    "{access:?} clock at {workers} workers"
                );
                assert_eq!(
                    io_key(&got.stats.io),
                    io_key(&serial.stats.io),
                    "{access:?} io at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn parallel_run_matches_serial_for_joins_and_aggregates() {
        let mut db = db(2000);
        let outer = LogicalPlan::scan(ScanSpec::new("t", Predicate::int_half_open(1, 0, 120)));
        let join = outer.clone().join(
            LogicalPlan::scan(ScanSpec::new("t", Predicate::True)),
            1,
            1,
            smooth_executor::JoinType::Inner,
            JoinStrategy::Hash,
        );
        let agg_over_join = join
            .clone()
            .aggregate(vec![1], vec![AggFunc::CountStar, AggFunc::Min(0), AggFunc::Max(0)]);
        let filtered = q(400, AccessPathChoice::ForceFull).filter(Predicate::int_lt(0, 900));
        for plan in [join, agg_over_join, filtered] {
            db.set_workers(1);
            let serial = serial_reference(&db, &plan);
            for workers in [2usize, 4] {
                db.set_workers(workers);
                let got = db.run(&plan).unwrap();
                assert_eq!(got.rows, serial.rows, "rows at {workers} workers");
                assert_eq!(
                    (got.stats.clock.cpu_ns, got.stats.clock.io_ns),
                    (serial.stats.clock.cpu_ns, serial.stats.clock.io_ns),
                    "clock at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn parallel_pipeline_decomposition_shapes() {
        let db = db(1000);
        // Unordered full scan → partitioned heap source.
        let p = db.parallel_pipeline(&q(100, AccessPathChoice::ForceFull)).unwrap().unwrap();
        assert!(matches!(p.source, smooth_executor::ParallelSource::Heap { .. }));
        // A bare adaptive scan has no stages to fan out → serial driver.
        assert!(db
            .parallel_pipeline(&q(100, AccessPathChoice::Smooth(SmoothScanConfig::default())))
            .unwrap()
            .is_none());
        // …but an aggregate above it parallelizes on the stages.
        let plan = q(100, AccessPathChoice::Smooth(SmoothScanConfig::default()))
            .aggregate(vec![], vec![AggFunc::CountStar]);
        let p = db.parallel_pipeline(&plan).unwrap().unwrap();
        assert!(matches!(p.source, smooth_executor::ParallelSource::Shared { .. }));
        assert!(matches!(p.sink, smooth_executor::SinkSpec::Aggregate { merge_exact: true, .. }));
        // Plan errors surface from the decomposition exactly like build().
        let bad = LogicalPlan::scan(
            ScanSpec::new("t", Predicate::int_eq(0, 1)).with_access(AccessPathChoice::ForceIndex),
        );
        assert!(db.parallel_pipeline(&bad).is_err());
        assert!(db.with_workers(4).run(&bad).is_err());
    }

    #[test]
    fn run_filtered_matches_under_parallel_driver() {
        let mut db = db(2000);
        let plan = q(300, AccessPathChoice::ForceFull);
        db.set_workers(1);
        let serial = db.run_filtered(&plan, Predicate::int_lt(0, 700)).unwrap();
        db.set_workers(4);
        let parallel = db.run_filtered(&plan, Predicate::int_lt(0, 700)).unwrap();
        assert_eq!(parallel.rows, serial.rows);
        assert_eq!(io_key(&parallel.stats.io), io_key(&serial.stats.io));
        assert!(!serial.rows.is_empty());
    }

    #[test]
    fn worker_knob_defaults_and_overrides() {
        let db = db(100);
        assert!(db.workers() >= 1);
        let db = db.with_workers(0);
        assert_eq!(db.workers(), 1, "worker count floors at 1");
        assert!(default_workers() >= 1);
    }

    #[test]
    fn scan_statistics_attach_to_every_driver() {
        let mut db = db(3000);
        let plan = q(250, AccessPathChoice::ForceFull);
        for workers in [1usize, 4] {
            db.set_workers(workers);
            let got = db.run(&plan).unwrap();
            assert_eq!(
                got.scan.rows_processed,
                got.rows.len() as u64,
                "{workers} workers: processed = emitted"
            );
            assert_eq!(got.scan.rows_scanned, 3000, "{workers} workers: full scan inspects all");
            assert_eq!(got.scan.rows_total, 3000, "{workers} workers: catalog cardinality");
            assert_eq!(got.scan.pages_read, got.stats.io.pages_read, "{workers} workers: solo IO");
            assert!(got.scan.selectivity() < 1.0);
            assert!(got.scan.mb_read() > 0.0);
        }
        // Joins sum both sides' cardinalities into rows_total.
        db.set_workers(1);
        let join = q(50, AccessPathChoice::ForceFull).join(
            LogicalPlan::scan(ScanSpec::new("t", Predicate::True)),
            1,
            1,
            smooth_executor::JoinType::Inner,
            JoinStrategy::Hash,
        );
        assert_eq!(db.run(&join).unwrap().scan.rows_total, 6000);
    }

    #[test]
    fn sessions_share_the_engine_and_number_uniquely() {
        let db = db(1000).with_workers(2).with_max_queries(2);
        let a = db.session();
        let b = db.session();
        assert_ne!(a.id(), b.id());
        let plan = q(100, AccessPathChoice::ForceFull);
        let ra = a.run(&plan).unwrap();
        let rb = b.run(&plan).unwrap();
        assert_eq!(ra.rows, rb.rows);
        assert!(std::ptr::eq(a.database(), b.database()));
        assert!(db.max_queries() == 2);
    }

    #[test]
    fn cold_runs_are_reproducible() {
        let db = db(2000);
        let a = db.run(&q(100, AccessPathChoice::ForceIndex)).unwrap().stats;
        let b = db.run(&q(100, AccessPathChoice::ForceIndex)).unwrap().stats;
        assert_eq!(a.io.pages_read, b.io.pages_read, "cold runs see identical I/O");
        assert_eq!(a.clock.io_ns, b.clock.io_ns);
    }

    #[test]
    fn submit_returns_the_same_rows_as_run() {
        let db = db(2000).with_workers(2);
        // A parallelizable plan and a serial-only one (bare adaptive
        // scan) both go through the pool and match the blocking driver.
        for plan in [
            q(250, AccessPathChoice::ForceFull),
            q(250, AccessPathChoice::Smooth(SmoothScanConfig::default())),
        ] {
            let expected = db.run(&plan).unwrap();
            let out = db.session().submit(&plan).unwrap().wait().unwrap();
            assert_eq!(out.into_rows(), expected.rows);
        }
        // Plan errors surface at submit, before anything runs.
        let missing = LogicalPlan::scan(ScanSpec::new("nope", Predicate::True));
        assert!(db.submit(&missing).is_err());
    }

    #[test]
    fn submitted_queries_are_cancellable() {
        let db = db(2000).with_workers(2);
        let handle = db.submit(&q(250, AccessPathChoice::ForceFull)).unwrap();
        handle.cancel();
        match handle.wait() {
            Err(Error::Cancelled) => {}
            Ok(out) => {
                // Lost the race: the query finished first — it must
                // then be complete, never partial.
                let expected = db.run(&q(250, AccessPathChoice::ForceFull)).unwrap();
                assert_eq!(out.into_rows(), expected.rows);
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
        // The engine still serves queries afterwards.
        assert!(!db.run(&q(250, AccessPathChoice::ForceFull)).unwrap().rows.is_empty());
    }

    #[test]
    fn query_timeout_knob_reaches_the_scheduler() {
        // An existing pool picks the knob up live; a later knob change
        // that rebuilds the pool re-applies it.
        let mut db = db(500).with_workers(2);
        db.run(&q(10, AccessPathChoice::ForceFull)).unwrap();
        db.set_query_timeout_ms(250_000);
        assert_eq!(db.query_timeout_ms(), 250_000);
        assert_eq!(db.scheduler().timeout_ms(), 250_000);
        db.set_workers(3);
        assert_eq!(db.scheduler().timeout_ms(), 250_000, "survives a pool rebuild");
        // Generous virtual budget: queries still complete.
        assert!(!db.run(&q(100, AccessPathChoice::ForceFull)).unwrap().rows.is_empty());
        db.set_query_timeout_ms(0);
        assert_eq!(db.scheduler().timeout_ms(), 0);
    }

    #[test]
    fn injected_faults_fail_queries_typed_through_the_facade() {
        let db = db(2000).with_workers(2).with_faults(FaultConfig::new(21).io_err(1.0));
        let err = db.run(&q(250, AccessPathChoice::ForceFull)).unwrap_err();
        assert!(matches!(err, Error::Faulted { .. }), "{err}");
        // Removing the faults restores the engine.
        db.set_faults(None);
        assert!(!db.run(&q(250, AccessPathChoice::ForceFull)).unwrap().rows.is_empty());
    }
}
