//! The `Database` facade: load tables, build indexes, run measured
//! queries.
//!
//! `run` follows the paper's cold-run methodology (Section VI-A): the
//! buffer pool is flushed before each query and the virtual clock / I/O
//! counters are snapshotted around execution, yielding per-query
//! [`RunStats`] — execution time split into CPU and I/O wait (Fig. 4),
//! I/O requests and bytes moved (Table II).
//!
//! Queries execute through the columnar pipeline: `run`/`run_operator`
//! drain the operator tree with [`collect_rows`], which requests
//! [`smooth_types::ColumnBatch`]es of `smooth_executor::batch_size()`
//! rows (the `SMOOTH_BATCH_ROWS` knob) per virtual call rather than one
//! tuple at a time; rows materialize only at the sink.

use std::sync::Arc;

use smooth_core::{SmoothScan, SmoothScanConfig, SwitchScan};
use smooth_executor::sort::SortKey;
use smooth_executor::{
    collect_rows, BoxedOperator, Filter, FullTableScan, HashAggregate, HashJoin,
    IndexNestedLoopJoin, IndexScan, MergeJoin, NestedLoopJoin, Operator, Predicate, Project, Sort,
    SortScan,
};
use smooth_stats::StatsQuality;
use smooth_storage::{ClockSnapshot, HeapLoader, IoStatsDelta, Storage, StorageConfig};
use smooth_types::{Error, Result, Row, Schema};

use crate::catalog::{Catalog, TableEntry};
use crate::optimizer::{AccessPathKind, Optimizer};
use crate::plan::{AccessPathChoice, JoinStrategy, LogicalPlan, ScanSpec};

/// Per-query measurements.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Rows returned.
    pub rows: u64,
    /// Virtual clock delta (CPU + I/O wait).
    pub clock: ClockSnapshot,
    /// I/O counter deltas.
    pub io: IoStatsDelta,
}

impl RunStats {
    /// Execution time in virtual seconds.
    pub fn secs(&self) -> f64 {
        self.clock.total_secs()
    }
}

/// A query's rows plus its measurements.
#[derive(Debug)]
pub struct QueryResult {
    /// The result rows.
    pub rows: Vec<Row>,
    /// The measurements.
    pub stats: RunStats,
}

/// An engine instance: storage manager + catalog.
pub struct Database {
    storage: Storage,
    catalog: Catalog,
}

impl Database {
    /// A database over the given storage configuration.
    pub fn new(cfg: StorageConfig) -> Self {
        Database { storage: Storage::new(cfg), catalog: Catalog::new() }
    }

    /// The shared storage handle.
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// The catalog (immutable).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Load a table from a row iterator (setup work, not charged).
    pub fn load_table(
        &mut self,
        name: &str,
        schema: Schema,
        rows: impl IntoIterator<Item = Row>,
    ) -> Result<()> {
        let mut loader = HeapLoader::new_mem(name, schema);
        for row in rows {
            loader.push(&row)?;
        }
        self.catalog.register(Arc::new(loader.finish()?))
    }

    /// Build a secondary index.
    pub fn create_index(&mut self, table: &str, column: usize, name: &str) -> Result<()> {
        self.catalog.create_index(table, column, name)
    }

    /// Set the staleness model for a table's statistics.
    pub fn set_stats_quality(&mut self, table: &str, quality: StatsQuality) -> Result<()> {
        self.catalog.set_stats_quality(table, quality)
    }

    /// Look up a table entry.
    pub fn table(&self, name: &str) -> Result<&TableEntry> {
        self.catalog.get(name)
    }

    /// Build the physical operator tree for a plan.
    pub fn build(&self, plan: &LogicalPlan) -> Result<BoxedOperator> {
        match plan {
            LogicalPlan::Scan(spec) => self.build_scan(spec),
            LogicalPlan::Join(spec) => {
                let strategy = match spec.strategy {
                    JoinStrategy::Auto => Optimizer::choose_join_strategy(
                        &self.catalog,
                        &spec.left,
                        &spec.right,
                        spec.right_col,
                        self.storage.device(),
                    ),
                    other => other,
                };
                let left = self.build(&spec.left)?;
                match strategy {
                    JoinStrategy::IndexNestedLoop => {
                        let LogicalPlan::Scan(rspec) = &spec.right else {
                            return Err(Error::plan(
                                "index-nested-loop join needs a base-table inner",
                            ));
                        };
                        let entry = self.catalog.get(&rspec.table)?;
                        let idx = entry.index_on(spec.right_col).ok_or_else(|| {
                            Error::plan(format!(
                                "no index on {}.{} for INLJ",
                                rspec.table, spec.right_col
                            ))
                        })?;
                        Ok(Box::new(IndexNestedLoopJoin::new(
                            left,
                            spec.left_col,
                            Arc::clone(&entry.heap),
                            Arc::clone(&idx.index),
                            rspec.predicate.clone(),
                            spec.ty,
                            self.storage.clone(),
                        )))
                    }
                    JoinStrategy::Hash | JoinStrategy::Auto => {
                        let right = self.build(&spec.right)?;
                        Ok(Box::new(HashJoin::new(
                            left,
                            right,
                            spec.left_col,
                            spec.right_col,
                            spec.ty,
                            self.storage.clone(),
                        )))
                    }
                    JoinStrategy::Merge => {
                        // Guarantee the ordering contract by sorting both
                        // inputs on their join keys.
                        let left = Box::new(Sort::new(
                            left,
                            self.storage.clone(),
                            vec![SortKey::asc(spec.left_col)],
                        ));
                        let right = Box::new(Sort::new(
                            self.build(&spec.right)?,
                            self.storage.clone(),
                            vec![SortKey::asc(spec.right_col)],
                        ));
                        Ok(Box::new(MergeJoin::new(
                            left,
                            right,
                            spec.left_col,
                            spec.right_col,
                            self.storage.clone(),
                        )))
                    }
                    JoinStrategy::NestedLoop => {
                        let right = self.build(&spec.right)?;
                        // Equi-join predicate over the concatenated row is
                        // not expressible with IntRange on two columns, so
                        // NLJ here materializes and hashes instead — kept
                        // as an explicit fallback for non-equi needs.
                        let _ = &right;
                        Ok(Box::new(NestedLoopJoin::new(
                            left,
                            right,
                            Predicate::True,
                            spec.ty,
                            self.storage.clone(),
                        )))
                    }
                }
            }
            LogicalPlan::Aggregate { input, group_cols, aggs } => {
                let child = self.build(input)?;
                Ok(Box::new(HashAggregate::new(
                    child,
                    group_cols.clone(),
                    aggs.clone(),
                    self.storage.clone(),
                )?))
            }
            LogicalPlan::Sort { input, keys } => {
                let child = self.build(input)?;
                Ok(Box::new(Sort::new(child, self.storage.clone(), keys.clone())))
            }
            LogicalPlan::Project { input, cols } => {
                let child = self.build(input)?;
                Ok(Box::new(Project::new(child, cols.clone())?))
            }
            LogicalPlan::Filter { input, predicate } => {
                let child = self.build(input)?;
                Ok(Box::new(Filter::new(child, predicate.clone())))
            }
        }
    }

    fn build_scan(&self, spec: &ScanSpec) -> Result<BoxedOperator> {
        let entry = self.catalog.get(&spec.table)?;
        let heap = Arc::clone(&entry.heap);
        let split = spec.predicate.split_index_range();
        let indexed = split.clone().filter(|(col, _, _, _)| entry.index_on(*col).is_some());
        let choice = match &spec.access {
            AccessPathChoice::Auto => match Optimizer::choose_access_path(
                entry,
                &spec.predicate,
                spec.ordered,
                self.storage.device(),
            ) {
                AccessPathKind::FullScan => AccessPathChoice::ForceFull,
                AccessPathKind::IndexScan => AccessPathChoice::ForceIndex,
                AccessPathKind::SortScan => AccessPathChoice::ForceSort,
            },
            other => other.clone(),
        };
        let need_index = |what: &str| {
            indexed.clone().ok_or_else(|| {
                Error::plan(format!("{what} on '{}' needs an indexed range predicate", spec.table))
            })
        };
        let sort_wrap = |op: BoxedOperator| -> Result<BoxedOperator> {
            if spec.ordered {
                let (col, _, _, _) = split
                    .clone()
                    .ok_or_else(|| Error::plan("ordered scan without a range predicate column"))?;
                Ok(Box::new(Sort::new(op, self.storage.clone(), vec![SortKey::asc(col)])))
            } else {
                Ok(op)
            }
        };
        match choice {
            AccessPathChoice::ForceFull => {
                let op: BoxedOperator = Box::new(FullTableScan::new(
                    heap,
                    self.storage.clone(),
                    spec.predicate.clone(),
                ));
                sort_wrap(op)
            }
            AccessPathChoice::ForceIndex => {
                let (col, lo, hi, residual) = need_index("index scan")?;
                let idx = entry.index_on(col).expect("checked");
                Ok(Box::new(IndexScan::new(
                    heap,
                    Arc::clone(&idx.index),
                    self.storage.clone(),
                    lo,
                    hi,
                    residual,
                )))
            }
            AccessPathChoice::ForceSort => {
                let (col, lo, hi, residual) = need_index("sort scan")?;
                let idx = entry.index_on(col).expect("checked");
                let op: BoxedOperator = Box::new(SortScan::new(
                    heap,
                    Arc::clone(&idx.index),
                    self.storage.clone(),
                    lo,
                    hi,
                    residual,
                ));
                sort_wrap(op)
            }
            AccessPathChoice::Smooth(config) => {
                let (col, lo, hi, residual) = need_index("smooth scan")?;
                let idx = entry.index_on(col).expect("checked");
                let config = config.with_order(config.ordered || spec.ordered);
                Ok(Box::new(SmoothScan::new(
                    heap,
                    Arc::clone(&idx.index),
                    self.storage.clone(),
                    col,
                    lo,
                    hi,
                    residual,
                    config,
                )))
            }
            AccessPathChoice::Switch { estimate } => {
                let (col, lo, hi, residual) = need_index("switch scan")?;
                let idx = entry.index_on(col).expect("checked");
                Ok(Box::new(SwitchScan::new(
                    heap,
                    Arc::clone(&idx.index),
                    self.storage.clone(),
                    col,
                    lo,
                    hi,
                    residual,
                    estimate,
                )))
            }
            AccessPathChoice::Auto => unreachable!("resolved above"),
        }
    }

    /// Build a Smooth Scan directly (experiments that need
    /// [`smooth_core::SmoothScanMetrics`] after the run).
    pub fn build_smooth_scan(
        &self,
        spec: &ScanSpec,
        config: SmoothScanConfig,
    ) -> Result<SmoothScan> {
        let entry = self.catalog.get(&spec.table)?;
        let (col, lo, hi, residual) = spec
            .predicate
            .split_index_range()
            .filter(|(col, _, _, _)| entry.index_on(*col).is_some())
            .ok_or_else(|| Error::plan("smooth scan needs an indexed range predicate"))?;
        let idx = entry.index_on(col).expect("checked");
        Ok(SmoothScan::new(
            Arc::clone(&entry.heap),
            Arc::clone(&idx.index),
            self.storage.clone(),
            col,
            lo,
            hi,
            residual,
            config.with_order(config.ordered || spec.ordered),
        ))
    }

    /// EXPLAIN: the physical operator tree the plan would run as.
    pub fn explain(&self, plan: &LogicalPlan) -> Result<String> {
        Ok(self.build(plan)?.label())
    }

    /// Cold-run a plan: flush the buffer pool, execute to completion, and
    /// report rows plus clock/I-O deltas.
    pub fn run(&self, plan: &LogicalPlan) -> Result<QueryResult> {
        let mut op = self.build(plan)?;
        self.run_operator(op.as_mut())
    }

    /// Cold-run an already-built operator (used when the caller needs to
    /// keep the operator around for its metrics). Drives the columnar
    /// protocol end to end.
    pub fn run_operator(&self, op: &mut dyn Operator) -> Result<QueryResult> {
        self.storage.flush_pool();
        let clock0 = self.storage.clock().snapshot();
        let io0 = self.storage.io_snapshot();
        let rows = collect_rows(op)?;
        let stats = RunStats {
            rows: rows.len() as u64,
            clock: self.storage.clock().snapshot().since(&clock0),
            io: self.storage.io_snapshot().since(&io0),
        };
        Ok(QueryResult { rows, stats })
    }

    /// Run with a filter applied on top (for plans whose predicate cannot
    /// push into the scan).
    pub fn run_filtered(&self, plan: &LogicalPlan, pred: Predicate) -> Result<QueryResult> {
        let child = self.build(plan)?;
        let mut op = Filter::new(child, pred);
        self.run_operator(&mut op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_executor::AggFunc;
    use smooth_storage::{CpuCosts, DeviceProfile};
    use smooth_types::{Column, DataType, Value};

    fn db(rows: i64) -> Database {
        let mut db = Database::new(StorageConfig {
            device: DeviceProfile::custom("t", 1, 10),
            cpu: CpuCosts::default(),
            pool_pages: 64,
        });
        let schema = Schema::new(vec![
            Column::new("c0", DataType::Int64),
            Column::new("c1", DataType::Int64),
            Column::new("pad", DataType::Text),
        ])
        .unwrap();
        db.load_table(
            "t",
            schema,
            (0..rows).map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::Int(((i.wrapping_mul(2654435761)) % 1000 + 1000) % 1000),
                    Value::str("x".repeat(40)),
                ])
            }),
        )
        .unwrap();
        db.create_index("t", 1, "t_c1").unwrap();
        db
    }

    fn q(hi: i64, access: AccessPathChoice) -> LogicalPlan {
        LogicalPlan::scan(
            ScanSpec::new("t", Predicate::int_half_open(1, 0, hi)).with_access(access),
        )
    }

    #[test]
    fn all_access_paths_agree() {
        let db = db(3000);
        let reference = db.run(&q(250, AccessPathChoice::ForceFull)).unwrap();
        let mut expected: Vec<i64> = reference.rows.iter().map(|r| r.int(0).unwrap()).collect();
        expected.sort_unstable();
        for access in [
            AccessPathChoice::ForceIndex,
            AccessPathChoice::ForceSort,
            AccessPathChoice::Smooth(SmoothScanConfig::default()),
            AccessPathChoice::Switch { estimate: 100 },
            AccessPathChoice::Auto,
        ] {
            let got = db.run(&q(250, access.clone())).unwrap();
            let mut ids: Vec<i64> = got.rows.iter().map(|r| r.int(0).unwrap()).collect();
            ids.sort_unstable();
            assert_eq!(ids, expected, "{access:?}");
            assert!(got.stats.secs() > 0.0);
            assert!(got.stats.io.pages_read > 0);
        }
    }

    #[test]
    fn ordered_scans_sort_when_needed() {
        let db = db(2000);
        for access in [AccessPathChoice::ForceFull, AccessPathChoice::ForceSort] {
            let plan = LogicalPlan::scan(
                ScanSpec::new("t", Predicate::int_half_open(1, 0, 500))
                    .with_order()
                    .with_access(access.clone()),
            );
            let got = db.run(&plan).unwrap();
            let keys: Vec<i64> = got.rows.iter().map(|r| r.int(1).unwrap()).collect();
            assert!(keys.windows(2).all(|w| w[0] <= w[1]), "{access:?}");
        }
    }

    #[test]
    fn aggregation_over_scan() {
        let db = db(2000);
        let plan = q(100, AccessPathChoice::Auto)
            .aggregate(vec![], vec![AggFunc::CountStar, AggFunc::Min(1), AggFunc::Max(1)]);
        let got = db.run(&plan).unwrap();
        assert_eq!(got.rows.len(), 1);
        let count = got.rows[0].int(0).unwrap();
        assert!(count > 0);
        assert!(got.rows[0].int(2).unwrap() < 100);
    }

    #[test]
    fn join_strategies_agree() {
        let db = db(2000);
        let outer = LogicalPlan::scan(ScanSpec::new("t", Predicate::int_half_open(1, 0, 50)));
        let mk = |strategy| {
            outer.clone().join(
                LogicalPlan::scan(ScanSpec::new("t", Predicate::True)),
                1,
                1,
                smooth_executor::JoinType::Inner,
                strategy,
            )
        };
        let hash = db.run(&mk(JoinStrategy::Hash)).unwrap().rows.len();
        let inlj = db.run(&mk(JoinStrategy::IndexNestedLoop)).unwrap().rows.len();
        let merge = db.run(&mk(JoinStrategy::Merge)).unwrap().rows.len();
        let auto = db.run(&mk(JoinStrategy::Auto)).unwrap().rows.len();
        assert!(hash > 0);
        assert_eq!(hash, inlj);
        assert_eq!(hash, merge);
        assert_eq!(hash, auto);
    }

    #[test]
    fn explain_names_the_operators() {
        let db = db(500);
        let text =
            db.explain(&q(10, AccessPathChoice::Smooth(SmoothScanConfig::default()))).unwrap();
        assert!(text.contains("SmoothScan"), "{text}");
        let text = db.explain(&q(900, AccessPathChoice::Auto)).unwrap();
        assert!(text.contains("FullTableScan"), "{text}");
    }

    #[test]
    fn plan_errors_are_reported() {
        let db = db(500);
        assert!(db.run(&q(10, AccessPathChoice::ForceIndex)).is_ok());
        // Predicate on a non-indexed column cannot be forced to the index.
        let bad = LogicalPlan::scan(
            ScanSpec::new("t", Predicate::int_eq(0, 1)).with_access(AccessPathChoice::ForceIndex),
        );
        assert!(db.run(&bad).is_err());
        let missing = LogicalPlan::scan(ScanSpec::new("nope", Predicate::True));
        assert!(db.run(&missing).is_err());
    }

    #[test]
    fn cold_runs_are_reproducible() {
        let db = db(2000);
        let a = db.run(&q(100, AccessPathChoice::ForceIndex)).unwrap().stats;
        let b = db.run(&q(100, AccessPathChoice::ForceIndex)).unwrap().stats;
        assert_eq!(a.io.pages_read, b.io.pages_read, "cold runs see identical I/O");
        assert_eq!(a.clock.io_ns, b.clock.io_ns);
    }
}
