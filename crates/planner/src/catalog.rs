//! The catalog: tables, their indexes, and their (possibly stale)
//! statistics.

use std::collections::HashMap;
use std::sync::Arc;

use smooth_index::BTreeIndex;
use smooth_stats::{StaleCatalog, StatsQuality, TableStats};
use smooth_storage::HeapFile;
use smooth_types::{Error, Result};

/// One secondary index registered on a table.
#[derive(Clone)]
pub struct IndexEntry {
    /// The B+-tree.
    pub index: Arc<BTreeIndex>,
    /// Indexed column ordinal.
    pub column: usize,
}

/// One table: heap, indexes, statistics.
pub struct TableEntry {
    /// The heap file.
    pub heap: Arc<HeapFile>,
    /// Secondary indexes.
    pub indexes: Vec<IndexEntry>,
    /// Statistics with a staleness model applied.
    pub stats: StaleCatalog,
}

impl TableEntry {
    /// Find an index on `column`.
    pub fn index_on(&self, column: usize) -> Option<&IndexEntry> {
        self.indexes.iter().find(|e| e.column == column)
    }
}

/// Name → table map.
#[derive(Default)]
pub struct Catalog {
    tables: HashMap<String, TableEntry>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a loaded heap, analyzing it immediately (accurate stats by
    /// default; damage them with [`Catalog::set_stats_quality`]).
    pub fn register(&mut self, heap: Arc<HeapFile>) -> Result<()> {
        let name = heap.name().to_owned();
        if self.tables.contains_key(&name) {
            return Err(Error::plan(format!("table '{name}' already exists")));
        }
        let stats = TableStats::analyze(&heap)?;
        self.tables.insert(
            name,
            TableEntry {
                heap,
                indexes: Vec::new(),
                stats: StaleCatalog::new(stats, StatsQuality::Accurate),
            },
        );
        Ok(())
    }

    /// Build and register a B+-tree on `table.column`.
    pub fn create_index(&mut self, table: &str, column: usize, name: &str) -> Result<()> {
        let entry = self.get_mut(table)?;
        if entry.index_on(column).is_some() {
            return Err(Error::plan(format!("duplicate index on {table}.{column}")));
        }
        let index = Arc::new(BTreeIndex::build_from_heap(name, &entry.heap, column)?);
        entry.indexes.push(IndexEntry { index, column });
        Ok(())
    }

    /// Re-analyze a table (fresh, accurate statistics; keeps the quality
    /// setting).
    pub fn analyze(&mut self, table: &str) -> Result<()> {
        let entry = self.get_mut(table)?;
        let quality = entry.stats.quality();
        entry.stats = StaleCatalog::new(TableStats::analyze(&entry.heap)?, quality);
        Ok(())
    }

    /// Set the staleness model for a table's statistics.
    pub fn set_stats_quality(&mut self, table: &str, quality: StatsQuality) -> Result<()> {
        self.get_mut(table)?.stats.set_quality(quality);
        Ok(())
    }

    /// Look up a table.
    pub fn get(&self, table: &str) -> Result<&TableEntry> {
        self.tables.get(table).ok_or_else(|| Error::plan(format!("no table named '{table}'")))
    }

    fn get_mut(&mut self, table: &str) -> Result<&mut TableEntry> {
        self.tables.get_mut(table).ok_or_else(|| Error::plan(format!("no table named '{table}'")))
    }

    /// Registered table names (sorted for determinism).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_storage::HeapLoader;
    use smooth_types::{Column, DataType, Row, Schema, Value};

    fn heap(name: &str) -> Arc<HeapFile> {
        let schema =
            Schema::new(vec![Column::new("a", DataType::Int64), Column::new("b", DataType::Int64)])
                .unwrap();
        let mut l = HeapLoader::new_mem(name, schema);
        for i in 0..500i64 {
            l.push(&Row::new(vec![Value::Int(i), Value::Int(i % 10)])).unwrap();
        }
        Arc::new(l.finish().unwrap())
    }

    #[test]
    fn register_analyze_index_lookup() {
        let mut c = Catalog::new();
        c.register(heap("t")).unwrap();
        assert!(c.register(heap("t")).is_err(), "duplicate table");
        c.create_index("t", 1, "t_b").unwrap();
        assert!(c.create_index("t", 1, "dup").is_err());
        let e = c.get("t").unwrap();
        assert!(e.index_on(1).is_some());
        assert!(e.index_on(0).is_none());
        assert_eq!(e.stats.honest().row_count, 500);
        assert!(c.get("missing").is_err());
        assert_eq!(c.table_names(), vec!["t".to_string()]);
    }

    #[test]
    fn stats_quality_is_settable() {
        let mut c = Catalog::new();
        c.register(heap("t")).unwrap();
        c.set_stats_quality("t", StatsQuality::FixedCardinality(7)).unwrap();
        assert_eq!(c.get("t").unwrap().stats.quality(), StatsQuality::FixedCardinality(7));
        c.analyze("t").unwrap();
        // analyze refreshes numbers but keeps the damage model
        assert_eq!(c.get("t").unwrap().stats.quality(), StatsQuality::FixedCardinality(7));
    }
}
