//! Column histograms over integer domains.
//!
//! Two classic shapes: equi-width (fixed bucket spans) and equi-depth
//! (fixed bucket populations, better under skew). Both answer the only
//! question the planner asks: *what fraction of values falls in a range?*

use std::ops::Bound;

/// Common interface of the histogram shapes.
pub trait Histogram: std::fmt::Debug {
    /// Estimated fraction of values in the (inclusive/exclusive) range.
    fn range_fraction(&self, lo: Bound<i64>, hi: Bound<i64>) -> f64;
    /// Number of values summarized.
    fn population(&self) -> u64;
}

/// Normalize bounds to a closed interval `[lo, hi]` on integers.
/// Returns `None` for an empty interval.
fn closed(lo: Bound<i64>, hi: Bound<i64>) -> Option<(i64, i64)> {
    let lo = match lo {
        Bound::Unbounded => i64::MIN,
        Bound::Included(v) => v,
        Bound::Excluded(v) => v.checked_add(1)?,
    };
    let hi = match hi {
        Bound::Unbounded => i64::MAX,
        Bound::Included(v) => v,
        Bound::Excluded(v) => v.checked_sub(1)?,
    };
    (lo <= hi).then_some((lo, hi))
}

/// Equi-width histogram: the domain `[min, max]` is split into equal spans.
#[derive(Debug, Clone)]
pub struct EquiWidthHistogram {
    min: i64,
    max: i64,
    counts: Vec<u64>,
    total: u64,
}

impl EquiWidthHistogram {
    /// Build from values with the given bucket count (min 1).
    pub fn build(values: &[i64], buckets: usize) -> Self {
        let buckets = buckets.max(1);
        if values.is_empty() {
            return EquiWidthHistogram { min: 0, max: 0, counts: vec![0; buckets], total: 0 };
        }
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        let mut counts = vec![0u64; buckets];
        let span = (max - min).max(0) as u128 + 1;
        for &v in values {
            let off = (v - min) as u128;
            let b = ((off * buckets as u128) / span) as usize;
            counts[b.min(buckets - 1)] += 1;
        }
        EquiWidthHistogram { min, max, counts, total: values.len() as u64 }
    }

    fn bucket_bounds(&self, b: usize) -> (i64, i64) {
        let n = self.counts.len() as u128;
        let span = (self.max - self.min) as u128 + 1;
        let lo = self.min + ((span * b as u128) / n) as i64;
        let hi = self.min + ((span * (b as u128 + 1)) / n) as i64 - 1;
        // When the domain has fewer points than buckets, integer division
        // can invert the bounds; clamp to a single-point bucket, which is
        // consistent with the value→bucket mapping in `build`.
        (lo, hi.max(lo))
    }
}

impl Histogram for EquiWidthHistogram {
    fn range_fraction(&self, lo: Bound<i64>, hi: Bound<i64>) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let Some((lo, hi)) = closed(lo, hi) else { return 0.0 };
        let mut hit = 0.0f64;
        for b in 0..self.counts.len() {
            let (blo, bhi) = self.bucket_bounds(b);
            if bhi < lo || blo > hi {
                continue;
            }
            let overlap_lo = blo.max(lo);
            let overlap_hi = bhi.min(hi);
            // Uniformity within the bucket.
            let frac =
                (overlap_hi as f64 - overlap_lo as f64 + 1.0) / (bhi as f64 - blo as f64 + 1.0);
            hit += self.counts[b] as f64 * frac;
        }
        (hit / self.total as f64).clamp(0.0, 1.0)
    }

    fn population(&self) -> u64 {
        self.total
    }
}

/// Equi-depth histogram: bucket boundaries chosen so each holds roughly the
/// same number of values; resilient to skew.
#[derive(Debug, Clone)]
pub struct EquiDepthHistogram {
    /// `bounds[i]..=bounds[i+1]` delimit bucket `i` (inclusive both ends
    /// for the last bucket).
    bounds: Vec<i64>,
    depth: Vec<u64>,
    total: u64,
}

impl EquiDepthHistogram {
    /// Build from values with the given bucket count (min 1).
    pub fn build(values: &[i64], buckets: usize) -> Self {
        let buckets = buckets.max(1);
        if values.is_empty() {
            return EquiDepthHistogram { bounds: vec![0, 0], depth: vec![0], total: 0 };
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let mut bounds = Vec::with_capacity(buckets + 1);
        let mut depth = Vec::with_capacity(buckets);
        bounds.push(sorted[0]);
        let mut start = 0usize;
        for b in 1..=buckets {
            let end = (n * b) / buckets;
            if end <= start {
                continue;
            }
            let ub = sorted[end - 1];
            // A heavy value can make several quantiles identical; merging
            // keeps every bucket's value range non-degenerate so no mass is
            // lost at estimation time.
            if !depth.is_empty() && *bounds.last().unwrap() == ub {
                *depth.last_mut().unwrap() += (end - start) as u64;
            } else {
                bounds.push(ub);
                depth.push((end - start) as u64);
            }
            start = end;
        }
        EquiDepthHistogram { bounds, depth, total: n as u64 }
    }
}

impl Histogram for EquiDepthHistogram {
    fn range_fraction(&self, lo: Bound<i64>, hi: Bound<i64>) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let Some((lo, hi)) = closed(lo, hi) else { return 0.0 };
        let mut hit = 0.0f64;
        for b in 0..self.depth.len() {
            let blo = if b == 0 { self.bounds[0] } else { self.bounds[b] + 1 };
            let bhi = self.bounds[b + 1];
            if bhi < blo {
                continue; // duplicate boundary from heavy skew
            }
            if bhi < lo || blo > hi {
                continue;
            }
            let overlap_lo = blo.max(lo);
            let overlap_hi = bhi.min(hi);
            let frac =
                (overlap_hi as f64 - overlap_lo as f64 + 1.0) / (bhi as f64 - blo as f64 + 1.0);
            hit += self.depth[b] as f64 * frac;
        }
        (hit / self.total as f64).clamp(0.0, 1.0)
    }

    fn population(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform() -> Vec<i64> {
        (0..10_000).map(|i| i % 1000).collect()
    }

    #[test]
    fn equiwidth_uniform_ranges() {
        let h = EquiWidthHistogram::build(&uniform(), 32);
        assert_eq!(h.population(), 10_000);
        let f = h.range_fraction(Bound::Included(0), Bound::Excluded(100));
        assert!((f - 0.1).abs() < 0.02, "{f}");
        let f = h.range_fraction(Bound::Unbounded, Bound::Unbounded);
        assert!((f - 1.0).abs() < 1e-9);
        assert_eq!(h.range_fraction(Bound::Included(5000), Bound::Unbounded), 0.0);
    }

    #[test]
    fn equidepth_handles_skew_better() {
        // 90% of mass at value 0, the rest uniform on [1, 1000].
        let mut vals = vec![0i64; 9000];
        vals.extend((0..1000).map(|i| i + 1));
        let ed = EquiDepthHistogram::build(&vals, 32);
        let f0 = ed.range_fraction(Bound::Included(0), Bound::Included(0));
        assert!(f0 > 0.5, "equi-depth should see the heavy value, got {f0}");
        let tail = ed.range_fraction(Bound::Included(500), Bound::Included(1000));
        assert!(tail < 0.2, "{tail}");
    }

    #[test]
    fn empty_and_single_value_corpora() {
        for h in [
            &EquiWidthHistogram::build(&[], 8) as &dyn Histogram,
            &EquiDepthHistogram::build(&[], 8) as &dyn Histogram,
        ] {
            assert_eq!(h.population(), 0);
            assert_eq!(h.range_fraction(Bound::Unbounded, Bound::Unbounded), 0.0);
        }
        let hw = EquiWidthHistogram::build(&[42], 8);
        assert_eq!(hw.range_fraction(Bound::Included(42), Bound::Included(42)), 1.0);
        assert_eq!(hw.range_fraction(Bound::Included(41), Bound::Included(41)), 0.0);
        let hd = EquiDepthHistogram::build(&[42, 42, 42], 8);
        assert_eq!(hd.range_fraction(Bound::Included(42), Bound::Included(42)), 1.0);
    }

    #[test]
    fn degenerate_bounds_are_empty() {
        let h = EquiWidthHistogram::build(&uniform(), 8);
        assert_eq!(h.range_fraction(Bound::Included(10), Bound::Excluded(10)), 0.0);
        assert_eq!(h.range_fraction(Bound::Excluded(10), Bound::Included(10)), 0.0);
        assert_eq!(h.range_fraction(Bound::Included(20), Bound::Included(10)), 0.0);
        // Exclusive bound at extremes must not overflow.
        assert_eq!(h.range_fraction(Bound::Excluded(i64::MAX), Bound::Unbounded), 0.0);
        assert_eq!(h.range_fraction(Bound::Unbounded, Bound::Excluded(i64::MIN)), 0.0);
    }

    #[test]
    fn fractions_are_monotone_in_range_width() {
        let h = EquiDepthHistogram::build(&uniform(), 16);
        let mut prev = 0.0;
        for hi in (0..=1000).step_by(100) {
            let f = h.range_fraction(Bound::Included(0), Bound::Included(hi));
            assert!(f >= prev - 1e-12);
            prev = f;
        }
    }

    #[test]
    fn negative_domains() {
        let vals: Vec<i64> = (-500..500).collect();
        let h = EquiWidthHistogram::build(&vals, 10);
        let f = h.range_fraction(Bound::Included(-500), Bound::Excluded(0));
        assert!((f - 0.5).abs() < 0.05, "{f}");
    }
}
