//! Selectivity arithmetic: how the planner turns statistics into
//! cardinalities.
//!
//! Deliberately textbook — including the attribute-value-independence
//! assumption that the paper calls out as a root cause of mis-estimation
//! ("commercial database management systems often assume uniform data
//! distributions and attribute value independence, which is in reality
//! hardly the case", Section I). Multi-predicate estimates multiply
//! per-column selectivities; correlated predicates therefore get badly
//! underestimated, which is exactly the behaviour the Fig. 1 experiment
//! needs to reproduce.

use std::ops::Bound;

use crate::table::TableStats;

/// A range predicate on one integer-like column: `lo <= col <= hi` with
/// arbitrary open/closed/unbounded ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangePredicate {
    /// Column ordinal in the table schema.
    pub column: usize,
    /// Lower bound.
    pub lo: Bound<i64>,
    /// Upper bound.
    pub hi: Bound<i64>,
}

impl RangePredicate {
    /// `col >= lo AND col < hi` — the micro-benchmark's predicate shape.
    pub fn half_open(column: usize, lo: i64, hi: i64) -> Self {
        RangePredicate { column, lo: Bound::Included(lo), hi: Bound::Excluded(hi) }
    }

    /// `col = key`.
    pub fn point(column: usize, key: i64) -> Self {
        RangePredicate { column, lo: Bound::Included(key), hi: Bound::Included(key) }
    }

    /// Whether a concrete value satisfies the predicate.
    pub fn matches(&self, v: i64) -> bool {
        (match self.lo {
            Bound::Unbounded => true,
            Bound::Included(l) => v >= l,
            Bound::Excluded(l) => v > l,
        }) && (match self.hi {
            Bound::Unbounded => true,
            Bound::Included(h) => v <= h,
            Bound::Excluded(h) => v < h,
        })
    }
}

/// Default selectivity when a column has no statistics (PostgreSQL uses
/// 1/3 for inequalities and 0.005 for equality; we take the range figure).
pub const DEFAULT_RANGE_SELECTIVITY: f64 = 1.0 / 3.0;

/// Estimated fraction of rows matching one range predicate.
pub fn range_fraction(stats: &TableStats, pred: &RangePredicate) -> f64 {
    match stats.column(pred.column) {
        Some(col) => {
            let point =
                matches!((pred.lo, pred.hi), (Bound::Included(a), Bound::Included(b)) if a == b);
            if point {
                if let Bound::Included(k) = pred.lo {
                    return col.eq_selectivity(k);
                }
            }
            col.range_selectivity(pred.lo, pred.hi)
        }
        None => DEFAULT_RANGE_SELECTIVITY,
    }
}

/// Estimated fraction of rows matching *all* predicates, under attribute
/// value independence (selectivities multiply).
pub fn conjunction_fraction(stats: &TableStats, preds: &[RangePredicate]) -> f64 {
    preds.iter().map(|p| range_fraction(stats, p)).product()
}

/// Estimated cardinality of an equi-join between two tables on the given
/// columns: `|R| * |S| / max(ndv(R.a), ndv(S.b))` (System-R).
pub fn equijoin_cardinality(
    left: &TableStats,
    left_col: usize,
    right: &TableStats,
    right_col: usize,
) -> f64 {
    let ndv_l = left.column(left_col).map_or(1, |c| c.distinct).max(1);
    let ndv_r = right.column(right_col).map_or(1, |c| c.distinct).max(1);
    (left.row_count as f64 * right.row_count as f64) / ndv_l.max(ndv_r) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_storage::HeapLoader;
    use smooth_types::{Column, DataType, Row, Schema, Value};

    fn correlated_table() -> TableStats {
        // c1 uniform over [0,100); c2 == c1 (perfectly correlated).
        let schema = Schema::new(vec![
            Column::new("c1", DataType::Int64),
            Column::new("c2", DataType::Int64),
        ])
        .unwrap();
        let mut l = HeapLoader::new_mem("t", schema);
        for i in 0..10_000i64 {
            let v = i % 100;
            l.push(&Row::new(vec![Value::Int(v), Value::Int(v)])).unwrap();
        }
        TableStats::analyze(&l.finish().unwrap()).unwrap()
    }

    #[test]
    fn matches_checks_bounds() {
        let p = RangePredicate::half_open(0, 10, 20);
        assert!(p.matches(10) && p.matches(19));
        assert!(!p.matches(20) && !p.matches(9));
        let q = RangePredicate::point(0, 5);
        assert!(q.matches(5) && !q.matches(6));
    }

    #[test]
    fn independence_underestimates_correlated_conjunctions() {
        let stats = correlated_table();
        let p1 = RangePredicate::half_open(0, 0, 10); // true sel 0.1
        let p2 = RangePredicate::half_open(1, 0, 10); // true sel 0.1, same rows!
        let est = conjunction_fraction(&stats, &[p1, p2]);
        // True fraction is 0.10; independence predicts ~0.01. This gap is
        // the engine of the paper's Fig. 1 mis-estimations.
        assert!(est < 0.02, "{est}");
    }

    #[test]
    fn missing_stats_fall_back_to_default() {
        let stats = correlated_table();
        let p = RangePredicate::half_open(7, 0, 1); // no such column analyzed
        assert_eq!(range_fraction(&stats, &p), DEFAULT_RANGE_SELECTIVITY);
    }

    #[test]
    fn join_cardinality_pk_fk() {
        let stats = correlated_table(); // 10k rows, 100 distinct in c1
        let card = equijoin_cardinality(&stats, 0, &stats, 0);
        assert!((card - 10_000.0 * 10_000.0 / 100.0).abs() < 1.0);
    }

    #[test]
    fn point_predicates_use_distinct_model() {
        let stats = correlated_table();
        let f = range_fraction(&stats, &RangePredicate::point(0, 50));
        assert!((f - 0.01).abs() < 0.005, "{f}");
    }
}
