//! Staleness injection: manufacturing the estimation errors the paper
//! studies.
//!
//! The experiments need an optimizer that is *wrong in controlled ways*:
//! Fig. 7b's Optimizer-Driven trigger fires when "the result cardinality
//! exceeds the optimizer's estimate (15 K tuples)"; Fig. 11's Switch Scan
//! flips at a 32 K-tuple estimate; Fig. 1's tuned DBMS-X picks index plans
//! off correlation-blind underestimates. [`StatsQuality`] describes how an
//! estimate is damaged, and [`StaleCatalog`] applies it on top of honest
//! [`TableStats`].

use crate::estimate::{conjunction_fraction, RangePredicate};
use crate::table::TableStats;

/// How trustworthy the statistics handed to the planner are.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatsQuality {
    /// Estimates pass through unchanged.
    Accurate,
    /// Selectivity estimates are multiplied by this factor (values < 1
    /// model correlation-blind underestimation; > 1 overestimation).
    /// The resulting fraction stays clamped to [0, 1].
    ScaledSelectivity(f64),
    /// The estimate is pinned to a fixed row count regardless of the
    /// predicate — "the optimizer's estimated cardinality is 15 K tuples".
    FixedCardinality(u64),
    /// No statistics at all: the planner falls back to default magic
    /// selectivities (uniformity assumption on an unknown domain).
    Missing,
}

/// A table-stats view with a chosen damage model applied.
#[derive(Debug, Clone)]
pub struct StaleCatalog {
    stats: TableStats,
    quality: StatsQuality,
}

impl StaleCatalog {
    /// Wrap honest statistics with a damage model.
    pub fn new(stats: TableStats, quality: StatsQuality) -> Self {
        StaleCatalog { stats, quality }
    }

    /// The underlying (honest) statistics.
    pub fn honest(&self) -> &TableStats {
        &self.stats
    }

    /// The damage model in effect.
    pub fn quality(&self) -> StatsQuality {
        self.quality
    }

    /// Change the damage model.
    pub fn set_quality(&mut self, quality: StatsQuality) {
        self.quality = quality;
    }

    /// Estimated selectivity of a conjunction of predicates, after damage.
    pub fn estimated_selectivity(&self, preds: &[RangePredicate]) -> f64 {
        let honest = conjunction_fraction(&self.stats, preds);
        match self.quality {
            StatsQuality::Accurate => honest,
            StatsQuality::ScaledSelectivity(f) => (honest * f).clamp(0.0, 1.0),
            StatsQuality::FixedCardinality(rows) => {
                if self.stats.row_count == 0 {
                    0.0
                } else {
                    (rows as f64 / self.stats.row_count as f64).clamp(0.0, 1.0)
                }
            }
            StatsQuality::Missing => {
                preds.iter().map(|_| crate::estimate::DEFAULT_RANGE_SELECTIVITY).product()
            }
        }
    }

    /// Estimated result cardinality for the predicates, after damage.
    pub fn estimated_cardinality(&self, preds: &[RangePredicate]) -> f64 {
        self.estimated_selectivity(preds) * self.stats.row_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_storage::HeapLoader;
    use smooth_types::{Column, DataType, Row, Schema, Value};

    fn stats() -> TableStats {
        let schema = Schema::new(vec![Column::new("c", DataType::Int64)]).unwrap();
        let mut l = HeapLoader::new_mem("t", schema);
        for i in 0..10_000i64 {
            l.push(&Row::new(vec![Value::Int(i % 1000)])).unwrap();
        }
        TableStats::analyze(&l.finish().unwrap()).unwrap()
    }

    #[test]
    fn accurate_passes_through() {
        let cat = StaleCatalog::new(stats(), StatsQuality::Accurate);
        let p = RangePredicate::half_open(0, 0, 100); // 10%
        let est = cat.estimated_selectivity(&[p]);
        assert!((est - 0.1).abs() < 0.02, "{est}");
        assert!((cat.estimated_cardinality(&[p]) - 1000.0).abs() < 200.0);
    }

    #[test]
    fn scaling_underestimates() {
        let cat = StaleCatalog::new(stats(), StatsQuality::ScaledSelectivity(0.01));
        let p = RangePredicate::half_open(0, 0, 100);
        let est = cat.estimated_selectivity(&[p]);
        assert!(est < 0.002, "{est}");
        // and clamps at 1 for overestimation
        let cat = StaleCatalog::new(stats(), StatsQuality::ScaledSelectivity(1e9));
        assert_eq!(cat.estimated_selectivity(&[p]), 1.0);
    }

    #[test]
    fn fixed_cardinality_ignores_predicates() {
        let cat = StaleCatalog::new(stats(), StatsQuality::FixedCardinality(15_000));
        let narrow = RangePredicate::point(0, 3);
        let wide = RangePredicate::half_open(0, 0, 1000);
        assert_eq!(cat.estimated_cardinality(&[narrow]), 10_000.0); // clamped to table
        assert_eq!(cat.estimated_cardinality(&[narrow]), cat.estimated_cardinality(&[wide]));
        let cat = StaleCatalog::new(stats(), StatsQuality::FixedCardinality(32));
        assert!((cat.estimated_cardinality(&[narrow]) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn missing_stats_use_defaults() {
        let cat = StaleCatalog::new(stats(), StatsQuality::Missing);
        let p = RangePredicate::point(0, 3); // truly 0.1% of rows
        let est = cat.estimated_selectivity(&[p]);
        assert!((est - 1.0 / 3.0).abs() < 1e-9, "default magic number, got {est}");
    }
}
