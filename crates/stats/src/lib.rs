//! Optimizer statistics.
//!
//! The paper's villain is *statistics going stale or missing*: "in many
//! cases statistics are outdated or non-existent ... this results in
//! suboptimal plans that severely hurt performance" (Section I). This crate
//! supplies both sides of that story:
//!
//! * honest statistics — equi-width and equi-depth [`histogram`]s,
//!   per-column and per-table summaries ([`mod@column`], [`mod@table`]) and the
//!   selectivity arithmetic ([`estimate`]) a textbook optimizer uses;
//! * controlled damage — [`staleness`] wraps a catalog and injects the
//!   exact classes of error the paper's experiments rely on: frozen
//!   (outdated) snapshots, correlation-blind under/over-estimation factors,
//!   and hard-coded guesses (the "optimizer estimated 15 K tuples" of
//!   Figs. 7b and 11).

pub mod column;
pub mod estimate;
pub mod histogram;
pub mod staleness;
pub mod table;

pub use column::ColumnStats;
pub use estimate::{range_fraction, RangePredicate};
pub use histogram::{EquiDepthHistogram, EquiWidthHistogram, Histogram};
pub use staleness::{StaleCatalog, StatsQuality};
pub use table::TableStats;
