//! Per-column statistics.

use std::collections::HashSet;
use std::ops::Bound;

use crate::histogram::{EquiDepthHistogram, Histogram};

/// Statistics for one (integer-like) column: min/max, distinct count, null
/// fraction and an equi-depth histogram.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Smallest non-null value (None when all-null or empty).
    pub min: Option<i64>,
    /// Largest non-null value.
    pub max: Option<i64>,
    /// Number of distinct non-null values (exact at analysis time).
    pub distinct: u64,
    /// Fraction of NULLs among all rows.
    pub null_fraction: f64,
    histogram: EquiDepthHistogram,
}

/// Default histogram resolution (PostgreSQL's `default_statistics_target`
/// is 100; we keep the same order of magnitude).
pub const DEFAULT_BUCKETS: usize = 100;

impl ColumnStats {
    /// Analyze a column from its non-null values and the total row count.
    pub fn analyze(values: &[i64], total_rows: u64) -> Self {
        Self::analyze_with_buckets(values, total_rows, DEFAULT_BUCKETS)
    }

    /// Analyze with an explicit histogram resolution.
    pub fn analyze_with_buckets(values: &[i64], total_rows: u64, buckets: usize) -> Self {
        let distinct = values.iter().collect::<HashSet<_>>().len() as u64;
        let null_fraction =
            if total_rows == 0 { 0.0 } else { 1.0 - values.len() as f64 / total_rows as f64 };
        ColumnStats {
            min: values.iter().min().copied(),
            max: values.iter().max().copied(),
            distinct,
            null_fraction: null_fraction.clamp(0.0, 1.0),
            histogram: EquiDepthHistogram::build(values, buckets),
        }
    }

    /// Estimated fraction of *all rows* whose value falls in the range
    /// (NULLs never qualify).
    pub fn range_selectivity(&self, lo: Bound<i64>, hi: Bound<i64>) -> f64 {
        self.histogram.range_fraction(lo, hi) * (1.0 - self.null_fraction)
    }

    /// Estimated fraction of all rows equal to `key` (uniform-per-distinct
    /// assumption when the histogram bucket is coarse).
    pub fn eq_selectivity(&self, key: i64) -> f64 {
        if self.distinct == 0 {
            return 0.0;
        }
        let by_histogram = self.range_selectivity(Bound::Included(key), Bound::Included(key));
        let by_distinct = (1.0 - self.null_fraction) / self.distinct as f64;
        // The histogram may smear a point lookup over a wide bucket; the
        // distinct-count model is usually tighter for point predicates.
        by_histogram.min(by_distinct.max(f64::MIN_POSITIVE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_computes_summary() {
        let vals: Vec<i64> = (0..1000).map(|i| i % 100).collect();
        let s = ColumnStats::analyze(&vals, 1000);
        assert_eq!(s.min, Some(0));
        assert_eq!(s.max, Some(99));
        assert_eq!(s.distinct, 100);
        assert_eq!(s.null_fraction, 0.0);
    }

    #[test]
    fn null_fraction_discounts_selectivity() {
        let vals: Vec<i64> = (0..500).collect();
        let s = ColumnStats::analyze(&vals, 1000); // half the rows NULL
        assert!((s.null_fraction - 0.5).abs() < 1e-9);
        let f = s.range_selectivity(Bound::Unbounded, Bound::Unbounded);
        assert!((f - 0.5).abs() < 1e-9);
    }

    #[test]
    fn eq_selectivity_uses_distinct_count() {
        let vals: Vec<i64> = (0..10_000).map(|i| i % 100).collect();
        let s = ColumnStats::analyze(&vals, 10_000);
        let f = s.eq_selectivity(42);
        assert!((f - 0.01).abs() < 0.005, "{f}");
        assert_eq!(ColumnStats::analyze(&[], 0).eq_selectivity(1), 0.0);
    }

    #[test]
    fn all_null_column() {
        let s = ColumnStats::analyze(&[], 100);
        assert_eq!(s.min, None);
        assert!((s.null_fraction - 1.0).abs() < 1e-9);
        assert_eq!(s.range_selectivity(Bound::Unbounded, Bound::Unbounded), 0.0);
    }
}
