//! Per-table statistics: the `ANALYZE` output the planner consumes.

use smooth_storage::{HeapFile, PageView};
use smooth_types::{PageId, Result, Value};

use crate::column::ColumnStats;

/// Statistics for one table, with per-column detail for integer-like
/// columns (text columns carry no histogram — the planner treats predicates
/// on them with fixed default selectivities, as real systems do when
/// statistics are missing).
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Rows in the table at analysis time.
    pub row_count: u64,
    /// Heap pages at analysis time.
    pub page_count: u32,
    /// Column statistics, aligned with the schema (None for text columns).
    pub columns: Vec<Option<ColumnStats>>,
}

impl TableStats {
    /// Scan the heap (raw, uncharged — `ANALYZE` is setup work) and build
    /// statistics for every integer-like column.
    pub fn analyze(heap: &HeapFile) -> Result<Self> {
        let ncols = heap.schema().len();
        let mut per_col: Vec<Vec<i64>> = vec![Vec::new(); ncols];
        let collect: Vec<bool> = heap
            .schema()
            .columns()
            .iter()
            .map(|c| c.ty.indexable() && c.ty != smooth_types::DataType::Text)
            .collect();
        for p in 0..heap.page_count() {
            let page = heap.read_raw(PageId(p))?;
            let view = PageView::new(&page)?;
            for slot in 0..view.slot_count() {
                let row = heap.decode_slot(&page, slot)?;
                for (c, vals) in per_col.iter_mut().enumerate() {
                    if !collect[c] {
                        continue;
                    }
                    if let Value::Int(v) = row.get(c) {
                        vals.push(*v);
                    }
                }
            }
        }
        let row_count = heap.tuple_count();
        let columns = per_col
            .into_iter()
            .enumerate()
            .map(|(c, vals)| collect[c].then(|| ColumnStats::analyze(&vals, row_count)))
            .collect();
        Ok(TableStats { row_count, page_count: heap.page_count(), columns })
    }

    /// Statistics for a column by index (None for unanalyzed columns).
    pub fn column(&self, idx: usize) -> Option<&ColumnStats> {
        self.columns.get(idx).and_then(|c| c.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_storage::HeapLoader;
    use smooth_types::{Column, DataType, Row, Schema};
    use std::ops::Bound;

    #[test]
    fn analyze_covers_int_columns_and_skips_text() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int64),
            Column::new("grp", DataType::Int32),
            Column::new("note", DataType::Text),
        ])
        .unwrap();
        let mut l = HeapLoader::new_mem("t", schema);
        for i in 0..2000i64 {
            l.push(&Row::new(vec![Value::Int(i), Value::Int(i % 10), Value::str("x")])).unwrap();
        }
        let heap = l.finish().unwrap();
        let stats = TableStats::analyze(&heap).unwrap();
        assert_eq!(stats.row_count, 2000);
        assert_eq!(stats.page_count, heap.page_count());
        assert!(stats.column(2).is_none());
        let id = stats.column(0).unwrap();
        assert_eq!((id.min, id.max), (Some(0), Some(1999)));
        let grp = stats.column(1).unwrap();
        assert_eq!(grp.distinct, 10);
        let half = id.range_selectivity(Bound::Included(0), Bound::Excluded(1000));
        assert!((half - 0.5).abs() < 0.05, "{half}");
    }

    #[test]
    fn analyze_empty_table() {
        let schema = Schema::new(vec![Column::new("id", DataType::Int64)]).unwrap();
        let heap = HeapLoader::new_mem("t", schema).finish().unwrap();
        let stats = TableStats::analyze(&heap).unwrap();
        assert_eq!(stats.row_count, 0);
        assert_eq!(stats.column(0).unwrap().min, None);
    }
}
