//! Property tests for the row codec: arbitrary well-typed rows round-trip
//! bit-exactly, and encoded length always matches the pre-computed size.

use proptest::prelude::*;
use smooth_types::{Column, DataType, Row, Schema, Value};

fn arb_type() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Int32),
        Just(DataType::Int64),
        Just(DataType::Float64),
        Just(DataType::Date),
        Just(DataType::Text),
    ]
}

fn arb_value_for(ty: DataType, nullable: bool) -> BoxedStrategy<Value> {
    let base: BoxedStrategy<Value> = match ty {
        DataType::Int32 | DataType::Date => {
            (i32::MIN..=i32::MAX).prop_map(|v| Value::Int(v as i64)).boxed()
        }
        DataType::Int64 => any::<i64>().prop_map(Value::Int).boxed(),
        DataType::Float64 => any::<f64>().prop_map(Value::Float).boxed(),
        DataType::Text => "[a-zA-Z0-9 ]{0,40}".prop_map(Value::Str).boxed(),
    };
    if nullable {
        prop_oneof![9 => base, 1 => Just(Value::Null)].boxed()
    } else {
        base
    }
}

fn arb_schema_and_row() -> impl Strategy<Value = (Schema, Row)> {
    proptest::collection::vec((arb_type(), any::<bool>()), 1..12).prop_flat_map(|cols| {
        let schema = Schema::new(
            cols.iter()
                .enumerate()
                .map(|(i, (ty, nullable))| {
                    let name = format!("c{i}");
                    if *nullable {
                        Column::nullable(name, *ty)
                    } else {
                        Column::new(name, *ty)
                    }
                })
                .collect(),
        )
        .expect("unique names");
        let values: Vec<_> =
            cols.iter().map(|(ty, nullable)| arb_value_for(*ty, *nullable)).collect();
        values.prop_map(move |vs| (schema.clone(), Row::new(vs)))
    })
}

proptest! {
    #[test]
    fn codec_roundtrips((schema, row) in arb_schema_and_row()) {
        let bytes = row.encode(&schema).unwrap();
        prop_assert_eq!(bytes.len(), row.encoded_len(&schema));
        let back = Row::decode(&schema, &bytes).unwrap();
        // NaN-safe comparison: compare through re-encoding.
        prop_assert_eq!(back.encode(&schema).unwrap(), bytes);
    }

    #[test]
    fn truncated_tuples_never_decode((schema, row) in arb_schema_and_row()) {
        let bytes = row.encode(&schema).unwrap();
        if !bytes.is_empty() {
            // Dropping the final byte must fail (never panic, never succeed
            // with the same tail structure).
            prop_assert!(Row::decode(&schema, &bytes[..bytes.len() - 1]).is_err());
        }
    }
}
