//! Workspace-wide error type.
//!
//! A single, small error enum keeps `Result` plumbing uniform across the
//! storage engine, index, executor and planner without pulling in external
//! error-handling crates.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced anywhere in the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An underlying I/O failure (file-backed storage only).
    Io(String),
    /// On-disk or in-page data failed validation.
    Corrupt(String),
    /// A value did not match the schema, or a schema was malformed.
    Schema(String),
    /// The requested operation is valid but not supported by this engine.
    Unsupported(String),
    /// A runtime failure during query execution.
    Exec(String),
    /// A planner failure: unknown table/column, no viable plan, etc.
    Plan(String),
    /// The query was cancelled (explicitly or by a timeout) before it
    /// produced a result.
    Cancelled,
    /// A transient fault persisted through every retry attempt: the
    /// operation was retried `attempts` times with backoff and still
    /// failed, so the fault is treated as permanent for this query.
    Faulted {
        /// Number of attempts made before giving up (including the
        /// first, non-retry attempt).
        attempts: u32,
    },
}

impl Error {
    /// Shorthand for a schema error with a formatted message.
    pub fn schema(msg: impl Into<String>) -> Self {
        Error::Schema(msg.into())
    }

    /// Shorthand for an execution error with a formatted message.
    pub fn exec(msg: impl Into<String>) -> Self {
        Error::Exec(msg.into())
    }

    /// Shorthand for a planner error with a formatted message.
    pub fn plan(msg: impl Into<String>) -> Self {
        Error::Plan(msg.into())
    }

    /// Shorthand for a corruption error with a formatted message.
    pub fn corrupt(msg: impl Into<String>) -> Self {
        Error::Corrupt(msg.into())
    }

    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// Transient errors are I/O failures (a flaky read that may succeed
    /// on the next attempt). Everything else — corruption, schema and
    /// plan errors, cancellation, and [`Error::Faulted`] (which *is*
    /// the exhausted-retries terminal state) — is permanent.
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::Io(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(m) => write!(f, "io error: {m}"),
            Error::Corrupt(m) => write!(f, "corrupt data: {m}"),
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Exec(m) => write!(f, "execution error: {m}"),
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Cancelled => write!(f, "query cancelled"),
            Error::Faulted { attempts } => {
                write!(f, "permanent fault after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = Error::corrupt("bad page header");
        assert_eq!(e.to_string(), "corrupt data: bad page header");
        let e = Error::plan("no table t");
        assert_eq!(e.to_string(), "plan error: no table t");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::schema("x"), Error::Schema("x".into()));
        assert_ne!(Error::schema("x"), Error::exec("x"));
    }

    #[test]
    fn transience_splits_io_from_everything_else() {
        assert!(Error::Io("flaky sector".into()).is_transient());
        for e in [
            Error::corrupt("bad page"),
            Error::exec("div by zero"),
            Error::plan("no table"),
            Error::Cancelled,
            Error::Faulted { attempts: 4 },
        ] {
            assert!(!e.is_transient(), "{e} must be permanent");
        }
    }

    #[test]
    fn fault_variants_display() {
        assert_eq!(Error::Cancelled.to_string(), "query cancelled");
        assert_eq!(Error::Faulted { attempts: 3 }.to_string(), "permanent fault after 3 attempts");
    }
}
