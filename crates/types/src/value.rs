//! Runtime values and their logical types.
//!
//! The engine keeps the value model intentionally small: 64-bit integers
//! (also covering dates, encoded as days since epoch, and fixed-point
//! decimals, encoded as cents), 64-bit floats, and UTF-8 strings. This is
//! enough to express the paper's micro-benchmark (10 integer columns,
//! Section VI-C) and the TPC-H-style workload (Section VI-B) without the
//! complexity of a full SQL type system.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{Error, Result};

/// Logical column types understood by the row codec and the planner.
///
/// The *storage* width differs per type (see [`DataType::fixed_width`]);
/// in-memory all integer-like types widen to [`Value::Int`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit signed integer (4 bytes on page).
    Int32,
    /// 64-bit signed integer (8 bytes on page).
    Int64,
    /// 64-bit IEEE float (8 bytes on page).
    Float64,
    /// Date stored as days since 1970-01-01 (4 bytes on page).
    Date,
    /// Variable-length UTF-8 string with a 2-byte length prefix.
    Text,
}

impl DataType {
    /// Bytes this type occupies inside a tuple, excluding the null bitmap.
    /// `None` for variable-width types.
    pub fn fixed_width(self) -> Option<usize> {
        match self {
            DataType::Int32 | DataType::Date => Some(4),
            DataType::Int64 | DataType::Float64 => Some(8),
            DataType::Text => None,
        }
    }

    /// Whether values of this type can serve as a B+-tree key.
    pub fn indexable(self) -> bool {
        !matches!(self, DataType::Float64)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int32 => "int32",
            DataType::Int64 => "int64",
            DataType::Float64 => "float64",
            DataType::Date => "date",
            DataType::Text => "text",
        };
        f.write_str(s)
    }
}

/// A single runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Any integer-like value (`Int32`, `Int64`, `Date` widen to this).
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A UTF-8 string.
    Str(String),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// `true` iff the value is SQL NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an integer, erroring on other variants.
    #[inline]
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(Error::exec(format!("expected int, got {other}"))),
        }
    }

    /// Extract a float; integers widen losslessly for small magnitudes.
    #[inline]
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            other => Err(Error::exec(format!("expected float, got {other}"))),
        }
    }

    /// Extract a string slice, erroring on other variants.
    #[inline]
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::exec(format!("expected text, got {other}"))),
        }
    }

    /// Whether this value is storable under the given column type.
    pub fn conforms_to(&self, ty: DataType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Int(v), DataType::Int32) => i32::try_from(*v).is_ok(),
            (Value::Int(v), DataType::Date) => i32::try_from(*v).is_ok(),
            (Value::Int(_), DataType::Int64) => true,
            (Value::Float(_), DataType::Float64) => true,
            (Value::Str(s), DataType::Text) => s.len() <= u16::MAX as usize,
            _ => false,
        }
    }

    /// Total ordering used by sort operators and B+-tree keys.
    ///
    /// NULL sorts first (as in PostgreSQL's `NULLS FIRST`); values of
    /// different families compare by family rank, which never happens for
    /// well-typed plans but keeps the ordering total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) => 1,
                Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_check_variants() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert!(Value::str("x").as_int().is_err());
        assert_eq!(Value::Int(7).as_float().unwrap(), 7.0);
        assert_eq!(Value::str("ab").as_str().unwrap(), "ab");
        assert!(Value::Null.is_null());
    }

    #[test]
    fn conformance_respects_width() {
        assert!(Value::Int(1).conforms_to(DataType::Int32));
        assert!(!Value::Int(i64::MAX).conforms_to(DataType::Int32));
        assert!(Value::Int(i64::MAX).conforms_to(DataType::Int64));
        assert!(Value::Null.conforms_to(DataType::Text));
        assert!(!Value::Float(1.0).conforms_to(DataType::Int64));
    }

    #[test]
    fn total_order_is_total_and_null_first() {
        use Ordering::*;
        assert_eq!(Value::Null.total_cmp(&Value::Int(i64::MIN)), Less);
        assert_eq!(Value::Int(2).total_cmp(&Value::Int(10)), Less);
        assert_eq!(Value::str("a").total_cmp(&Value::str("b")), Less);
        assert_eq!(Value::Int(3).total_cmp(&Value::Float(3.5)), Less);
        assert_eq!(Value::Float(3.5).total_cmp(&Value::Int(3)), Greater);
    }

    #[test]
    fn float_hash_uses_bits() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&Value::Float(1.5)), h(&Value::Float(1.5)));
        assert_ne!(h(&Value::Float(1.5)), h(&Value::Float(2.5)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("hi").to_string(), "'hi'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(DataType::Date.to_string(), "date");
    }

    #[test]
    fn indexability() {
        assert!(DataType::Int32.indexable());
        assert!(DataType::Text.indexable());
        assert!(!DataType::Float64.indexable());
    }
}
