//! Tuple identifiers: `(heap page, slot)` pairs, exactly as PostgreSQL's
//! `ctid`. Secondary B+-tree leaves store TIDs; Smooth Scan's Page-ID and
//! Tuple-ID caches are keyed by them.

use std::fmt;

/// Identifier of one heap page within a table (0-based, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u32);

impl PageId {
    /// The page number as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The next physically adjacent page.
    #[inline]
    pub fn next(self) -> PageId {
        PageId(self.0 + 1)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Slot number of a tuple within its page (0-based).
pub type SlotId = u16;

/// A tuple identifier: heap page plus slot within the page.
///
/// `Ord` follows physical placement (page-major), which is what Sort Scan
/// relies on when it orders TIDs before touching the heap (Section II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid {
    /// The heap page holding the tuple.
    pub page: PageId,
    /// The slot within that page.
    pub slot: SlotId,
}

impl Tid {
    /// Construct from raw parts.
    #[inline]
    pub fn new(page: u32, slot: SlotId) -> Self {
        Tid { page: PageId(page), slot }
    }

    /// A dense ordinal for bitmap caches: `page * slots_per_page + slot`.
    ///
    /// `slots_per_page` must be an upper bound on slots in any page of the
    /// table; the Tuple-ID cache (Section IV-A) sizes its bitmap with it.
    #[inline]
    pub fn ordinal(self, slots_per_page: u32) -> u64 {
        self.page.0 as u64 * slots_per_page as u64 + self.slot as u64
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.page.0, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_page_major() {
        let a = Tid::new(1, 500);
        let b = Tid::new(2, 0);
        let c = Tid::new(2, 1);
        assert!(a < b && b < c);
    }

    #[test]
    fn ordinal_is_dense_and_injective() {
        let spp = 128;
        let t1 = Tid::new(0, 127);
        let t2 = Tid::new(1, 0);
        assert_eq!(t1.ordinal(spp) + 1, t2.ordinal(spp));
    }

    #[test]
    fn page_id_navigation() {
        assert_eq!(PageId(3).next(), PageId(4));
        assert_eq!(PageId(3).index(), 3);
        assert_eq!(PageId(3).to_string(), "p3");
        assert_eq!(Tid::new(3, 9).to_string(), "(3,9)");
    }
}
