//! The spill codec: how tuples are serialized into overflow files.
//!
//! Larger-than-memory operators (the grace hash join and the external
//! merge sort in `smooth-executor`) spill tuples to overflow files when
//! their working set exceeds the memory budget. This module defines the
//! one on-disk tuple layout they all share, so spill *sizes* — which
//! drive the charged overflow-file I/O — are computed identically
//! everywhere, whether the tuples at hand are materialized [`Row`]s or
//! columns inside a [`ColumnBatch`].
//!
//! Layout, per value: a 1-byte tag, then a fixed or length-prefixed
//! payload —
//!
//! | tag | value               | payload                          |
//! |-----|---------------------|----------------------------------|
//! | 0   | `Value::Null`       | none                             |
//! | 1   | `Value::Int(v)`     | 8 bytes, `v` little-endian       |
//! | 2   | `Value::Float(v)`   | 8 bytes, IEEE bits little-endian |
//! | 3   | `Value::Str(s)`     | 4-byte LE length, then the bytes |
//!
//! A spilled row is its values encoded back to back; a spill file is
//! rows encoded back to back (the reader knows the row width from the
//! operator's schema). The format is self-describing enough to round-
//! trip without a schema and cheap enough to size without encoding:
//! [`batch_row_len`] reads lengths straight off the typed column
//! vectors.

use crate::columns::{ColumnBatch, ColumnValues};
use crate::error::{Error, Result};
use crate::row::Row;
use crate::value::Value;

/// Encoded length of one value under the spill codec.
#[inline]
pub fn value_len(v: &Value) -> usize {
    match v {
        Value::Null => 1,
        Value::Int(_) | Value::Float(_) => 9,
        Value::Str(s) => 5 + s.len(),
    }
}

/// Append one value's spill encoding to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(2);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// Decode one value off the front of `bytes`; returns it plus the
/// number of bytes consumed.
pub fn decode_value(bytes: &[u8]) -> Result<(Value, usize)> {
    let (&tag, rest) = bytes.split_first().ok_or_else(|| Error::corrupt("empty spill value"))?;
    let fixed = |n: usize| -> Result<&[u8]> {
        rest.get(..n).ok_or_else(|| Error::corrupt("truncated spill value"))
    };
    // invariant: the `try_into().expect(..)` conversions below cannot
    // fail — `fixed(n)?` already returned exactly an `n`-byte slice, so
    // the array conversion is length-checked before it runs.
    match tag {
        0 => Ok((Value::Null, 1)),
        1 => Ok((Value::Int(i64::from_le_bytes(fixed(8)?.try_into().expect("8 bytes"))), 9)),
        2 => Ok((
            Value::Float(f64::from_bits(u64::from_le_bytes(
                fixed(8)?.try_into().expect("8 bytes"),
            ))),
            9,
        )),
        3 => {
            let len = u32::from_le_bytes(fixed(4)?.try_into().expect("4 bytes")) as usize;
            let s = rest.get(4..4 + len).ok_or_else(|| Error::corrupt("truncated spill string"))?;
            let s = std::str::from_utf8(s)
                .map_err(|_| Error::corrupt("non-utf8 spill string"))?
                .to_owned();
            Ok((Value::Str(s), 5 + len))
        }
        _ => Err(Error::corrupt("unknown spill value tag")),
    }
}

/// Encoded length of one row.
#[inline]
pub fn row_len(row: &Row) -> usize {
    row.values().iter().map(value_len).sum()
}

/// Append one row's spill encoding to `out`.
pub fn encode_row(row: &Row, out: &mut Vec<u8>) {
    for v in row.values() {
        encode_value(v, out);
    }
}

/// Decode one `width`-column row off the front of `bytes`; returns it
/// plus the number of bytes consumed.
pub fn decode_row(bytes: &[u8], width: usize) -> Result<(Row, usize)> {
    let mut values = Vec::with_capacity(width);
    let mut at = 0;
    for _ in 0..width {
        let (v, n) = decode_value(&bytes[at..])?;
        values.push(v);
        at += n;
    }
    Ok((Row::new(values), at))
}

/// Encoded length of physical row `phys` of a [`ColumnBatch`], read
/// straight off the typed vectors — no [`Value`] materializes.
#[inline]
pub fn batch_row_len(batch: &ColumnBatch, phys: usize) -> usize {
    let mut len = 0;
    for col in batch.columns() {
        len += if col.is_null(phys) {
            1
        } else {
            match col.values() {
                ColumnValues::Int(_) | ColumnValues::Float(_) => 9,
                ColumnValues::Str(v) => 5 + v.get(phys).len(),
            }
        };
    }
    len
}

/// Append physical row `phys` of a [`ColumnBatch`] to `out` under the
/// spill codec. This is the view layout's copy-on-spill escape hatch:
/// string bytes are written straight from their spans (views included)
/// without materializing a [`Value`], so spill files always own their
/// bytes and never pin page buffers.
pub fn encode_batch_row(batch: &ColumnBatch, phys: usize, out: &mut Vec<u8>) {
    for col in batch.columns() {
        if col.is_null(phys) {
            out.push(0);
            continue;
        }
        match col.values() {
            ColumnValues::Int(v) => {
                out.push(1);
                out.extend_from_slice(&v[phys].to_le_bytes());
            }
            ColumnValues::Float(v) => {
                out.push(2);
                out.extend_from_slice(&v[phys].to_bits().to_le_bytes());
            }
            ColumnValues::Str(v) => {
                let s = v.get(phys);
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::DataType;

    fn sample_rows() -> Vec<Row> {
        vec![
            Row::new(vec![Value::Int(42), Value::Null, Value::str("hello")]),
            Row::new(vec![Value::Int(-7), Value::Float(1.5), Value::str("")]),
            Row::new(vec![Value::Int(i64::MAX), Value::Float(-0.0), Value::str("αβγ")]),
        ]
    }

    #[test]
    fn row_roundtrip_preserves_values_and_len() {
        for row in sample_rows() {
            let mut buf = Vec::new();
            encode_row(&row, &mut buf);
            assert_eq!(buf.len(), row_len(&row));
            let (back, used) = decode_row(&buf, row.values().len()).unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(back.values(), row.values());
        }
    }

    #[test]
    fn batch_row_len_matches_row_len() {
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int64),
            Column::nullable("b", DataType::Float64),
            Column::new("c", DataType::Text),
        ])
        .unwrap();
        let rows = sample_rows();
        // The nullable Float column is the only NULL in the sample.
        let batch = ColumnBatch::from_rows(&schema, &rows).unwrap();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(batch_row_len(&batch, i), row_len(row));
            let mut from_batch = Vec::new();
            encode_batch_row(&batch, i, &mut from_batch);
            let mut from_row = Vec::new();
            encode_row(row, &mut from_row);
            assert_eq!(from_batch, from_row);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_value(&[]).is_err());
        assert!(decode_value(&[9]).is_err());
        assert!(decode_value(&[1, 0, 0]).is_err());
        assert!(decode_value(&[3, 5, 0, 0, 0, b'x']).is_err());
    }
}
