//! Columnar batches: typed column vectors plus a selection vector.
//!
//! A [`ColumnBatch`] is the column-major counterpart of
//! [`crate::RowBatch`]: one dense, uniformly-typed vector per column
//! (integers, floats or strings, with a parallel null mask) and an
//! optional *selection vector* naming the live rows. The layout exists for
//! the hot paths:
//!
//! * scans decode pages straight into column vectors, paying no per-row
//!   `Vec<Value>` allocation (see [`ColumnBatch::push_tuple`]);
//! * predicates evaluate as tight loops over a single typed vector,
//!   producing a selection vector instead of moving any data;
//! * projection is column pruning, not per-row rebuilding.
//!
//! Zero-copy-ish adapters ([`ColumnBatch::from_rows`],
//! [`ColumnBatch::into_rows`]) bridge to the row-major protocol so
//! unconverted operators keep working; `String`s materialize only at that
//! row boundary.
//!
//! Typing follows the schema: `Int32`/`Int64`/`Date` columns widen into an
//! `i64` vector, `Float64` into `f64`, `Text` into a [`TextColumn`] — a
//! view layout of `(buffer, offset, length)` spans over shared page-backed
//! byte buffers ([`SharedBytes`]) with an owned byte arena for values that
//! have no backing buffer. NULL slots carry a default value in the typed
//! vector and `true` in the null mask.
//!
//! # Text view rules
//!
//! * A span into a [`SharedBytes`] buffer **pins** that buffer (an `Arc`
//!   clone per distinct buffer, not per value) until the column is
//!   cleared, compacted or dropped — scans hand their pinned page buffers
//!   to the decode path (`ColumnVector::push_decoded`) so decoded text
//!   borrows the page instead of allocating one `String` per qualifying
//!   value.
//! * Values with no backing buffer (row pushes, gathered copies of arena
//!   spans, decode with views disabled via `SMOOTH_TEXT_VIEWS=0`) append
//!   their bytes to the column-local arena: owned, but still amortized —
//!   no per-value allocation.
//! * Views degrade to owned bytes automatically whenever a slice does not
//!   lie inside its claimed backing buffer, and serialization
//!   ([`crate::spill`]) always **copies out**, so spill files and caches
//!   own their bytes and never pin pages.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::row::Row;
use crate::row::{codec_is_null, codec_skip_field, codec_split_bitmap, codec_take};
use crate::schema::Schema;
use crate::value::{DataType, Value};

/// A shared, immutable byte buffer that text views can borrow from. The
/// storage layer's page buffers (`PageBuf`) are exactly this type, so a
/// scan can hand its pinned page run straight to the decoder.
pub type SharedBytes = Arc<[u8]>;

/// Latched `SMOOTH_TEXT_VIEWS` knob: `0` = unread, `1` = on, `2` = off.
static TEXT_VIEWS: AtomicU8 = AtomicU8::new(0);

/// Text values decoded into owned arena bytes (each one would have been
/// a `String` allocation under the pre-view layout). Monotone,
/// process-global; consumers diff around a region of interest.
static TEXT_DECODE_OWNED: AtomicU64 = AtomicU64::new(0);

/// Text values decoded as zero-copy views into a backing buffer.
static TEXT_DECODE_VIEWS: AtomicU64 = AtomicU64::new(0);

/// Whether scan decode emits zero-copy text views (the default). Set
/// `SMOOTH_TEXT_VIEWS=0` to degrade every decoded text value to owned
/// arena bytes — the escape hatch if view lifetimes are ever suspected
/// of misbehaving. Read once and latched; [`force_text_views`]
/// overrides it in-process.
pub fn text_views_enabled() -> bool {
    match TEXT_VIEWS.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = std::env::var("SMOOTH_TEXT_VIEWS").map_or(true, |v| v != "0");
            TEXT_VIEWS.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Override the text-view latch in-process (benchmarks comparing the
/// view and owned decode paths; tests). Rows are byte-identical either
/// way — only allocation behavior changes.
pub fn force_text_views(on: bool) {
    TEXT_VIEWS.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Cumulative `(owned, views)` text decode counters: how many decoded
/// text values materialized owned arena bytes vs. zero-copy views.
/// Monotone and process-global — diff two readings around the region of
/// interest.
pub fn text_decode_counters() -> (u64, u64) {
    (TEXT_DECODE_OWNED.load(Ordering::Relaxed), TEXT_DECODE_VIEWS.load(Ordering::Relaxed))
}

/// Sentinel `buf` index marking a span that lives in the owned arena.
const ARENA_SPAN: u32 = u32::MAX;

/// One text value: a `(buffer, offset, length)` triple into either a
/// shared backing buffer (`buf < ARENA_SPAN`, indexing
/// [`TextColumn::bufs`]) or the column-local arena (`buf == ARENA_SPAN`).
#[derive(Debug, Clone, Copy)]
struct TextSpan {
    buf: u32,
    off: usize,
    len: usize,
}

/// A `Text` column payload: spans into shared page-backed buffers plus an
/// owned byte arena — no per-value `String`. See the module docs for the
/// view rules. Equality is logical (value by value), independent of which
/// representation each value uses.
#[derive(Debug, Clone, Default)]
pub struct TextColumn {
    /// Distinct backing buffers, deduplicated against the most recent
    /// entry (scans decode page by page, so consecutive views share one
    /// buffer). Each entry pins its buffer until `clear` or drop.
    bufs: Vec<SharedBytes>,
    /// Owned bytes for values without a backing buffer.
    arena: Vec<u8>,
    /// One span per slot, in slot order.
    spans: Vec<TextSpan>,
}

impl TextColumn {
    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when the column holds no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    #[inline]
    fn bytes_at(&self, idx: usize) -> &[u8] {
        let sp = self.spans[idx];
        if sp.buf == ARENA_SPAN {
            &self.arena[sp.off..sp.off + sp.len]
        } else {
            &self.bufs[sp.buf as usize][sp.off..sp.off + sp.len]
        }
    }

    /// The string at `idx` (panics when out of bounds, like indexing).
    #[inline]
    pub fn get(&self, idx: usize) -> &str {
        // invariant: every push validates UTF-8 before recording a span
        // (views validate at decode; arena bytes come from `&str`s).
        std::str::from_utf8(self.bytes_at(idx)).expect("text spans hold validated UTF-8")
    }

    /// Append an owned value: bytes copy into the column arena
    /// (amortized — no per-value allocation).
    #[inline]
    pub fn push_owned(&mut self, s: &str) {
        let off = self.arena.len();
        self.arena.extend_from_slice(s.as_bytes());
        self.spans.push(TextSpan { buf: ARENA_SPAN, off, len: s.len() });
    }

    /// Append a zero-copy view of `s`, which must be a slice of
    /// `backing` — the backing buffer is pinned (one `Arc` clone per
    /// distinct buffer) until the column is cleared or dropped. Degrades
    /// to [`TextColumn::push_owned`] when the slice does not lie inside
    /// `backing`, so callers never need to pre-check containment.
    #[inline]
    pub fn push_view(&mut self, backing: &SharedBytes, s: &str) {
        let base = backing.as_ptr() as usize;
        let p = s.as_ptr() as usize;
        let Some(off) = p.checked_sub(base).filter(|&o| o + s.len() <= backing.len()) else {
            self.push_owned(s);
            return;
        };
        let buf = match self.bufs.last() {
            Some(last) if Arc::ptr_eq(last, backing) => self.bufs.len() - 1,
            _ => {
                self.bufs.push(Arc::clone(backing));
                self.bufs.len() - 1
            }
        };
        debug_assert!(buf < ARENA_SPAN as usize, "text column buffer index overflow");
        self.spans.push(TextSpan { buf: buf as u32, off, len: s.len() });
    }

    /// Append slot `idx` of `src`: view spans share the backing buffer
    /// (an `Arc` clone at most — zero bytes move); arena spans copy
    /// their bytes into this column's arena. Neither allocates per
    /// value. This is the gather/move primitive behind
    /// [`ColumnVector::push_from`] and friends.
    #[inline]
    pub fn push_from(&mut self, src: &TextColumn, idx: usize) {
        let sp = src.spans[idx];
        if sp.buf == ARENA_SPAN {
            let off = self.arena.len();
            self.arena.extend_from_slice(&src.arena[sp.off..sp.off + sp.len]);
            self.spans.push(TextSpan { buf: ARENA_SPAN, off, len: sp.len });
        } else {
            let backing = &src.bufs[sp.buf as usize];
            let buf = match self.bufs.last() {
                Some(last) if Arc::ptr_eq(last, backing) => self.bufs.len() - 1,
                _ => {
                    self.bufs.push(Arc::clone(backing));
                    self.bufs.len() - 1
                }
            };
            self.spans.push(TextSpan { buf: buf as u32, ..sp });
        }
    }

    /// Append slots `[a, b)` of `src` (see [`TextColumn::push_from`]).
    fn append_range(&mut self, src: &TextColumn, a: usize, b: usize) {
        self.spans.reserve(b - a);
        for i in a..b {
            self.push_from(src, i);
        }
    }

    /// Drop every slot, releasing the arena and every pinned buffer
    /// (capacity is kept).
    pub fn clear(&mut self) {
        self.bufs.clear();
        self.arena.clear();
        self.spans.clear();
    }

    /// Keep the first `n` slots. Arena bytes and buffer pins of the
    /// dropped tail are *not* reclaimed until the next `clear` /
    /// compaction — this is the scan-side "undo the last append"
    /// primitive, and the leaked tail is bounded by one fill cycle.
    fn truncate(&mut self, n: usize) {
        self.spans.truncate(n);
    }

    /// Drop the first `n` slots by rebuilding the column from the
    /// survivors — views keep sharing their buffers, arena bytes
    /// recompact — so dead prefixes release their pinned pages. Called
    /// by the cursor-buffer compaction only when the consumed prefix
    /// dominates, keeping the rebuild amortized O(1) per slot.
    fn drop_prefix(&mut self, n: usize) {
        let mut fresh = TextColumn::default();
        fresh.spans.reserve(self.spans.len() - n);
        fresh.append_range(self, n, self.spans.len());
        *self = fresh;
    }
}

impl PartialEq for TextColumn {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && (0..self.len()).all(|i| self.bytes_at(i) == other.bytes_at(i))
    }
}

/// Decode only the columns listed in `cols` (ascending ordinals) of one
/// encoded tuple, appending one slot to each of the parallel vectors
/// `out[k]` (one per entry of `cols`). Unreferenced fixed-width fields
/// coalesce into deferred skips. The whole tuple is still structurally
/// validated — truncation or trailing bytes error exactly as under
/// [`crate::row::Row::decode`] — so probing keeps the row and columnar
/// protocols behaviorally identical on bad pages.
///
/// This is the columnar twin of [`crate::row::Row::decode_columns_into`]:
/// the scan-side predicate probe that feeds the vectorized kernels without
/// materializing a `Value` per field. When `backing` names the shared
/// buffer that `bytes` is a slice of, decoded text fields become zero-copy
/// views pinning that buffer (see the module docs); pass `None` to copy
/// text into the column arena.
pub fn decode_columns_append(
    schema: &Schema,
    bytes: &[u8],
    cols: &[usize],
    out: &mut [ColumnVector],
    backing: Option<&SharedBytes>,
) -> Result<()> {
    debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "cols must be ascending");
    debug_assert_eq!(cols.len(), out.len());
    let (bitmap, mut rest) = codec_split_bitmap(schema, bytes)?;
    let mut wanted = cols.iter().copied().enumerate().peekable();
    let mut pending_skip = 0usize;
    for (i, c) in schema.columns().iter().enumerate() {
        let want = wanted.peek().map(|&(_, col)| col) == Some(i);
        let slot = if want { wanted.next().map(|(k, _)| k) } else { None };
        if codec_is_null(bitmap, i) {
            if let Some(k) = slot {
                out[k].push_null();
            }
            continue;
        }
        if slot.is_none() {
            if let Some(w) = c.ty.fixed_width() {
                pending_skip += w;
                continue;
            }
        }
        if pending_skip > 0 {
            codec_take(&mut rest, pending_skip)?;
            pending_skip = 0;
        }
        match slot {
            Some(k) => out[k].push_decoded(c.ty, &mut rest, backing)?,
            None => codec_skip_field(&mut rest, c.ty)?,
        }
    }
    if pending_skip > 0 {
        codec_take(&mut rest, pending_skip)?;
    }
    if !rest.is_empty() {
        return Err(Error::corrupt("trailing bytes after tuple"));
    }
    Ok(())
}

/// The typed payload of one column vector.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnValues {
    /// Integer-like columns (`Int32`, `Int64`, `Date` widen to `i64`).
    Int(Vec<i64>),
    /// `Float64` columns.
    Float(Vec<f64>),
    /// `Text` columns (view layout — see [`TextColumn`]).
    Str(TextColumn),
}

impl ColumnValues {
    fn drop_prefix(&mut self, n: usize) {
        match self {
            ColumnValues::Int(v) => drop(v.drain(..n)),
            ColumnValues::Float(v) => drop(v.drain(..n)),
            ColumnValues::Str(v) => v.drop_prefix(n),
        }
    }

    fn clear(&mut self) {
        match self {
            ColumnValues::Int(v) => v.clear(),
            ColumnValues::Float(v) => v.clear(),
            ColumnValues::Str(v) => v.clear(),
        }
    }

    fn truncate(&mut self, n: usize) {
        match self {
            ColumnValues::Int(v) => v.truncate(n),
            ColumnValues::Float(v) => v.truncate(n),
            ColumnValues::Str(v) => v.truncate(n),
        }
    }
}

/// One column's worth of values: a typed vector plus a null mask.
///
/// Null slots hold a default payload (`0`, `0.0`, `""`) and `true` in the
/// mask; kernels must consult [`ColumnVector::nulls`] before the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnVector {
    values: ColumnValues,
    nulls: Vec<bool>,
}

impl ColumnVector {
    /// An empty vector typed for `ty`.
    pub fn for_type(ty: DataType) -> Self {
        let values = match ty {
            DataType::Int32 | DataType::Int64 | DataType::Date => ColumnValues::Int(Vec::new()),
            DataType::Float64 => ColumnValues::Float(Vec::new()),
            DataType::Text => ColumnValues::Str(TextColumn::default()),
        };
        ColumnVector { values, nulls: Vec::new() }
    }

    /// Number of slots (live or not — selection is batch-level).
    #[inline]
    pub fn len(&self) -> usize {
        self.nulls.len()
    }

    /// `true` when the vector holds no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nulls.is_empty()
    }

    /// The typed payload.
    #[inline]
    pub fn values(&self) -> &ColumnValues {
        &self.values
    }

    /// The null mask, parallel to the payload.
    #[inline]
    pub fn nulls(&self) -> &[bool] {
        &self.nulls
    }

    /// Whether slot `idx` is NULL.
    #[inline]
    pub fn is_null(&self, idx: usize) -> bool {
        self.nulls[idx]
    }

    /// Drop all slots, keeping capacity.
    pub fn clear(&mut self) {
        self.values.clear();
        self.nulls.clear();
    }

    fn truncate(&mut self, n: usize) {
        self.values.truncate(n);
        self.nulls.truncate(n);
    }

    /// Append a NULL slot.
    #[inline]
    pub fn push_null(&mut self) {
        match &mut self.values {
            ColumnValues::Int(v) => v.push(0),
            ColumnValues::Float(v) => v.push(0.0),
            ColumnValues::Str(v) => v.push_owned(""),
        }
        self.nulls.push(true);
    }

    /// Append an integer (errors on non-integer vectors).
    #[inline]
    pub fn push_int(&mut self, x: i64) -> Result<()> {
        match &mut self.values {
            ColumnValues::Int(v) => {
                v.push(x);
                self.nulls.push(false);
                Ok(())
            }
            _ => Err(Error::exec("integer pushed into a non-integer column vector")),
        }
    }

    /// Append a float (errors on non-float vectors).
    #[inline]
    pub fn push_float(&mut self, x: f64) -> Result<()> {
        match &mut self.values {
            ColumnValues::Float(v) => {
                v.push(x);
                self.nulls.push(false);
                Ok(())
            }
            _ => Err(Error::exec("float pushed into a non-float column vector")),
        }
    }

    /// Append a string (errors on non-text vectors). Bytes copy into the
    /// column arena — no per-value allocation.
    #[inline]
    pub fn push_str(&mut self, s: impl AsRef<str>) -> Result<()> {
        match &mut self.values {
            ColumnValues::Str(v) => {
                v.push_owned(s.as_ref());
                self.nulls.push(false);
                Ok(())
            }
            _ => Err(Error::exec("string pushed into a non-text column vector")),
        }
    }

    /// Append a [`Value`], type-checked against the vector.
    pub fn push_value(&mut self, value: &Value) -> Result<()> {
        match value {
            Value::Null => {
                self.push_null();
                Ok(())
            }
            Value::Int(x) => self.push_int(*x),
            Value::Float(x) => self.push_float(*x),
            Value::Str(s) => self.push_str(s),
        }
    }

    /// Decode one non-null field of type `ty` from the front of `rest`
    /// straight into the vector — the allocation-free scan decode path.
    /// With `backing` (the shared buffer `rest` slices into) and views
    /// enabled, text fields become zero-copy views pinning that buffer;
    /// otherwise their bytes copy into the column arena.
    #[inline]
    pub(crate) fn push_decoded(
        &mut self,
        ty: DataType,
        rest: &mut &[u8],
        backing: Option<&SharedBytes>,
    ) -> Result<()> {
        match ty {
            DataType::Int32 | DataType::Date => {
                let b = codec_take(rest, 4)?;
                self.push_int(i32::from_le_bytes(b.try_into().unwrap()) as i64)
            }
            DataType::Int64 => {
                let b = codec_take(rest, 8)?;
                self.push_int(i64::from_le_bytes(b.try_into().unwrap()))
            }
            DataType::Float64 => {
                let b = codec_take(rest, 8)?;
                self.push_float(f64::from_le_bytes(b.try_into().unwrap()))
            }
            DataType::Text => {
                let b = codec_take(rest, 2)?;
                let len = u16::from_le_bytes(b.try_into().unwrap()) as usize;
                let bytes = codec_take(rest, len)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| Error::corrupt("non-utf8 text field"))?;
                let ColumnValues::Str(v) = &mut self.values else {
                    return Err(Error::exec("string pushed into a non-text column vector"));
                };
                match backing.filter(|_| text_views_enabled()) {
                    Some(buf) => {
                        TEXT_DECODE_VIEWS.fetch_add(1, Ordering::Relaxed);
                        v.push_view(buf, s);
                    }
                    None => {
                        TEXT_DECODE_OWNED.fetch_add(1, Ordering::Relaxed);
                        v.push_owned(s);
                    }
                }
                self.nulls.push(false);
                Ok(())
            }
        }
    }

    /// The value at `idx` as a [`Value`] (string bytes copy out — this is
    /// the row-materialization boundary).
    pub fn value(&self, idx: usize) -> Value {
        if self.nulls[idx] {
            return Value::Null;
        }
        match &self.values {
            ColumnValues::Int(v) => Value::Int(v[idx]),
            ColumnValues::Float(v) => Value::Float(v[idx]),
            ColumnValues::Str(v) => Value::Str(v.get(idx).to_owned()),
        }
    }

    /// Integer at `idx` (NULL or wrong type errors).
    #[inline]
    pub fn int(&self, idx: usize) -> Result<i64> {
        if self.nulls[idx] {
            return Err(Error::exec("expected int, got NULL"));
        }
        match &self.values {
            ColumnValues::Int(v) => Ok(v[idx]),
            _ => Err(Error::exec("expected int column")),
        }
    }

    /// Float at `idx` (integers widen; NULL or text errors).
    #[inline]
    pub fn float(&self, idx: usize) -> Result<f64> {
        if self.nulls[idx] {
            return Err(Error::exec("expected float, got NULL"));
        }
        match &self.values {
            ColumnValues::Float(v) => Ok(v[idx]),
            ColumnValues::Int(v) => Ok(v[idx] as f64),
            ColumnValues::Str(_) => Err(Error::exec("expected float column")),
        }
    }

    /// String at `idx` (NULL or wrong type errors).
    #[inline]
    pub fn str(&self, idx: usize) -> Result<&str> {
        if self.nulls[idx] {
            return Err(Error::exec("expected text, got NULL"));
        }
        match &self.values {
            ColumnValues::Str(v) => Ok(v.get(idx)),
            _ => Err(Error::exec("expected text column")),
        }
    }

    /// Order `self[idx]` against a [`Value`] under [`Value::total_cmp`]
    /// semantics, without materializing a `Value`.
    pub fn cmp_value(&self, idx: usize, other: &Value) -> std::cmp::Ordering {
        // Cheap for Int/Float; Str compares borrowed.
        match (&self.values, other) {
            _ if self.nulls[idx] => Value::Null.total_cmp(other),
            (ColumnValues::Int(v), Value::Int(b)) => v[idx].cmp(b),
            (ColumnValues::Int(v), Value::Float(b)) => (v[idx] as f64).total_cmp(b),
            (ColumnValues::Float(v), Value::Float(b)) => v[idx].total_cmp(b),
            (ColumnValues::Float(v), Value::Int(b)) => v[idx].total_cmp(&(*b as f64)),
            (ColumnValues::Str(v), Value::Str(b)) => v.get(idx).cmp(b.as_str()),
            _ => self.value(idx).total_cmp(other),
        }
    }

    /// Append slot `idx` of `src` — the gather primitive of the columnar
    /// hash-join probe, where one build row can be emitted under many
    /// probe rows. Text views share their backing buffer (an `Arc` clone
    /// at most); arena text copies bytes — never a per-value allocation.
    /// Both vectors must share their typing (they come from batches of
    /// the same schema column).
    #[inline]
    pub fn push_from(&mut self, src: &ColumnVector, idx: usize) {
        if src.nulls[idx] {
            self.push_null();
            return;
        }
        self.nulls.push(false);
        match (&mut self.values, &src.values) {
            (ColumnValues::Int(dst), ColumnValues::Int(s)) => dst.push(s[idx]),
            (ColumnValues::Float(dst), ColumnValues::Float(s)) => dst.push(s[idx]),
            (ColumnValues::Str(dst), ColumnValues::Str(s)) => dst.push_from(s, idx),
            _ => unreachable!("gather between column vectors of different typing"),
        }
    }

    /// Append slot `idx` of `src` for cursor-style single-visit
    /// consumption. Under the view layout this is [`ColumnVector::
    /// push_from`] — the source stays intact (text shares or copies,
    /// nothing is hollowed out) — but callers should keep treating the
    /// source slot as consumed. Typing must match.
    #[inline]
    pub fn push_taken(&mut self, src: &mut ColumnVector, idx: usize) {
        self.push_from(src, idx);
    }

    /// Append slots `[a, b)` of `src`. Fixed-width payloads copy with one
    /// `memcpy`; text spans share their backing buffers or copy arena
    /// bytes (the source range stays intact but should be treated as
    /// consumed).
    fn extend_taken_range(&mut self, src: &mut ColumnVector, a: usize, b: usize) {
        self.nulls.extend_from_slice(&src.nulls[a..b]);
        match (&mut self.values, &mut src.values) {
            (ColumnValues::Int(dst), ColumnValues::Int(s)) => dst.extend_from_slice(&s[a..b]),
            (ColumnValues::Float(dst), ColumnValues::Float(s)) => dst.extend_from_slice(&s[a..b]),
            (ColumnValues::Str(dst), ColumnValues::Str(s)) => dst.append_range(s, a, b),
            _ => unreachable!("column vectors of one batch share their typing"),
        }
    }
}

/// A column-major batch: one [`ColumnVector`] per output column, a
/// physical row count, and an optional selection vector naming the live
/// rows (in emission order). Without a selection vector every physical
/// row is live.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBatch {
    columns: Vec<ColumnVector>,
    rows: usize,
    selection: Option<Vec<u32>>,
}

impl ColumnBatch {
    /// An empty batch with one typed vector per column of `schema`.
    pub fn for_schema(schema: &Schema) -> Self {
        ColumnBatch {
            columns: schema.columns().iter().map(|c| ColumnVector::for_type(c.ty)).collect(),
            rows: 0,
            selection: None,
        }
    }

    /// An empty batch with the same column typing as `other`.
    pub fn like(other: &ColumnBatch) -> Self {
        ColumnBatch {
            columns: other
                .columns
                .iter()
                .map(|c| ColumnVector {
                    values: match &c.values {
                        ColumnValues::Int(_) => ColumnValues::Int(Vec::new()),
                        ColumnValues::Float(_) => ColumnValues::Float(Vec::new()),
                        ColumnValues::Str(_) => ColumnValues::Str(TextColumn::default()),
                    },
                    nulls: Vec::new(),
                })
                .collect(),
            rows: 0,
            selection: None,
        }
    }

    /// Convert a slice of rows (the row→column adapter). Values must
    /// conform to `schema`.
    pub fn from_rows(schema: &Schema, rows: &[crate::row::Row]) -> Result<Self> {
        let mut batch = ColumnBatch::for_schema(schema);
        for row in rows {
            batch.push_row(row)?;
        }
        Ok(batch)
    }

    /// Number of live rows (selection-aware).
    #[inline]
    pub fn len(&self) -> usize {
        match &self.selection {
            Some(sel) => sel.len(),
            None => self.rows,
        }
    }

    /// `true` when no rows are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of physical rows (ignoring the selection vector).
    #[inline]
    pub fn physical_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The selection vector, if any.
    #[inline]
    pub fn selection(&self) -> Option<&[u32]> {
        self.selection.as_deref()
    }

    /// Install a selection vector (physical row indices, in emission
    /// order; entries must not repeat if the batch will be consumed by
    /// [`ColumnBatch::into_rows`]). Replaces any previous selection.
    pub fn set_selection(&mut self, selection: Vec<u32>) {
        debug_assert!(selection.iter().all(|&i| (i as usize) < self.rows));
        self.selection = Some(selection);
    }

    /// Column vector by ordinal.
    #[inline]
    pub fn column(&self, idx: usize) -> &ColumnVector {
        &self.columns[idx]
    }

    /// Column vector by ordinal, with a bounds-checked error.
    pub fn column_checked(&self, idx: usize) -> Result<&ColumnVector> {
        self.columns
            .get(idx)
            .ok_or_else(|| Error::exec(format!("column {idx} out of range ({})", self.width())))
    }

    /// All column vectors.
    #[inline]
    pub fn columns(&self) -> &[ColumnVector] {
        &self.columns
    }

    /// Mutable access to the column vectors, for gather-style writers that
    /// assemble output rows column-by-column from several sources (the
    /// columnar hash-join probe). Callers must append the same number of
    /// slots to every column and then declare them with
    /// [`ColumnBatch::commit_rows`]; selection must be unset.
    #[inline]
    pub fn columns_mut(&mut self) -> &mut [ColumnVector] {
        debug_assert!(self.selection.is_none(), "gather writes under a selection vector");
        &mut self.columns
    }

    /// Declare `n` rows appended through [`ColumnBatch::columns_mut`].
    #[inline]
    pub fn commit_rows(&mut self, n: usize) {
        self.rows += n;
        debug_assert!(self.columns.iter().all(|c| c.len() == self.rows));
    }

    /// Iterate the live physical row indices in emission order.
    pub fn live_rows(&self) -> impl Iterator<Item = usize> + '_ {
        let sel = self.selection.as_deref();
        (0..match sel {
            Some(s) => s.len(),
            None => self.rows,
        })
            .map(move |i| match sel {
                Some(s) => s[i] as usize,
                None => i,
            })
    }

    /// Drop all rows (and the selection), keeping capacity.
    pub fn clear(&mut self) {
        for c in &mut self.columns {
            c.clear();
        }
        self.rows = 0;
        self.selection = None;
    }

    /// Drop the first `n` physical rows, shifting the rest down
    /// (selection must be unset — this is the cursor-buffer compaction
    /// primitive).
    pub fn drop_prefix(&mut self, n: usize) {
        debug_assert!(self.selection.is_none(), "prefix drop under a selection vector");
        debug_assert!(n <= self.rows);
        for c in &mut self.columns {
            c.values.drop_prefix(n);
            drop(c.nulls.drain(..n));
        }
        self.rows -= n;
    }

    /// Truncate to the first `n` physical rows (selection must be unset —
    /// this is the scan-side "undo the last append" primitive).
    pub fn truncate_rows(&mut self, n: usize) {
        debug_assert!(self.selection.is_none(), "truncate under a selection vector");
        for c in &mut self.columns {
            c.truncate(n);
        }
        self.rows = self.rows.min(n);
    }

    /// Append one row (selection must be unset).
    pub fn push_row(&mut self, row: &crate::row::Row) -> Result<()> {
        debug_assert!(self.selection.is_none(), "push under a selection vector");
        if row.len() != self.columns.len() {
            return Err(Error::exec(format!(
                "row of {} values pushed into a {}-column batch",
                row.len(),
                self.columns.len()
            )));
        }
        for (c, v) in self.columns.iter_mut().zip(row.values()) {
            c.push_value(v)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Append one owned row; string bytes copy into the column arena and
    /// the row's buffers are dropped (no fresh allocation either way).
    pub fn push_owned_row(&mut self, row: Row) -> Result<()> {
        debug_assert!(self.selection.is_none(), "push under a selection vector");
        if row.len() != self.columns.len() {
            return Err(Error::exec(format!(
                "row of {} values pushed into a {}-column batch",
                row.len(),
                self.columns.len()
            )));
        }
        for (c, v) in self.columns.iter_mut().zip(row.into_values()) {
            match v {
                Value::Null => c.push_null(),
                Value::Int(x) => c.push_int(x)?,
                Value::Float(x) => c.push_float(x)?,
                Value::Str(s) => c.push_str(s)?,
            }
        }
        self.rows += 1;
        Ok(())
    }

    /// Decode one encoded tuple of `schema` straight into the column
    /// vectors — no intermediate `Row` or `Vec<Value>` is materialized.
    /// Validation is as strict as [`crate::row::Row::decode`] (truncated
    /// or trailing bytes error); on error the batch state is unspecified
    /// and the query aborts. Text fields copy into the column arena; use
    /// [`ColumnBatch::push_tuple_backed`] for zero-copy views.
    pub fn push_tuple(&mut self, schema: &Schema, bytes: &[u8]) -> Result<()> {
        self.push_tuple_backed(schema, bytes, None)
    }

    /// [`ColumnBatch::push_tuple`] with a backing buffer: when `backing`
    /// names the shared buffer `bytes` slices into (a pinned page run),
    /// text fields decode as zero-copy views pinning that buffer — see
    /// the module docs for the view rules.
    pub fn push_tuple_backed(
        &mut self,
        schema: &Schema,
        bytes: &[u8],
        backing: Option<&SharedBytes>,
    ) -> Result<()> {
        debug_assert!(self.selection.is_none(), "push under a selection vector");
        debug_assert_eq!(schema.len(), self.columns.len());
        let (bitmap, mut rest) = codec_split_bitmap(schema, bytes)?;
        for (i, c) in schema.columns().iter().enumerate() {
            if codec_is_null(bitmap, i) {
                self.columns[i].push_null();
            } else {
                self.columns[i].push_decoded(c.ty, &mut rest, backing)?;
            }
        }
        if !rest.is_empty() {
            return Err(Error::corrupt("trailing bytes after tuple"));
        }
        self.rows += 1;
        Ok(())
    }

    /// Materialize the live row at `selection[live_idx]` (string bytes
    /// copy out).
    pub fn row(&self, live_idx: usize) -> crate::row::Row {
        let phys = match &self.selection {
            Some(sel) => sel[live_idx] as usize,
            None => live_idx,
        };
        crate::row::Row::new(self.columns.iter().map(|c| c.value(phys)).collect())
    }

    /// Materialize the *physical* row at `idx` for cursor-style
    /// consumption. String bytes copy out of their span (the batch stays
    /// intact, but callers should treat the slot as consumed).
    pub fn take_row(&mut self, idx: usize) -> crate::row::Row {
        crate::row::Row::new(self.columns.iter().map(|c| c.value(idx)).collect())
    }

    /// Materialize physical rows `[a, b)` (string bytes copy out).
    /// Selection must be unset (dense cursor buffers only).
    pub fn take_rows_range(&mut self, a: usize, b: usize) -> Vec<crate::row::Row> {
        debug_assert!(self.selection.is_none(), "range take under a selection vector");
        (a..b).map(|i| self.take_row(i)).collect()
    }

    /// Split physical rows `[a, b)` into a new batch. Fixed-width
    /// payloads copy (one `memcpy` per column); text spans share their
    /// backing buffers or copy arena bytes — the source range stays
    /// intact but should be treated as consumed. The source keeps its
    /// physical rows — and, crucially, its vector capacity, so a fill
    /// buffer that extracts morsels and then clears never reallocates in
    /// steady state. Selection must be unset.
    pub fn extract_range(&mut self, a: usize, b: usize) -> ColumnBatch {
        debug_assert!(self.selection.is_none(), "range extract under a selection vector");
        debug_assert!(a <= b && b <= self.rows);
        let mut out = ColumnBatch::like(self);
        for (dst, src) in out.columns.iter_mut().zip(&mut self.columns) {
            dst.extend_taken_range(src, a, b);
        }
        out.rows = b - a;
        out
    }

    /// Move-append every physical row of `other` (which must be dense and
    /// share this batch's column typing). Fixed-width payloads copy with
    /// one `memcpy` per column; text views hand their backing buffers
    /// over — no per-row `String` clone. This is the bulk-ingest
    /// primitive of the columnar hash-join build side.
    pub fn append_dense(&mut self, mut other: ColumnBatch) {
        debug_assert!(self.selection.is_none(), "append under a selection vector");
        debug_assert!(other.selection.is_none(), "dense append of a selected batch");
        debug_assert_eq!(self.columns.len(), other.columns.len());
        let n = other.rows;
        for (dst, src) in self.columns.iter_mut().zip(&mut other.columns) {
            dst.extend_taken_range(src, 0, n);
        }
        self.rows += n;
    }

    /// Append the physical row `phys` of `src` (single-visit consumption;
    /// typing must match; text shares or copies — see
    /// [`ColumnVector::push_taken`]). The per-row companion of
    /// [`ColumnBatch::append_dense`] for batches that carry a selection
    /// vector or need null-key skips.
    pub fn append_taken_row(&mut self, src: &mut ColumnBatch, phys: usize) {
        debug_assert!(self.selection.is_none(), "append under a selection vector");
        debug_assert_eq!(self.columns.len(), src.columns.len());
        for (dst, s) in self.columns.iter_mut().zip(&mut src.columns) {
            dst.push_taken(s, phys);
        }
        self.rows += 1;
    }

    /// Consume into rows (the column→row adapter), honoring the selection
    /// vector. This is the row-materialization boundary: string bytes
    /// copy out of their spans into owned `String`s.
    pub fn into_rows(mut self) -> Vec<crate::row::Row> {
        match self.selection.take() {
            None => (0..self.rows).map(|i| self.take_row(i)).collect(),
            Some(sel) => sel.into_iter().map(|i| self.take_row(i as usize)).collect(),
        }
    }

    /// Column pruning: keep `cols` (by ordinal, distinct), in that order.
    /// Columns move — no row is touched and the selection vector survives.
    pub fn project(self, cols: &[usize]) -> Result<ColumnBatch> {
        let mut slots: Vec<Option<ColumnVector>> = self.columns.into_iter().map(Some).collect();
        let mut columns = Vec::with_capacity(cols.len());
        for &c in cols {
            let taken = slots
                .get_mut(c)
                .ok_or_else(|| Error::exec(format!("project column {c} out of range")))?
                .take()
                .ok_or_else(|| Error::exec(format!("project column {c} duplicated")))?;
            columns.push(taken);
        }
        Ok(ColumnBatch { columns, rows: self.rows, selection: self.selection })
    }
}

/// A FIFO buffer over a dense [`ColumnBatch`]: operators fill it
/// column-natively and drain it through whichever iterator protocol the
/// parent speaks — one row ([`ColumnBuffer::pop_row`]), a row batch
/// ([`ColumnBuffer::pop_rows`]) or a columnar morsel
/// ([`ColumnBuffer::pop_columns`]). A single buffer backs all three
/// protocols, which is what keeps them interleavable on one operator:
/// there is exactly one pending-output order.
#[derive(Debug)]
pub struct ColumnBuffer {
    batch: ColumnBatch,
    pos: usize,
}

impl ColumnBuffer {
    /// An empty buffer typed for `schema`.
    pub fn for_schema(schema: &Schema) -> Self {
        ColumnBuffer { batch: ColumnBatch::for_schema(schema), pos: 0 }
    }

    /// `true` when no rows are pending.
    #[inline]
    pub fn is_drained(&self) -> bool {
        self.pos >= self.batch.physical_rows()
    }

    /// Rows pending emission.
    #[inline]
    pub fn pending(&self) -> usize {
        self.batch.physical_rows() - self.pos
    }

    /// Drop everything (keeps capacity).
    pub fn reset(&mut self) {
        self.batch.clear();
        self.pos = 0;
    }

    /// The underlying batch, for appending fresh rows at the tail.
    ///
    /// Appending to a partially drained buffer first reclaims the
    /// consumed prefix once it dominates the pending rows (amortized
    /// O(1) per row), so a long-lived producer that refills before fully
    /// draining — Smooth Scan's morphing bursts — holds O(max pending)
    /// memory, not O(total emitted).
    #[inline]
    pub fn fill(&mut self) -> &mut ColumnBatch {
        const COMPACT_MIN: usize = 1024;
        if self.pos >= COMPACT_MIN && self.pos >= self.pending() {
            self.batch.drop_prefix(self.pos);
            self.pos = 0;
        }
        &mut self.batch
    }

    /// Reclaim capacity once fully drained.
    fn reset_if_drained(&mut self) {
        if self.is_drained() && self.batch.physical_rows() > 0 {
            self.reset();
        }
    }

    /// Emit one row (string bytes copy out).
    pub fn pop_row(&mut self) -> Option<Row> {
        if self.is_drained() {
            return None;
        }
        let row = self.batch.take_row(self.pos);
        self.pos += 1;
        self.reset_if_drained();
        Some(row)
    }

    /// Emit up to `max` rows.
    pub fn pop_rows(&mut self, max: usize) -> Vec<Row> {
        let end = (self.pos + max).min(self.batch.physical_rows());
        let rows = self.batch.take_rows_range(self.pos, end);
        self.pos = end;
        self.reset_if_drained();
        rows
    }

    /// Emit up to `max` rows as a columnar morsel. The buffer keeps its
    /// vector capacity across morsels (see [`ColumnBatch::extract_range`]).
    pub fn pop_columns(&mut self, max: usize) -> Option<ColumnBatch> {
        if self.is_drained() {
            return None;
        }
        let end = (self.pos + max).min(self.batch.physical_rows());
        let out = self.batch.extract_range(self.pos, end);
        self.pos = end;
        self.reset_if_drained();
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int64),
            Column::nullable("s", DataType::Text),
            Column::nullable("f", DataType::Float64),
        ])
        .unwrap()
    }

    fn rows() -> Vec<Row> {
        vec![
            Row::new(vec![Value::Int(1), Value::str("x"), Value::Float(0.5)]),
            Row::new(vec![Value::Int(2), Value::Null, Value::Null]),
            Row::new(vec![Value::Int(3), Value::str("z"), Value::Float(-1.0)]),
        ]
    }

    #[test]
    fn row_column_roundtrip() {
        let s = schema();
        let batch = ColumnBatch::from_rows(&s, &rows()).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.width(), 3);
        assert_eq!(batch.column(0).int(0).unwrap(), 1);
        assert!(batch.column(1).is_null(1));
        assert_eq!(batch.column(2).float(2).unwrap(), -1.0);
        assert_eq!(batch.into_rows(), rows());
    }

    #[test]
    fn push_tuple_decodes_without_rows() {
        let s = schema();
        let mut batch = ColumnBatch::for_schema(&s);
        for r in rows() {
            let bytes = r.encode(&s).unwrap();
            batch.push_tuple(&s, &bytes).unwrap();
        }
        assert_eq!(batch.into_rows(), rows());
        // corrupt tuples error with Row::decode strictness
        let mut batch = ColumnBatch::for_schema(&s);
        let bytes = rows()[0].encode(&s).unwrap();
        assert!(batch.push_tuple(&s, &bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        let mut batch = ColumnBatch::for_schema(&s);
        assert!(batch.push_tuple(&s, &extra).is_err());
    }

    #[test]
    fn selection_vector_filters_emission() {
        let s = schema();
        let mut batch = ColumnBatch::from_rows(&s, &rows()).unwrap();
        batch.set_selection(vec![2, 0]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.live_rows().collect::<Vec<_>>(), vec![2, 0]);
        assert_eq!(batch.row(0), rows()[2]);
        let out = batch.into_rows();
        assert_eq!(out, vec![rows()[2].clone(), rows()[0].clone()]);
    }

    #[test]
    fn extract_range_moves_strings_and_keeps_source_shape() {
        let s = schema();
        let mut batch = ColumnBatch::from_rows(&s, &rows()).unwrap();
        let front = batch.extract_range(0, 2);
        assert_eq!(front.len(), 2);
        assert_eq!(front.into_rows(), rows()[..2].to_vec());
        assert_eq!(batch.physical_rows(), 3, "source keeps its physical rows");
        let mut batch = ColumnBatch::from_rows(&s, &rows()).unwrap();
        let all = batch.extract_range(0, 3);
        assert_eq!(all.len(), 3);
        assert_eq!(all.into_rows(), rows());
    }

    #[test]
    fn project_prunes_and_reorders_columns() {
        let s = schema();
        let mut batch = ColumnBatch::from_rows(&s, &rows()).unwrap();
        batch.set_selection(vec![0, 2]);
        let projected = batch.project(&[2, 0]).unwrap();
        assert_eq!(projected.width(), 2);
        let out = projected.into_rows();
        assert_eq!(out[0], Row::new(vec![Value::Float(0.5), Value::Int(1)]));
        assert_eq!(out[1], Row::new(vec![Value::Float(-1.0), Value::Int(3)]));
        let batch = ColumnBatch::from_rows(&s, &rows()).unwrap();
        assert!(batch.clone().project(&[9]).is_err());
        assert!(batch.project(&[0, 0]).is_err());
    }

    #[test]
    fn typed_pushes_reject_mismatches() {
        let mut v = ColumnVector::for_type(DataType::Int64);
        assert!(v.push_int(1).is_ok());
        assert!(v.push_float(1.0).is_err());
        assert!(v.push_str("x").is_err());
        v.push_null();
        assert!(v.is_null(1));
        assert_eq!(v.value(1), Value::Null);
        assert_eq!(v.value(0), Value::Int(1));
        // float accessor widens ints
        assert_eq!(v.float(0).unwrap(), 1.0);
        assert!(v.int(1).is_err(), "NULL int access errors");
    }

    #[test]
    fn cmp_value_matches_total_cmp() {
        let s = schema();
        let batch = ColumnBatch::from_rows(&s, &rows()).unwrap();
        for (col, idx, v) in [
            (0usize, 0usize, Value::Int(2)),
            (1, 0, Value::str("y")),
            (2, 0, Value::Float(0.25)),
            (1, 1, Value::str("")),
            (0, 2, Value::Float(2.5)),
        ] {
            assert_eq!(
                batch.column(col).cmp_value(idx, &v),
                batch.column(col).value(idx).total_cmp(&v),
                "col {col} idx {idx} vs {v}"
            );
        }
    }

    #[test]
    fn decode_columns_append_probes_predicate_columns() {
        let s = schema();
        let mut probe = vec![
            ColumnVector::for_type(DataType::Int64),
            ColumnVector::for_type(DataType::Float64),
        ];
        for r in rows() {
            let bytes = r.encode(&s).unwrap();
            decode_columns_append(&s, &bytes, &[0, 2], &mut probe, None).unwrap();
        }
        assert_eq!(probe[0].int(1).unwrap(), 2);
        assert!(probe[1].is_null(1));
        assert_eq!(probe[1].float(2).unwrap(), -1.0);
        // corruption past the probed columns still errors (full validation)
        let bytes = rows()[0].encode(&s).unwrap();
        let mut probe = vec![ColumnVector::for_type(DataType::Int64)];
        assert!(
            decode_columns_append(&s, &bytes[..bytes.len() - 1], &[0], &mut probe, None).is_err()
        );
        let mut extra = bytes.clone();
        extra.push(0);
        let mut probe = vec![ColumnVector::for_type(DataType::Int64)];
        assert!(decode_columns_append(&s, &extra, &[0], &mut probe, None).is_err());
    }

    #[test]
    fn column_buffer_drains_fifo_across_protocols() {
        let s = schema();
        let mut buf = ColumnBuffer::for_schema(&s);
        for r in &rows() {
            buf.fill().push_row(r).unwrap();
        }
        assert_eq!(buf.pending(), 3);
        assert_eq!(buf.pop_row().unwrap(), rows()[0]);
        let cols = buf.pop_columns(1).unwrap();
        assert_eq!(cols.into_rows(), vec![rows()[1].clone()]);
        assert_eq!(buf.pop_rows(10), vec![rows()[2].clone()]);
        assert!(buf.is_drained());
        assert!(buf.pop_row().is_none());
        assert!(buf.pop_columns(4).is_none());
        // refill after drain reuses the buffer
        buf.fill().push_row(&rows()[0]).unwrap();
        assert_eq!(buf.pop_columns(8).unwrap().into_rows(), vec![rows()[0].clone()]);
    }

    #[test]
    fn column_buffer_compacts_consumed_prefix_on_refill() {
        let s = Schema::new(vec![
            Column::new("a", DataType::Int64),
            Column::nullable("s", DataType::Text),
        ])
        .unwrap();
        let mut buf = ColumnBuffer::for_schema(&s);
        for i in 0..2000i64 {
            buf.fill().push_row(&Row::new(vec![Value::Int(i), Value::str("x")])).unwrap();
        }
        // Drain most of the buffer, leaving a live tail.
        for _ in 0..1990 {
            buf.pop_row().unwrap();
        }
        assert_eq!(buf.pending(), 10);
        // A refill with a dominant consumed prefix compacts it away …
        buf.fill().push_row(&Row::new(vec![Value::Int(9999), Value::Null])).unwrap();
        assert_eq!(buf.fill().physical_rows(), 11, "dead prefix reclaimed");
        // … and the pending rows survive in order.
        let rows: Vec<i64> =
            std::iter::from_fn(|| buf.pop_row()).map(|r| r.int(0).unwrap_or(9999)).collect();
        assert_eq!(rows, (1990..2000).chain([9999]).collect::<Vec<i64>>());
    }

    #[test]
    fn gather_and_move_primitives() {
        let s = schema();
        let src = ColumnBatch::from_rows(&s, &rows()).unwrap();
        // push_from clones (the gather primitive): source stays intact.
        let mut out = ColumnBatch::for_schema(&s);
        {
            let cols = out.columns_mut();
            for (dst, sc) in cols.iter_mut().zip(src.columns()) {
                dst.push_from(sc, 2);
                dst.push_from(sc, 0);
            }
        }
        out.commit_rows(2);
        assert_eq!(out.row(0), rows()[2]);
        assert_eq!(out.row(1), rows()[0]);
        assert_eq!(src.column(1).str(2).unwrap(), "z", "gather never moves the source");
        // push_taken is single-visit consumption; under the view layout
        // the source stays intact (text shares or copies).
        let mut taken_src = ColumnBatch::from_rows(&s, &rows()).unwrap();
        let mut taken = ColumnVector::for_type(DataType::Text);
        {
            let cols = taken_src.columns_mut();
            taken.push_taken(&mut cols[1], 0);
        }
        assert_eq!(taken.str(0).unwrap(), "x");
        assert_eq!(taken_src.column(1).str(0).unwrap(), "x", "source stays intact");
        // append_taken_row moves a whole row; append_dense a whole batch.
        let mut dst = ColumnBatch::for_schema(&s);
        let mut row_src = ColumnBatch::from_rows(&s, &rows()).unwrap();
        dst.append_taken_row(&mut row_src, 1);
        assert_eq!(dst.physical_rows(), 1);
        assert_eq!(dst.row(0), rows()[1]);
        let mut dense_dst = ColumnBatch::for_schema(&s);
        dense_dst.append_dense(ColumnBatch::from_rows(&s, &rows()).unwrap());
        dense_dst.append_dense(ColumnBatch::from_rows(&s, &rows()[..1]).unwrap());
        assert_eq!(dense_dst.physical_rows(), 4);
        assert_eq!(dense_dst.row(3), rows()[0]);
    }

    #[test]
    fn truncate_undoes_appends() {
        let s = schema();
        let mut batch = ColumnBatch::from_rows(&s, &rows()).unwrap();
        batch.truncate_rows(1);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.into_rows(), rows()[..1].to_vec());
    }

    #[test]
    fn text_views_pin_backing_without_copying() {
        let mut col = TextColumn::default();
        let backing: SharedBytes = Arc::from(&b"hello world"[..]);
        let s = std::str::from_utf8(&backing[0..5]).unwrap();
        col.push_view(&backing, s);
        let tail = std::str::from_utf8(&backing[6..11]).unwrap();
        col.push_view(&backing, tail);
        assert_eq!(col.get(0), "hello");
        assert_eq!(col.get(1), "world");
        assert_eq!(col.bufs.len(), 1, "consecutive views dedup their buffer");
        assert!(col.arena.is_empty(), "views copy no bytes");
        assert_eq!(Arc::strong_count(&backing), 2, "column pins the buffer");
        col.clear();
        assert_eq!(Arc::strong_count(&backing), 1, "clear releases the pin");
    }

    #[test]
    fn text_view_degrades_to_owned_outside_backing() {
        let mut col = TextColumn::default();
        let backing: SharedBytes = Arc::from(&b"abc"[..]);
        col.push_view(&backing, "elsewhere");
        assert_eq!(col.get(0), "elsewhere");
        assert!(col.bufs.is_empty(), "foreign slice falls back to the arena");
        assert_eq!(col.arena, b"elsewhere");
    }

    #[test]
    fn text_equality_is_representation_independent() {
        let backing: SharedBytes = Arc::from(&b"xyz"[..]);
        let mut viewed = TextColumn::default();
        viewed.push_view(&backing, std::str::from_utf8(&backing[0..3]).unwrap());
        let mut owned = TextColumn::default();
        owned.push_owned("xyz");
        assert_eq!(viewed, owned);
        owned.push_owned("more");
        assert_ne!(viewed, owned);
    }

    #[test]
    fn text_drop_prefix_recompacts_and_releases() {
        let backing: SharedBytes = Arc::from(&b"aabb"[..]);
        let mut col = TextColumn::default();
        col.push_view(&backing, std::str::from_utf8(&backing[0..2]).unwrap());
        col.push_owned("kept");
        col.drop_prefix(1);
        assert_eq!(col.len(), 1);
        assert_eq!(col.get(0), "kept");
        assert!(col.bufs.is_empty(), "dropping the only view releases its pin");
        assert_eq!(col.arena, b"kept", "arena recompacts to the survivors");
    }

    #[test]
    fn push_tuple_backed_decodes_views_byte_identical() {
        let s = schema();
        force_text_views(true);
        let mut owned = ColumnBatch::for_schema(&s);
        let mut viewed = ColumnBatch::for_schema(&s);
        for r in rows() {
            let bytes = r.encode(&s).unwrap();
            let backing: SharedBytes = Arc::from(bytes.as_slice());
            owned.push_tuple(&s, &bytes).unwrap();
            viewed.push_tuple_backed(&s, &backing, Some(&backing)).unwrap();
        }
        assert_eq!(owned, viewed, "views are logically identical to owned decode");
        assert_eq!(viewed.into_rows(), rows());
    }
}
