//! Row batches: the unit of the vectorized iterator protocol.
//!
//! A [`RowBatch`] is an ordered run of rows handed across one operator
//! boundary in a single virtual call. Batching amortizes the Volcano tax —
//! one dynamic dispatch, one `Result`/`Option` round trip and two atomic
//! clock charges per *tuple* become per *batch* (or per page) — while
//! keeping the morsel-at-a-time granularity the Smooth Scan switch logic
//! reasons about. Batches here are row-major (`Vec<Row>`); the
//! column-major counterpart is [`crate::ColumnBatch`], which the default
//! pipeline driver speaks.

use crate::error::Result;
use crate::row::Row;

/// Default number of rows per batch request. Large enough to amortize
/// per-call overhead, small enough to stay cache-resident and to keep
/// morphing decisions fine-grained (a heap page holds ~90 tuples, so this
/// is ~11 pages worth of output).
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// An ordered run of rows produced by one `next_batch` call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowBatch {
    rows: Vec<Row>,
}

impl RowBatch {
    /// An empty batch.
    #[inline]
    pub fn new() -> Self {
        RowBatch { rows: Vec::new() }
    }

    /// An empty batch with room for `cap` rows.
    #[inline]
    pub fn with_capacity(cap: usize) -> Self {
        RowBatch { rows: Vec::with_capacity(cap) }
    }

    /// Wrap an existing row vector (no copy).
    #[inline]
    pub fn from_rows(rows: Vec<Row>) -> Self {
        RowBatch { rows }
    }

    /// Number of rows in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the batch holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append one row.
    #[inline]
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Borrow the rows.
    #[inline]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Consume into the underlying vector (no copy).
    #[inline]
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Keep only rows for which `keep` returns `Ok(true)`, preserving
    /// order; the first error aborts and propagates.
    pub fn try_retain(&mut self, mut keep: impl FnMut(&Row) -> Result<bool>) -> Result<()> {
        let mut out = 0usize;
        for i in 0..self.rows.len() {
            if keep(&self.rows[i])? {
                if out != i {
                    self.rows.swap(out, i);
                }
                out += 1;
            }
        }
        self.rows.truncate(out);
        Ok(())
    }

    /// Map every row in place (projection).
    pub fn try_map(&mut self, mut f: impl FnMut(&Row) -> Result<Row>) -> Result<()> {
        for row in &mut self.rows {
            *row = f(row)?;
        }
        Ok(())
    }
}

impl From<Vec<Row>> for RowBatch {
    fn from(rows: Vec<Row>) -> Self {
        RowBatch { rows }
    }
}

impl IntoIterator for RowBatch {
    type Item = Row;
    type IntoIter = std::vec::IntoIter<Row>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.into_iter()
    }
}

impl<'a> IntoIterator for &'a RowBatch {
    type Item = &'a Row;
    type IntoIter = std::slice::Iter<'a, Row>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use crate::value::Value;

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i)])
    }

    #[test]
    fn push_len_and_into_rows() {
        let mut b = RowBatch::with_capacity(4);
        assert!(b.is_empty());
        b.push(row(1));
        b.push(row(2));
        assert_eq!(b.len(), 2);
        assert_eq!(b.rows()[1], row(2));
        let v = b.into_rows();
        assert_eq!(v, vec![row(1), row(2)]);
    }

    #[test]
    fn try_retain_keeps_order_and_propagates_errors() {
        let mut b = RowBatch::from_rows((0..6).map(row).collect());
        b.try_retain(|r| Ok(r.int(0)? % 2 == 0)).unwrap();
        assert_eq!(b.into_rows(), vec![row(0), row(2), row(4)]);
        let mut b = RowBatch::from_rows((0..3).map(row).collect());
        assert!(b.try_retain(|_| Err(Error::exec("boom"))).is_err());
    }

    #[test]
    fn try_map_projects_in_place() {
        let mut b = RowBatch::from_rows((0..3).map(row).collect());
        b.try_map(|r| Ok(row(r.int(0)? * 10))).unwrap();
        assert_eq!(b.into_rows(), vec![row(0), row(10), row(20)]);
    }

    #[test]
    fn iteration_both_ways() {
        let b = RowBatch::from_rows((0..3).map(row).collect());
        let borrowed: Vec<i64> = (&b).into_iter().map(|r| r.int(0).unwrap()).collect();
        assert_eq!(borrowed, vec![0, 1, 2]);
        let owned: Vec<Row> = b.into_iter().collect();
        assert_eq!(owned.len(), 3);
    }
}
