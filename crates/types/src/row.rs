//! In-memory rows and the on-page tuple codec.
//!
//! The wire format is a null bitmap followed by the field payloads in schema
//! order. Fixed-width fields (`Int32`, `Int64`, `Float64`, `Date`) serialize
//! little-endian; `Text` carries a 2-byte length prefix. NULL fields occupy
//! no payload bytes. The format is self-delimiting given the schema, which
//! is all a slotted heap page needs.

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::{DataType, Value};

/// One tuple's worth of values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Wrap a vector of values.
    #[inline]
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Number of values.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` for the zero-column row.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow all values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the underlying vector.
    #[inline]
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Value at position `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Integer at position `idx` (errors if not an int).
    #[inline]
    pub fn int(&self, idx: usize) -> Result<i64> {
        self.values[idx].as_int()
    }

    /// Float at position `idx` (ints widen).
    #[inline]
    pub fn float(&self, idx: usize) -> Result<f64> {
        self.values[idx].as_float()
    }

    /// String at position `idx` (errors if not text).
    #[inline]
    pub fn str(&self, idx: usize) -> Result<&str> {
        self.values[idx].as_str()
    }

    /// Concatenate two rows (join output).
    pub fn concat(&self, right: &Row) -> Row {
        let mut values = Vec::with_capacity(self.values.len() + right.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&right.values);
        Row { values }
    }

    /// Serialized size in bytes under `schema`, without encoding.
    pub fn encoded_len(&self, schema: &Schema) -> usize {
        let bitmap = schema.len().div_ceil(8);
        let payload: usize = self
            .values
            .iter()
            .zip(schema.columns())
            .map(|(v, c)| match (v, c.ty) {
                (Value::Null, _) => 0,
                (_, ty) => match ty.fixed_width() {
                    Some(w) => w,
                    None => 2 + v.as_str().map(str::len).unwrap_or(0),
                },
            })
            .sum();
        bitmap + payload
    }

    /// Encode this row under `schema`, appending to `out`.
    ///
    /// The row must validate against the schema; violations surface as
    /// [`Error::Schema`].
    pub fn encode_into(&self, schema: &Schema, out: &mut Vec<u8>) -> Result<()> {
        schema.validate(self)?;
        let bitmap_len = schema.len().div_ceil(8);
        let bitmap_start = out.len();
        out.resize(bitmap_start + bitmap_len, 0u8);
        for (i, (v, c)) in self.values.iter().zip(schema.columns()).enumerate() {
            match v {
                Value::Null => {
                    out[bitmap_start + i / 8] |= 1 << (i % 8);
                }
                Value::Int(x) => match c.ty {
                    DataType::Int32 | DataType::Date => {
                        out.extend_from_slice(&(*x as i32).to_le_bytes())
                    }
                    DataType::Int64 => out.extend_from_slice(&x.to_le_bytes()),
                    _ => unreachable!("validated"),
                },
                Value::Float(x) => out.extend_from_slice(&x.to_le_bytes()),
                Value::Str(s) => {
                    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
        Ok(())
    }

    /// Encode into a fresh buffer.
    pub fn encode(&self, schema: &Schema) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(self.encoded_len(schema));
        self.encode_into(schema, &mut out)?;
        Ok(out)
    }

    /// Decode a row of `schema` from `bytes`.
    pub fn decode(schema: &Schema, bytes: &[u8]) -> Result<Row> {
        let bitmap_len = schema.len().div_ceil(8);
        if bytes.len() < bitmap_len {
            return Err(Error::corrupt("tuple shorter than its null bitmap"));
        }
        let (bitmap, mut rest) = bytes.split_at(bitmap_len);
        let mut values = Vec::with_capacity(schema.len());
        for (i, c) in schema.columns().iter().enumerate() {
            let is_null = bitmap[i / 8] & (1 << (i % 8)) != 0;
            if is_null {
                values.push(Value::Null);
                continue;
            }
            let take = |rest: &mut &[u8], n: usize| -> Result<Vec<u8>> {
                if rest.len() < n {
                    return Err(Error::corrupt("tuple truncated"));
                }
                let (head, tail) = rest.split_at(n);
                *rest = tail;
                Ok(head.to_vec())
            };
            let v = match c.ty {
                DataType::Int32 | DataType::Date => {
                    let b = take(&mut rest, 4)?;
                    Value::Int(i32::from_le_bytes(b.try_into().unwrap()) as i64)
                }
                DataType::Int64 => {
                    let b = take(&mut rest, 8)?;
                    Value::Int(i64::from_le_bytes(b.try_into().unwrap()))
                }
                DataType::Float64 => {
                    let b = take(&mut rest, 8)?;
                    Value::Float(f64::from_le_bytes(b.try_into().unwrap()))
                }
                DataType::Text => {
                    let b = take(&mut rest, 2)?;
                    let len = u16::from_le_bytes(b.try_into().unwrap()) as usize;
                    let s = take(&mut rest, len)?;
                    Value::Str(
                        String::from_utf8(s).map_err(|_| Error::corrupt("non-utf8 text field"))?,
                    )
                }
            };
            values.push(v);
        }
        if !rest.is_empty() {
            return Err(Error::corrupt("trailing bytes after tuple"));
        }
        Ok(Row { values })
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int32),
            Column::new("b", DataType::Int64),
            Column::nullable("c", DataType::Text),
            Column::nullable("d", DataType::Float64),
            Column::new("e", DataType::Date),
        ])
        .unwrap()
    }

    fn row() -> Row {
        Row::new(vec![
            Value::Int(-5),
            Value::Int(1 << 40),
            Value::str("hello"),
            Value::Float(2.5),
            Value::Int(19000),
        ])
    }

    #[test]
    fn roundtrip_plain() {
        let s = schema();
        let r = row();
        let bytes = r.encode(&s).unwrap();
        assert_eq!(bytes.len(), r.encoded_len(&s));
        assert_eq!(Row::decode(&s, &bytes).unwrap(), r);
    }

    #[test]
    fn roundtrip_with_nulls() {
        let s = schema();
        let r =
            Row::new(vec![Value::Int(1), Value::Int(2), Value::Null, Value::Null, Value::Int(0)]);
        let bytes = r.encode(&s).unwrap();
        assert_eq!(Row::decode(&s, &bytes).unwrap(), r);
        // nulls cost zero payload bytes: bitmap(1) + 4 + 8 + 4
        assert_eq!(bytes.len(), 17);
    }

    #[test]
    fn encode_rejects_schema_violation() {
        let s = schema();
        let bad = Row::new(vec![
            Value::Int(i64::MAX), // does not fit Int32
            Value::Int(0),
            Value::Null,
            Value::Null,
            Value::Int(0),
        ]);
        assert!(bad.encode(&s).is_err());
    }

    #[test]
    fn decode_rejects_truncation_and_trailing() {
        let s = schema();
        let bytes = row().encode(&s).unwrap();
        assert!(Row::decode(&s, &bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(Row::decode(&s, &extra).is_err());
        assert!(Row::decode(&s, &[]).is_err());
    }

    #[test]
    fn concat_joins_values() {
        let r = Row::new(vec![Value::Int(1)]).concat(&Row::new(vec![Value::Int(2)]));
        assert_eq!(r.values(), &[Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn accessors() {
        let r = row();
        assert_eq!(r.int(0).unwrap(), -5);
        assert_eq!(r.str(2).unwrap(), "hello");
        assert_eq!(r.float(3).unwrap(), 2.5);
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
    }
}
