//! In-memory rows and the on-page tuple codec.
//!
//! The wire format is a null bitmap followed by the field payloads in schema
//! order. Fixed-width fields (`Int32`, `Int64`, `Float64`, `Date`) serialize
//! little-endian; `Text` carries a 2-byte length prefix. NULL fields occupy
//! no payload bytes. The format is self-delimiting given the schema, which
//! is all a slotted heap page needs.

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::{DataType, Value};

/// One tuple's worth of values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Wrap a vector of values.
    #[inline]
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Number of values.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` for the zero-column row.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow all values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the underlying vector.
    #[inline]
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Value at position `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Integer at position `idx` (errors if not an int).
    #[inline]
    pub fn int(&self, idx: usize) -> Result<i64> {
        self.values[idx].as_int()
    }

    /// Float at position `idx` (ints widen).
    #[inline]
    pub fn float(&self, idx: usize) -> Result<f64> {
        self.values[idx].as_float()
    }

    /// String at position `idx` (errors if not text).
    #[inline]
    pub fn str(&self, idx: usize) -> Result<&str> {
        self.values[idx].as_str()
    }

    /// Concatenate two rows (join output).
    pub fn concat(&self, right: &Row) -> Row {
        let mut values = Vec::with_capacity(self.values.len() + right.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&right.values);
        Row { values }
    }

    /// Serialized size in bytes under `schema`, without encoding.
    pub fn encoded_len(&self, schema: &Schema) -> usize {
        let bitmap = schema.len().div_ceil(8);
        let payload: usize = self
            .values
            .iter()
            .zip(schema.columns())
            .map(|(v, c)| match (v, c.ty) {
                (Value::Null, _) => 0,
                (_, ty) => match ty.fixed_width() {
                    Some(w) => w,
                    None => 2 + v.as_str().map(str::len).unwrap_or(0),
                },
            })
            .sum();
        bitmap + payload
    }

    /// Encode this row under `schema`, appending to `out`.
    ///
    /// The row must validate against the schema; violations surface as
    /// [`Error::Schema`].
    pub fn encode_into(&self, schema: &Schema, out: &mut Vec<u8>) -> Result<()> {
        schema.validate(self)?;
        let bitmap_len = schema.len().div_ceil(8);
        let bitmap_start = out.len();
        out.resize(bitmap_start + bitmap_len, 0u8);
        for (i, (v, c)) in self.values.iter().zip(schema.columns()).enumerate() {
            match v {
                Value::Null => {
                    out[bitmap_start + i / 8] |= 1 << (i % 8);
                }
                Value::Int(x) => match c.ty {
                    DataType::Int32 | DataType::Date => {
                        out.extend_from_slice(&(*x as i32).to_le_bytes())
                    }
                    DataType::Int64 => out.extend_from_slice(&x.to_le_bytes()),
                    _ => unreachable!("validated"),
                },
                Value::Float(x) => out.extend_from_slice(&x.to_le_bytes()),
                Value::Str(s) => {
                    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
        Ok(())
    }

    /// Encode into a fresh buffer.
    pub fn encode(&self, schema: &Schema) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(self.encoded_len(schema));
        self.encode_into(schema, &mut out)?;
        Ok(out)
    }

    /// Decode a row of `schema` from `bytes`.
    pub fn decode(schema: &Schema, bytes: &[u8]) -> Result<Row> {
        let (bitmap, mut rest) = split_bitmap(schema, bytes)?;
        let mut values = Vec::with_capacity(schema.len());
        for (i, c) in schema.columns().iter().enumerate() {
            if is_null(bitmap, i) {
                values.push(Value::Null);
            } else {
                values.push(decode_field(&mut rest, c.ty)?);
            }
        }
        if !rest.is_empty() {
            return Err(Error::corrupt("trailing bytes after tuple"));
        }
        Ok(Row { values })
    }

    /// Decode only the columns listed in `cols` (ascending ordinals) into
    /// `scratch[col]`, skipping the payload bytes of every other field
    /// without materializing them. `scratch` must be `schema.len()` long;
    /// slots not listed in `cols` are left untouched.
    ///
    /// This is the scan-side predicate pushdown primitive: a batched scan
    /// probes just the predicate columns of each on-page tuple and pays the
    /// full [`Row::decode`] only for qualifying tuples. The whole tuple is
    /// still structurally validated — every field is walked and trailing
    /// bytes are rejected — so a corrupt tuple errors here exactly as it
    /// would under [`Row::decode`], keeping the batch and row protocols
    /// behaviorally identical on bad pages.
    pub fn decode_columns_into(
        schema: &Schema,
        bytes: &[u8],
        cols: &[usize],
        scratch: &mut [Value],
    ) -> Result<()> {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "cols must be ascending");
        debug_assert_eq!(scratch.len(), schema.len());
        let (bitmap, mut rest) = split_bitmap(schema, bytes)?;
        let mut wanted = cols.iter().copied().peekable();
        // Unreferenced fixed-width fields accumulate into one deferred
        // skip, flushed only when an exact position is needed.
        let mut pending_skip = 0usize;
        for (i, c) in schema.columns().iter().enumerate() {
            let want = wanted.peek() == Some(&i);
            if want {
                wanted.next();
            }
            if is_null(bitmap, i) {
                if want {
                    scratch[i] = Value::Null;
                }
                continue;
            }
            if !want {
                if let Some(w) = c.ty.fixed_width() {
                    pending_skip += w;
                    continue;
                }
            }
            if pending_skip > 0 {
                take(&mut rest, pending_skip)?;
                pending_skip = 0;
            }
            if want {
                scratch[i] = decode_field(&mut rest, c.ty)?;
            } else {
                skip_field(&mut rest, c.ty)?;
            }
        }
        if pending_skip > 0 {
            take(&mut rest, pending_skip)?;
        }
        if !rest.is_empty() {
            return Err(Error::corrupt("trailing bytes after tuple"));
        }
        Ok(())
    }
}

/// Split `bytes` into the null bitmap and the payload under `schema`.
/// Shared with the columnar decode path in [`crate::columns`].
pub(crate) fn codec_split_bitmap<'a>(
    schema: &Schema,
    bytes: &'a [u8],
) -> Result<(&'a [u8], &'a [u8])> {
    split_bitmap(schema, bytes)
}

/// Whether field `i` is NULL under `bitmap` (columnar decode path).
#[inline]
pub(crate) fn codec_is_null(bitmap: &[u8], i: usize) -> bool {
    is_null(bitmap, i)
}

/// Advance `rest` past `n` bytes (columnar decode path).
#[inline]
pub(crate) fn codec_take<'a>(rest: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    take(rest, n)
}

/// Skip one non-null field of type `ty` (columnar decode path).
#[inline]
pub(crate) fn codec_skip_field(rest: &mut &[u8], ty: DataType) -> Result<()> {
    skip_field(rest, ty)
}

/// Split `bytes` into the null bitmap and the payload under `schema`.
fn split_bitmap<'a>(schema: &Schema, bytes: &'a [u8]) -> Result<(&'a [u8], &'a [u8])> {
    let bitmap_len = schema.len().div_ceil(8);
    if bytes.len() < bitmap_len {
        return Err(Error::corrupt("tuple shorter than its null bitmap"));
    }
    Ok(bytes.split_at(bitmap_len))
}

#[inline]
fn is_null(bitmap: &[u8], i: usize) -> bool {
    bitmap[i / 8] & (1 << (i % 8)) != 0
}

/// Advance `rest` past `n` bytes, returning them as a borrowed slice.
#[inline]
fn take<'a>(rest: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if rest.len() < n {
        return Err(Error::corrupt("tuple truncated"));
    }
    let (head, tail) = rest.split_at(n);
    *rest = tail;
    Ok(head)
}

/// Decode one non-null field of type `ty` from the front of `rest`.
#[inline]
fn decode_field(rest: &mut &[u8], ty: DataType) -> Result<Value> {
    Ok(match ty {
        DataType::Int32 | DataType::Date => {
            let b = take(rest, 4)?;
            Value::Int(i32::from_le_bytes(b.try_into().unwrap()) as i64)
        }
        DataType::Int64 => {
            let b = take(rest, 8)?;
            Value::Int(i64::from_le_bytes(b.try_into().unwrap()))
        }
        DataType::Float64 => {
            let b = take(rest, 8)?;
            Value::Float(f64::from_le_bytes(b.try_into().unwrap()))
        }
        DataType::Text => {
            let b = take(rest, 2)?;
            let len = u16::from_le_bytes(b.try_into().unwrap()) as usize;
            let s = take(rest, len)?;
            Value::Str(
                std::str::from_utf8(s)
                    .map_err(|_| Error::corrupt("non-utf8 text field"))?
                    .to_owned(),
            )
        }
    })
}

/// Skip one non-null field of type `ty` without materializing it.
#[inline]
fn skip_field(rest: &mut &[u8], ty: DataType) -> Result<()> {
    let n = match ty.fixed_width() {
        Some(w) => w,
        None => {
            let b = take(rest, 2)?;
            u16::from_le_bytes(b.try_into().unwrap()) as usize
        }
    };
    take(rest, n)?;
    Ok(())
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int32),
            Column::new("b", DataType::Int64),
            Column::nullable("c", DataType::Text),
            Column::nullable("d", DataType::Float64),
            Column::new("e", DataType::Date),
        ])
        .unwrap()
    }

    fn row() -> Row {
        Row::new(vec![
            Value::Int(-5),
            Value::Int(1 << 40),
            Value::str("hello"),
            Value::Float(2.5),
            Value::Int(19000),
        ])
    }

    #[test]
    fn roundtrip_plain() {
        let s = schema();
        let r = row();
        let bytes = r.encode(&s).unwrap();
        assert_eq!(bytes.len(), r.encoded_len(&s));
        assert_eq!(Row::decode(&s, &bytes).unwrap(), r);
    }

    #[test]
    fn roundtrip_with_nulls() {
        let s = schema();
        let r =
            Row::new(vec![Value::Int(1), Value::Int(2), Value::Null, Value::Null, Value::Int(0)]);
        let bytes = r.encode(&s).unwrap();
        assert_eq!(Row::decode(&s, &bytes).unwrap(), r);
        // nulls cost zero payload bytes: bitmap(1) + 4 + 8 + 4
        assert_eq!(bytes.len(), 17);
    }

    #[test]
    fn encode_rejects_schema_violation() {
        let s = schema();
        let bad = Row::new(vec![
            Value::Int(i64::MAX), // does not fit Int32
            Value::Int(0),
            Value::Null,
            Value::Null,
            Value::Int(0),
        ]);
        assert!(bad.encode(&s).is_err());
    }

    #[test]
    fn decode_rejects_truncation_and_trailing() {
        let s = schema();
        let bytes = row().encode(&s).unwrap();
        assert!(Row::decode(&s, &bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(Row::decode(&s, &extra).is_err());
        assert!(Row::decode(&s, &[]).is_err());
    }

    #[test]
    fn decode_columns_probes_without_full_decode() {
        let s = schema();
        let r = row();
        let bytes = r.encode(&s).unwrap();
        let mut scratch = vec![Value::Null; s.len()];
        Row::decode_columns_into(&s, &bytes, &[1, 3], &mut scratch).unwrap();
        assert_eq!(scratch[1], Value::Int(1 << 40));
        assert_eq!(scratch[3], Value::Float(2.5));
        // untouched slots keep their previous contents
        assert_eq!(scratch[0], Value::Null);
        // columns after a variable-width field decode correctly
        Row::decode_columns_into(&s, &bytes, &[4], &mut scratch).unwrap();
        assert_eq!(scratch[4], Value::Int(19000));
        // nulls decode as Null
        let withnull =
            Row::new(vec![Value::Int(1), Value::Int(2), Value::Null, Value::Null, Value::Int(0)]);
        let bytes = withnull.encode(&s).unwrap();
        Row::decode_columns_into(&s, &bytes, &[2, 4], &mut scratch).unwrap();
        assert_eq!(scratch[2], Value::Null);
        assert_eq!(scratch[4], Value::Int(0));
        // truncation surfaces as an error
        assert!(Row::decode_columns_into(&s, &bytes[..2], &[4], &mut scratch).is_err());
        // … even when the damage is past the last referenced column, and
        // trailing bytes are rejected — same strictness as Row::decode
        let full = row().encode(&s).unwrap();
        assert!(Row::decode_columns_into(&s, &full[..full.len() - 1], &[0], &mut scratch).is_err());
        let mut extra = full.clone();
        extra.push(0);
        assert!(Row::decode_columns_into(&s, &extra, &[0], &mut scratch).is_err());
    }

    #[test]
    fn concat_joins_values() {
        let r = Row::new(vec![Value::Int(1)]).concat(&Row::new(vec![Value::Int(2)]));
        assert_eq!(r.values(), &[Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn accessors() {
        let r = row();
        assert_eq!(r.int(0).unwrap(), -5);
        assert_eq!(r.str(2).unwrap(), "hello");
        assert_eq!(r.float(3).unwrap(), 2.5);
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
    }
}
