//! Table schemas: ordered, named, typed columns.

use crate::error::{Error, Result};
use crate::row::Row;
use crate::value::DataType;

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name, unique within its schema.
    pub name: String,
    /// Logical type.
    pub ty: DataType,
    /// Whether NULLs are permitted.
    pub nullable: bool,
}

impl Column {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Column { name: name.into(), ty, nullable: false }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, ty: DataType) -> Self {
        Column { name: name.into(), ty, nullable: true }
    }
}

/// An ordered collection of columns describing one table (or one operator's
/// output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema, validating column-name uniqueness.
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(Error::schema(format!("duplicate column name '{}'", c.name)));
            }
        }
        Ok(Schema { columns })
    }

    /// Number of columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// `true` when the schema has no columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// All columns in order.
    #[inline]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at `idx`.
    #[inline]
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Position of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| Error::schema(format!("no column named '{name}'")))
    }

    /// Validate a row against this schema (arity, types, nullability).
    pub fn validate(&self, row: &Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(Error::schema(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        for (v, c) in row.values().iter().zip(&self.columns) {
            if v.is_null() {
                if !c.nullable {
                    return Err(Error::schema(format!("NULL in non-nullable column '{}'", c.name)));
                }
            } else if !v.conforms_to(c.ty) {
                return Err(Error::schema(format!(
                    "value {v} does not fit column '{}' of type {}",
                    c.name, c.ty
                )));
            }
        }
        Ok(())
    }

    /// Concatenate two schemas (for join outputs). Duplicate names on the
    /// right side get a `_r` suffix, as a pragmatic disambiguation.
    pub fn join(&self, right: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        for c in &right.columns {
            let name = if columns.iter().any(|l| l.name == c.name) {
                format!("{}_r", c.name)
            } else {
                c.name.clone()
            };
            columns.push(Column { name, ty: c.ty, nullable: c.nullable });
        }
        Schema { columns }
    }

    /// An upper bound on the encoded width of a tuple of this schema, used
    /// by cost estimation. Variable-width columns are assumed to use
    /// `avg_text` bytes of payload.
    pub fn estimated_tuple_width(&self, avg_text: usize) -> usize {
        let null_bitmap = self.columns.len().div_ceil(8);
        let fields: usize =
            self.columns.iter().map(|c| c.ty.fixed_width().unwrap_or(2 + avg_text)).sum();
        null_bitmap + fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn two_col() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int64),
            Column::nullable("name", DataType::Text),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_duplicate_names() {
        let err =
            Schema::new(vec![Column::new("a", DataType::Int32), Column::new("a", DataType::Int64)])
                .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn index_of_finds_columns() {
        let s = two_col();
        assert_eq!(s.index_of("name").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn validates_arity_types_nullability() {
        let s = two_col();
        assert!(s.validate(&Row::new(vec![Value::Int(1), Value::str("x")])).is_ok());
        assert!(s.validate(&Row::new(vec![Value::Int(1), Value::Null])).is_ok());
        assert!(s.validate(&Row::new(vec![Value::Null, Value::Null])).is_err());
        assert!(s.validate(&Row::new(vec![Value::Int(1)])).is_err());
        assert!(s.validate(&Row::new(vec![Value::str("x"), Value::Null])).is_err());
    }

    #[test]
    fn join_disambiguates_names() {
        let s = two_col().join(&two_col());
        assert_eq!(s.len(), 4);
        assert_eq!(s.column(2).name, "id_r");
        assert_eq!(s.column(3).name, "name_r");
    }

    #[test]
    fn width_estimate_counts_bitmap_and_fields() {
        let s = two_col();
        // 1 byte bitmap + 8 (int64) + 2+16 (text) = 27
        assert_eq!(s.estimated_tuple_width(16), 27);
    }
}
