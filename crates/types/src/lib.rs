//! Common types shared by every crate in the `smoothscan` workspace.
//!
//! This crate defines the vocabulary of the engine: [`Value`]s and
//! [`DataType`]s, [`Schema`]s, the on-page [`Row`] codec, tuple identifiers
//! ([`Tid`]) and the workspace-wide [`Error`] type.
//!
//! The representations deliberately mirror the PostgreSQL concepts the paper
//! builds on: a heap tuple is addressed by a *TID* `(page, slot)`, rows are
//! stored in slotted 8 KB pages, and secondary indexes map key values to
//! TIDs. Keeping these types in a leaf crate lets the storage engine, the
//! B+-tree, the executor and the Smooth Scan operator evolve independently.

pub mod batch;
pub mod columns;
pub mod error;
pub mod row;
pub mod schema;
pub mod spill;
pub mod tid;
pub mod value;

pub use batch::{RowBatch, DEFAULT_BATCH_SIZE};
pub use columns::{
    force_text_views, text_decode_counters, text_views_enabled, ColumnBatch, ColumnBuffer,
    ColumnValues, ColumnVector, SharedBytes, TextColumn,
};
pub use error::{Error, Result};
pub use row::Row;
pub use schema::{Column, Schema};
pub use tid::{PageId, SlotId, Tid};
pub use value::{DataType, Value};

/// Page size used throughout the engine, matching PostgreSQL's default
/// (and the paper's experimental setup, Section VI-C).
pub const PAGE_SIZE: usize = 8192;

// Compile-time Send/Sync audit: columnar morsels (and everything they
// carry) cross worker-thread boundaries in the parallel pipeline
// driver, so these bounds are part of this crate's public contract —
// adding interior mutability or thread-bound state to any of them is a
// breaking change that must fail right here.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Value>();
    assert_send_sync::<Row>();
    assert_send_sync::<RowBatch>();
    assert_send_sync::<Schema>();
    assert_send_sync::<TextColumn>();
    assert_send_sync::<ColumnVector>();
    assert_send_sync::<ColumnBatch>();
    assert_send_sync::<ColumnBuffer>();
    assert_send_sync::<Error>();
};
