//! B+-tree structure and bulk build.
//!
//! Indexes are shared as `Arc<BTreeIndex>`: executor operators own both the
//! index handle and cursors over it without self-referential borrows.
//!
//! Built bottom-up from sorted `(key, tid)` entries (the way `CREATE INDEX`
//! bulk-builds). Geometry follows the paper's cost model:
//! Eq. (5) `fanout = PS / (1.2 × KS)` with `KS = 16` bytes per entry
//! (8-byte key + 6-byte TID + alignment), Eq. (6) `#leaves = #T / fanout`,
//! Eq. (7) `height = log_fanout(#leaves) + 1`.
//!
//! Virtual page-id layout per index file: leaves occupy `[0, #leaves)` in
//! key order — so a leaf walk looks sequential to the device model — and
//! internal levels follow, root last.

use std::ops::Bound;
use std::sync::Arc;

use smooth_storage::{FileId, HeapFile, Storage};
use smooth_types::{Error, PageId, Result, Tid, Value, PAGE_SIZE};

use crate::cursor::IndexCursor;

/// Bytes charged per entry when deriving the fanout (Eq. 5: key size plus
/// 20% pointer overhead).
pub const KEY_SIZE: usize = 16;

/// One leaf node: a sorted run of `(key, tid)` entries.
#[derive(Debug)]
pub(crate) struct Leaf {
    pub(crate) entries: Vec<(i64, Tid)>,
    pub(crate) page_id: u32,
}

/// One internal node: separator keys and child indices into the level below.
#[derive(Debug)]
pub(crate) struct INode {
    /// `sep_keys[i]` is the smallest key reachable under `children[i]`.
    pub(crate) sep_keys: Vec<i64>,
    pub(crate) children: Vec<u32>,
    pub(crate) page_id: u32,
}

/// An immutable, bulk-built B+-tree mapping `i64` keys to heap TIDs.
#[derive(Debug)]
pub struct BTreeIndex {
    name: String,
    file_id: FileId,
    fanout: usize,
    pub(crate) leaves: Vec<Leaf>,
    /// Internal levels bottom-up; `internal_levels.last()` holds the root.
    pub(crate) internal_levels: Vec<Vec<INode>>,
    entry_count: u64,
}

impl BTreeIndex {
    /// Fanout per Eq. (5) for the engine's page size.
    pub fn model_fanout() -> usize {
        (PAGE_SIZE as f64 / (1.2 * KEY_SIZE as f64)).floor() as usize
    }

    /// Bulk-build from entries (sorted internally by `(key, tid)`).
    pub fn build(name: impl Into<String>, mut entries: Vec<(i64, Tid)>) -> Self {
        entries.sort_unstable();
        Self::build_presorted(name, entries, Self::model_fanout())
    }

    /// Bulk-build with an explicit fanout (tests, ablations).
    pub fn build_with_fanout(
        name: impl Into<String>,
        mut entries: Vec<(i64, Tid)>,
        fanout: usize,
    ) -> Self {
        entries.sort_unstable();
        Self::build_presorted(name, entries, fanout.max(2))
    }

    fn build_presorted(name: impl Into<String>, entries: Vec<(i64, Tid)>, fanout: usize) -> Self {
        let entry_count = entries.len() as u64;
        let mut leaves: Vec<Leaf> = Vec::with_capacity(entries.len() / fanout + 1);
        if entries.is_empty() {
            leaves.push(Leaf { entries: Vec::new(), page_id: 0 });
        } else {
            let mut it = entries.into_iter().peekable();
            let mut page_id = 0u32;
            while it.peek().is_some() {
                let chunk: Vec<(i64, Tid)> = it.by_ref().take(fanout).collect();
                leaves.push(Leaf { entries: chunk, page_id });
                page_id += 1;
            }
        }
        // Build internal levels bottom-up until a single root remains.
        let mut next_page_id = leaves.len() as u32;
        let mut internal_levels: Vec<Vec<INode>> = Vec::new();
        let mut level_keys: Vec<i64> =
            leaves.iter().map(|l| l.entries.first().map_or(i64::MIN, |e| e.0)).collect();
        let mut level_len = leaves.len();
        while level_len > 1 {
            let mut nodes = Vec::with_capacity(level_len / fanout + 1);
            let mut child = 0u32;
            let mut new_keys = Vec::with_capacity(level_len / fanout + 1);
            while (child as usize) < level_len {
                let end = (child as usize + fanout).min(level_len);
                let children: Vec<u32> = (child..end as u32).collect();
                let sep_keys: Vec<i64> = children.iter().map(|&c| level_keys[c as usize]).collect();
                new_keys.push(sep_keys[0]);
                nodes.push(INode { sep_keys, children, page_id: next_page_id });
                next_page_id += 1;
                child = end as u32;
            }
            level_len = nodes.len();
            level_keys = new_keys;
            internal_levels.push(nodes);
        }
        BTreeIndex {
            name: name.into(),
            file_id: FileId::fresh(),
            fanout,
            leaves,
            internal_levels,
            entry_count,
        }
    }

    /// Build over one heap column, which must hold integer-like values.
    /// NULLs are not indexed.
    pub fn build_from_heap(
        name: impl Into<String>,
        heap: &HeapFile,
        column: usize,
    ) -> Result<Self> {
        if column >= heap.schema().len() {
            return Err(Error::schema(format!("index column {column} out of range")));
        }
        if !heap.schema().column(column).ty.indexable() {
            return Err(Error::schema(format!(
                "column '{}' of type {} is not indexable",
                heap.schema().column(column).name,
                heap.schema().column(column).ty
            )));
        }
        let mut entries = Vec::with_capacity(heap.tuple_count() as usize);
        for p in 0..heap.page_count() {
            let page = heap.read_raw(PageId(p))?;
            let view = smooth_storage::PageView::new(&page)?;
            for slot in 0..view.slot_count() {
                let row = heap.decode_slot(&page, slot)?;
                match row.get(column) {
                    Value::Int(k) => entries.push((*k, Tid::new(p, slot))),
                    Value::Null => {}
                    other => {
                        return Err(Error::schema(format!(
                            "non-integer key {other} in index column"
                        )))
                    }
                }
            }
        }
        Ok(Self::build(name, entries))
    }

    /// Index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// File id used for buffer-pool residency of the index's virtual pages.
    pub fn file_id(&self) -> FileId {
        self.file_id
    }

    /// Number of `(key, tid)` entries.
    pub fn len(&self) -> u64 {
        self.entry_count
    }

    /// `true` when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// Entries per node.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Number of leaf pages (`#leaves`, Eq. 6).
    pub fn leaf_count(&self) -> u32 {
        self.leaves.len() as u32
    }

    /// Tree height in node levels (`height`, Eq. 7): 1 for a leaf-only tree.
    pub fn height(&self) -> u32 {
        1 + self.internal_levels.len() as u32
    }

    /// Smallest key, if any.
    pub fn min_key(&self) -> Option<i64> {
        self.leaves.first().and_then(|l| l.entries.first()).map(|e| e.0)
    }

    /// Largest key, if any.
    pub fn max_key(&self) -> Option<i64> {
        self.leaves.last().and_then(|l| l.entries.last()).map(|e| e.0)
    }

    /// The separator keys visible in the root page — the paper's source for
    /// Result-Cache key-range partitions ("the root page is a good
    /// indicator of the key value distributions", Section IV-A).
    pub fn root_separators(&self) -> Vec<i64> {
        match self.internal_levels.last() {
            Some(root_level) => root_level[0].sep_keys.clone(),
            None => self.leaves.iter().filter_map(|l| l.entries.first().map(|e| e.0)).collect(),
        }
    }

    /// Descend from the root to the leaf that may contain the first entry
    /// `>= (key, Tid::MIN)`, charging one virtual-page touch per node.
    /// Returns the leaf position.
    pub(crate) fn descend(&self, storage: &Storage, key: i64) -> usize {
        storage.clock().charge_cpu(storage.cpu().index_node_search_ns * self.height() as u64);
        let mut child: u32 = 0;
        for level in self.internal_levels.iter().rev() {
            let node = &level[child as usize];
            storage.touch_index_page(self.file_id, node.page_id);
            // Leftmost child that can contain the first entry with a key
            // >= `key`: separators are each child's minimum key, and a run
            // of duplicates may begin in the child *before* the first
            // separator equal to `key`.
            let pos = node.sep_keys.partition_point(|&s| s < key);
            let idx = pos.saturating_sub(1);
            child = node.children[idx];
        }
        let leaf = &self.leaves[child as usize];
        storage.touch_index_page(self.file_id, leaf.page_id);
        child as usize
    }

    /// All TIDs for an exact key, in TID order (used by index-nested-loop
    /// joins). Charges the descent and any leaf walks.
    pub fn probe(&self, storage: &Storage, key: i64) -> Vec<Tid> {
        if self.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut leaf = self.descend(storage, key);
        let mut pos = self.leaves[leaf].entries.partition_point(|&(k, _)| k < key);
        loop {
            if pos >= self.leaves[leaf].entries.len() {
                if leaf + 1 >= self.leaves.len() {
                    break;
                }
                leaf += 1;
                pos = 0;
                storage.touch_index_page(self.file_id, self.leaves[leaf].page_id);
                continue;
            }
            let (k, tid) = self.leaves[leaf].entries[pos];
            if k != key {
                break;
            }
            storage.clock().charge_cpu(storage.cpu().index_leaf_step_ns);
            out.push(tid);
            pos += 1;
        }
        out
    }

    /// A `(key, tid)`-ordered cursor over `[lo, hi]` bounds. The descent to
    /// the start leaf is charged immediately; leaf crossings are charged as
    /// the cursor advances.
    pub fn range(
        self: &Arc<Self>,
        storage: &Storage,
        lo: Bound<i64>,
        hi: Bound<i64>,
    ) -> IndexCursor {
        IndexCursor::new(Arc::clone(self), storage.clone(), lo, hi)
    }

    /// A cursor over the whole index.
    pub fn scan_all(self: &Arc<Self>, storage: &Storage) -> IndexCursor {
        self.range(storage, Bound::Unbounded, Bound::Unbounded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_storage::{CpuCosts, DeviceProfile, StorageConfig};

    fn storage() -> Storage {
        Storage::new(StorageConfig {
            device: DeviceProfile::custom("t", 1, 10),
            cpu: CpuCosts::default(),
            pool_pages: 4096,
        })
    }

    fn entries(n: i64) -> Vec<(i64, Tid)> {
        (0..n).map(|i| (i, Tid::new((i / 100) as u32, (i % 100) as u16))).collect()
    }

    #[test]
    fn geometry_matches_cost_model() {
        let idx = BTreeIndex::build("i", entries(10_000));
        let fanout = BTreeIndex::model_fanout();
        assert_eq!(fanout, 426); // floor(8192 / 19.2)
        assert_eq!(idx.fanout(), fanout);
        assert_eq!(idx.leaf_count() as usize, 10_000usize.div_ceil(fanout));
        assert_eq!(idx.height(), 2);
        assert_eq!(idx.len(), 10_000);
    }

    #[test]
    fn single_leaf_tree() {
        let idx = BTreeIndex::build("i", entries(10));
        assert_eq!(idx.height(), 1);
        assert_eq!(idx.leaf_count(), 1);
        assert_eq!(idx.min_key(), Some(0));
        assert_eq!(idx.max_key(), Some(9));
    }

    #[test]
    fn empty_tree() {
        let idx = BTreeIndex::build("i", Vec::new());
        assert!(idx.is_empty());
        assert_eq!(idx.min_key(), None);
        let s = storage();
        assert!(idx.probe(&s, 5).is_empty());
    }

    #[test]
    fn duplicate_keys_are_tid_ordered() {
        let mut e = vec![
            (5, Tid::new(9, 0)),
            (5, Tid::new(2, 3)),
            (5, Tid::new(2, 1)),
            (3, Tid::new(0, 0)),
        ];
        e.reverse();
        let idx = BTreeIndex::build("i", e);
        let s = storage();
        let tids = idx.probe(&s, 5);
        assert_eq!(tids, vec![Tid::new(2, 1), Tid::new(2, 3), Tid::new(9, 0)]);
    }

    #[test]
    fn probe_finds_exact_matches_only() {
        let idx = BTreeIndex::build_with_fanout("i", entries(1000), 8);
        let s = storage();
        assert_eq!(idx.probe(&s, 123), vec![Tid::new(1, 23)]);
        assert!(idx.probe(&s, 5000).is_empty());
        assert!(idx.probe(&s, -1).is_empty());
    }

    #[test]
    fn deep_tree_descends_correctly() {
        let idx = BTreeIndex::build_with_fanout("i", entries(5000), 4);
        assert!(idx.height() >= 5);
        let s = storage();
        for k in [0i64, 1, 999, 2500, 4999] {
            assert_eq!(idx.probe(&s, k), vec![Tid::new((k / 100) as u32, (k % 100) as u16)]);
        }
    }

    #[test]
    fn root_separators_reflect_key_distribution() {
        let idx = BTreeIndex::build_with_fanout("i", entries(1000), 8);
        let seps = idx.root_separators();
        assert!(!seps.is_empty());
        assert!(seps.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(seps[0], 0);
    }

    #[test]
    fn descent_charges_index_pages() {
        let idx = BTreeIndex::build_with_fanout("i", entries(5000), 4);
        let s = storage();
        s.reset_metrics();
        idx.probe(&s, 2500);
        let io = s.io_snapshot();
        // A cold probe touches height nodes (plus possibly one extra leaf).
        assert!(io.pages_read as u32 >= idx.height());
        // A second identical probe hits the pool everywhere.
        let before = s.io_snapshot().pages_read;
        idx.probe(&s, 2500);
        assert_eq!(s.io_snapshot().pages_read, before);
    }

    #[test]
    fn build_rejects_bad_columns() {
        use smooth_types::{Column, DataType, Row, Schema};
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int64),
            Column::new("f", DataType::Float64),
        ])
        .unwrap();
        let mut l = smooth_storage::HeapLoader::new_mem("t", schema);
        l.push(&Row::new(vec![Value::Int(1), Value::Float(1.0)])).unwrap();
        let heap = l.finish().unwrap();
        assert!(BTreeIndex::build_from_heap("i", &heap, 1).is_err());
        assert!(BTreeIndex::build_from_heap("i", &heap, 7).is_err());
        assert!(BTreeIndex::build_from_heap("i", &heap, 0).is_ok());
    }

    #[test]
    fn build_from_heap_skips_nulls() {
        use smooth_types::{Column, DataType, Row, Schema};
        let schema = Schema::new(vec![Column::nullable("a", DataType::Int64)]).unwrap();
        let mut l = smooth_storage::HeapLoader::new_mem("t", schema);
        l.push(&Row::new(vec![Value::Int(1)])).unwrap();
        l.push(&Row::new(vec![Value::Null])).unwrap();
        l.push(&Row::new(vec![Value::Int(2)])).unwrap();
        let heap = l.finish().unwrap();
        let idx = BTreeIndex::build_from_heap("i", &heap, 0).unwrap();
        assert_eq!(idx.len(), 2);
    }
}
