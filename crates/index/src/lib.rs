//! Non-clustered B+-tree secondary index.
//!
//! The equivalent of PostgreSQL's btree access method, scoped to what the
//! paper exercises: 64-bit integer keys (covering ints, dates and
//! fixed-point decimals) mapping to heap [`smooth_types::Tid`]s, with strict
//! `(key, tid)` entry ordering — the property Section IV-A highlights
//! because it lets the Eager strategy skip the Tuple-ID cache.
//!
//! Node *contents* live in memory (the index is rebuilt per experiment, as
//! `CREATE INDEX` is setup work), but node *residency* is tracked through
//! the shared buffer pool: every descent and every leaf step touches
//! virtual index pages via [`smooth_storage::Storage::touch_index_page`], so
//! tree I/O is charged with the same device model as heap I/O — `height`
//! random touches per cold descent plus sequential leaf walks, exactly the
//! structure of Eq. (11).

pub mod btree;
pub mod cursor;

pub use btree::BTreeIndex;
pub use cursor::IndexCursor;
