//! Range cursors over the B+-tree.
//!
//! A cursor yields `(key, tid)` pairs in strict `(key, tid)` order,
//! touching each leaf's virtual page as it enters it — so a long range scan
//! shows up in the device model as `height` random touches (the initial
//! descent) followed by a sequential leaf walk, matching the
//! `#leaves_res × seqcost` term of Eq. (11).
//!
//! The cursor owns an `Arc` of its index, so operators can hold both
//! without self-referential lifetimes.

use std::ops::Bound;
use std::sync::Arc;

use smooth_storage::Storage;
use smooth_types::Tid;

use crate::btree::BTreeIndex;

/// Iterator state for one index range scan.
pub struct IndexCursor {
    index: Arc<BTreeIndex>,
    storage: Storage,
    hi: Bound<i64>,
    leaf: usize,
    pos: usize,
    exhausted: bool,
}

impl IndexCursor {
    pub(crate) fn new(
        index: Arc<BTreeIndex>,
        storage: Storage,
        lo: Bound<i64>,
        hi: Bound<i64>,
    ) -> Self {
        if index.is_empty() {
            return IndexCursor { index, storage, hi, leaf: 0, pos: 0, exhausted: true };
        }
        // Position at the first entry satisfying the lower bound.
        let (leaf, pos) = match lo {
            Bound::Unbounded => {
                // Touch the leftmost spine.
                let leaf = index.descend(&storage, i64::MIN);
                (leaf, 0)
            }
            Bound::Included(k) | Bound::Excluded(k) => Self::seek(&index, &storage, k),
        };
        let mut c = IndexCursor { index, storage, hi, leaf, pos, exhausted: false };
        c.skip_empty_leaves();
        if let Bound::Excluded(k) = lo {
            // Skip the run of duplicates equal to the excluded bound; the
            // run may span leaf boundaries.
            while !c.exhausted && c.index.leaves[c.leaf].entries[c.pos].0 == k {
                c.pos += 1;
                c.skip_empty_leaves();
            }
        }
        c
    }

    /// Find the first position with key `>= k`.
    fn seek(index: &BTreeIndex, storage: &Storage, k: i64) -> (usize, usize) {
        let leaf_idx = index.descend(storage, k);
        let leaf = &index.leaves[leaf_idx];
        let pos = leaf.entries.partition_point(|&(key, _)| key < k);
        (leaf_idx, pos)
    }

    /// Advance over exhausted leaves, charging a touch per new leaf.
    fn skip_empty_leaves(&mut self) {
        while self.pos >= self.index.leaves[self.leaf].entries.len() {
            if self.leaf + 1 >= self.index.leaves.len() {
                self.exhausted = true;
                return;
            }
            self.leaf += 1;
            self.pos = 0;
            let page = self.index.leaves[self.leaf].page_id;
            self.storage.touch_index_page(self.index.file_id(), page);
        }
    }

    fn within_hi(&self, key: i64) -> bool {
        match self.hi {
            Bound::Unbounded => true,
            Bound::Included(h) => key <= h,
            Bound::Excluded(h) => key < h,
        }
    }

    /// Peek at the next `(key, tid)` without consuming it or charging CPU.
    pub fn peek(&self) -> Option<(i64, Tid)> {
        if self.exhausted {
            return None;
        }
        let (key, tid) = self.index.leaves[self.leaf].entries[self.pos];
        self.within_hi(key).then_some((key, tid))
    }

    /// The next `(key, tid)` pair, or `None` past the upper bound.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(i64, Tid)> {
        if self.exhausted {
            return None;
        }
        let (key, tid) = self.index.leaves[self.leaf].entries[self.pos];
        if !self.within_hi(key) {
            self.exhausted = true;
            return None;
        }
        self.storage.clock().charge_cpu(self.storage.cpu().index_leaf_step_ns);
        self.pos += 1;
        self.skip_empty_leaves();
        Some((key, tid))
    }

    /// Drain the cursor into a vector (tests and Sort Scan TID collection).
    pub fn collect_all(mut self) -> Vec<(i64, Tid)> {
        let mut out = Vec::new();
        while let Some(e) = self.next() {
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_storage::{CpuCosts, DeviceProfile, StorageConfig};

    fn storage() -> Storage {
        Storage::new(StorageConfig {
            device: DeviceProfile::custom("t", 1, 10),
            cpu: CpuCosts::default(),
            pool_pages: 4096,
        })
    }

    fn index(n: i64, fanout: usize) -> Arc<BTreeIndex> {
        let entries = (0..n).map(|i| (i, Tid::new(i as u32, 0))).collect();
        Arc::new(BTreeIndex::build_with_fanout("i", entries, fanout))
    }

    #[test]
    fn full_scan_yields_everything_in_order() {
        let idx = index(1000, 8);
        let s = storage();
        let all = idx.scan_all(&s).collect_all();
        assert_eq!(all.len(), 1000);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(all[0].0, 0);
        assert_eq!(all[999].0, 999);
    }

    #[test]
    fn bounds_are_respected() {
        let idx = index(100, 8);
        let s = storage();
        let r = idx.range(&s, Bound::Included(10), Bound::Excluded(20)).collect_all();
        assert_eq!(r.iter().map(|e| e.0).collect::<Vec<_>>(), (10..20).collect::<Vec<_>>());
        let r = idx.range(&s, Bound::Excluded(10), Bound::Included(12)).collect_all();
        assert_eq!(r.iter().map(|e| e.0).collect::<Vec<_>>(), vec![11, 12]);
        let r = idx.range(&s, Bound::Unbounded, Bound::Excluded(3)).collect_all();
        assert_eq!(r.len(), 3);
        let r = idx.range(&s, Bound::Included(98), Bound::Unbounded).collect_all();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn empty_ranges() {
        let idx = index(100, 8);
        let s = storage();
        assert!(idx.range(&s, Bound::Included(200), Bound::Unbounded).collect_all().is_empty());
        assert!(idx.range(&s, Bound::Included(50), Bound::Excluded(50)).collect_all().is_empty());
        assert!(idx.range(&s, Bound::Included(-10), Bound::Excluded(0)).collect_all().is_empty());
    }

    #[test]
    fn duplicates_come_out_tid_ordered_across_leaves() {
        // 300 entries of the same key spread over many 8-entry leaves.
        let entries: Vec<(i64, Tid)> = (0..300).map(|i| (7, Tid::new(i as u32, 0))).collect();
        let idx = Arc::new(BTreeIndex::build_with_fanout("i", entries, 8));
        let s = storage();
        let r = idx.range(&s, Bound::Included(7), Bound::Included(7)).collect_all();
        assert_eq!(r.len(), 300);
        assert!(r.windows(2).all(|w| w[0].1 < w[1].1));
        // Excluded lower bound skips the whole duplicate run.
        let r = idx.range(&s, Bound::Excluded(7), Bound::Unbounded).collect_all();
        assert!(r.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let idx = index(10, 4);
        let s = storage();
        let mut c = idx.scan_all(&s);
        assert_eq!(c.peek(), Some((0, Tid::new(0, 0))));
        assert_eq!(c.peek(), Some((0, Tid::new(0, 0))));
        assert_eq!(c.next(), Some((0, Tid::new(0, 0))));
        assert_eq!(c.peek(), Some((1, Tid::new(1, 0))));
    }

    #[test]
    fn leaf_walk_is_mostly_sequential() {
        let idx = index(10_000, 64);
        let s = storage();
        s.reset_metrics();
        let _ = idx.scan_all(&s).collect_all();
        let io = s.io_snapshot();
        // One random descent, then a sequential walk over the leaves.
        assert!(io.seq_pages >= io.rand_pages * 10);
    }

    #[test]
    fn cursor_on_empty_index() {
        let idx = Arc::new(BTreeIndex::build("i", Vec::new()));
        let s = storage();
        assert!(idx.scan_all(&s).collect_all().is_empty());
        assert!(idx.scan_all(&s).peek().is_none());
    }
}
