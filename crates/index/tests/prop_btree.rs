//! Property tests: the B+-tree must agree with a sorted-vector oracle for
//! arbitrary key multisets (heavy duplicates included) and arbitrary range
//! bounds, at any fanout.

use std::ops::Bound;

use proptest::prelude::*;
use smooth_index::BTreeIndex;
use smooth_storage::{CpuCosts, DeviceProfile, Storage, StorageConfig};
use smooth_types::Tid;

fn storage() -> Storage {
    Storage::new(StorageConfig {
        device: DeviceProfile::custom("t", 1, 10),
        cpu: CpuCosts::default(),
        pool_pages: 4096,
    })
}

fn oracle_range(entries: &[(i64, Tid)], lo: Bound<i64>, hi: Bound<i64>) -> Vec<(i64, Tid)> {
    let mut v: Vec<(i64, Tid)> = entries
        .iter()
        .copied()
        .filter(|&(k, _)| {
            (match lo {
                Bound::Unbounded => true,
                Bound::Included(l) => k >= l,
                Bound::Excluded(l) => k > l,
            }) && (match hi {
                Bound::Unbounded => true,
                Bound::Included(h) => k <= h,
                Bound::Excluded(h) => k < h,
            })
        })
        .collect();
    v.sort_unstable();
    v
}

fn arb_bound() -> impl Strategy<Value = Bound<i64>> {
    prop_oneof![
        Just(Bound::Unbounded),
        (-50i64..150).prop_map(Bound::Included),
        (-50i64..150).prop_map(Bound::Excluded),
    ]
}

proptest! {
    #[test]
    fn range_scans_match_oracle(
        keys in proptest::collection::vec(0i64..100, 0..400),
        fanout in 2usize..40,
        lo in arb_bound(),
        hi in arb_bound(),
    ) {
        let entries: Vec<(i64, Tid)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, Tid::new(i as u32, (i % 7) as u16)))
            .collect();
        let idx = std::sync::Arc::new(BTreeIndex::build_with_fanout("i", entries.clone(), fanout));
        let s = storage();
        let got = idx.range(&s, lo, hi).collect_all();
        prop_assert_eq!(got, oracle_range(&entries, lo, hi));
    }

    #[test]
    fn probe_matches_oracle(
        keys in proptest::collection::vec(0i64..30, 1..200),
        fanout in 2usize..20,
        probe in -5i64..35,
    ) {
        let entries: Vec<(i64, Tid)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, Tid::new(i as u32, 0)))
            .collect();
        let idx = std::sync::Arc::new(BTreeIndex::build_with_fanout("i", entries.clone(), fanout));
        let s = storage();
        let got = idx.probe(&s, probe);
        let want: Vec<Tid> = oracle_range(&entries, Bound::Included(probe), Bound::Included(probe))
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn geometry_invariants(keys in proptest::collection::vec(any::<i64>(), 0..500),
                           fanout in 2usize..50) {
        let entries: Vec<(i64, Tid)> =
            keys.iter().enumerate().map(|(i, &k)| (k, Tid::new(i as u32, 0))).collect();
        let n = entries.len();
        let idx = BTreeIndex::build_with_fanout("i", entries, fanout);
        prop_assert_eq!(idx.len() as usize, n);
        // Leaves hold at most `fanout` entries and exactly n in total.
        prop_assert!(idx.leaf_count() as usize >= n.div_ceil(fanout).max(1));
        // Separators are sorted.
        let seps = idx.root_separators();
        prop_assert!(seps.windows(2).all(|w| w[0] <= w[1]));
        // min/max agree with the key set.
        if n > 0 {
            prop_assert_eq!(idx.min_key(), keys.iter().min().copied());
            prop_assert_eq!(idx.max_key(), keys.iter().max().copied());
        }
    }
}
