//! Property tests on the §V cost model and the morphing policies:
//! monotonicity, bounds and convergence invariants that must hold for any
//! table geometry and any region-observation history.

use proptest::prelude::*;
use smooth_core::{CostModel, MorphPolicy, PolicyKind, TableGeometry};
use smooth_storage::DeviceProfile;

fn arb_geometry() -> impl Strategy<Value = TableGeometry> {
    (8u64..512, 100u64..5_000_000).prop_map(|(ts, t)| TableGeometry::new(ts, t))
}

fn arb_device() -> impl Strategy<Value = DeviceProfile> {
    (1u64..100_000, 1u64..20).prop_map(|(seq, ratio)| {
        DeviceProfile::custom("p", seq, seq.saturating_mul(ratio).max(seq))
    })
}

proptest! {
    #[test]
    fn cost_model_invariants(geometry in arb_geometry(), device in arb_device(),
                             sel_a in 0.0f64..1.0, sel_b in 0.0f64..1.0) {
        let m = CostModel::new(geometry, device);
        let (lo, hi) = if sel_a <= sel_b { (sel_a, sel_b) } else { (sel_b, sel_a) };
        let (card_lo, card_hi) = (geometry.cardinality(lo), geometry.cardinality(hi));
        // Index and Smooth costs are monotone in cardinality.
        prop_assert!(m.is_cost_ns(card_lo) <= m.is_cost_ns(card_hi));
        prop_assert!(m.ss_cost_ns(card_lo) <= m.ss_cost_ns(card_hi) + 1e-6);
        // Full scan is selectivity-independent and positive.
        prop_assert!(m.fs_cost_ns() > 0.0);
        // Smooth never exceeds Mode-1-only (flattening only helps).
        prop_assert!(m.ss_cost_ns(card_hi) <= m.ss_mode1_only_cost_ns(card_hi) + 1e-6);
        // The optimum is never above any individual alternative.
        let opt = m.optimal_cost_ns(card_hi);
        prop_assert!(opt <= m.fs_cost_ns() + 1e-6);
        prop_assert!(opt <= m.is_cost_ns(card_hi) + 1e-6);
        prop_assert!(opt <= m.sort_scan_cost_ns(card_hi) + 1e-6);
        // CR bound is ratio + 1 and the elastic worst case stays under it.
        prop_assert!(m.elastic_worst_case_cr() <= m.cr_theoretical_bound() + 1e-6);
    }

    #[test]
    fn sla_trigger_monotone_and_bounded(geometry in arb_geometry(), device in arb_device(),
                                        budget_a in 0.5f64..8.0, budget_b in 0.5f64..8.0) {
        let m = CostModel::new(geometry, device);
        let (lo, hi) = if budget_a <= budget_b { (budget_a, budget_b) } else { (budget_b, budget_a) };
        let ka = m.sla_trigger_cardinality(lo * m.fs_cost_ns());
        let kb = m.sla_trigger_cardinality(hi * m.fs_cost_ns());
        prop_assert!(ka <= kb, "larger budgets allow later switches");
        prop_assert!(kb <= geometry.tuples);
    }

    #[test]
    fn policy_region_always_within_bounds(
        kind in prop_oneof![
            Just(PolicyKind::Greedy),
            Just(PolicyKind::SelectivityIncrease),
            Just(PolicyKind::Elastic),
        ],
        cap in 1u32..4096,
        observations in proptest::collection::vec((1u64..64, 0u64..64), 0..200),
    ) {
        let mut p = MorphPolicy::new(kind, cap);
        for (pages, res) in observations {
            let res = res.min(pages);
            prop_assert!(p.region_pages() >= 1 && p.region_pages() <= cap.max(1));
            p.observe_region(pages, res);
        }
        prop_assert!(p.region_pages() >= 1 && p.region_pages() <= cap.max(1));
        prop_assert!(p.pages_with_results() <= p.pages_seen());
        if let Some(acc) = p.accuracy() {
            prop_assert!((0.0..=1.0).contains(&acc));
        }
    }

    /// Selectivity-Increase never shrinks; Greedy grows on every non-empty
    /// region until the cap.
    #[test]
    fn policy_direction_laws(observations in proptest::collection::vec((1u64..32, 0u64..32), 1..100)) {
        let mut si = MorphPolicy::new(PolicyKind::SelectivityIncrease, 1 << 20);
        let mut greedy = MorphPolicy::new(PolicyKind::Greedy, 1 << 20);
        let mut si_prev = si.region_pages();
        let mut greedy_prev = greedy.region_pages();
        for (pages, res) in observations {
            let res = res.min(pages);
            si.observe_region(pages, res);
            greedy.observe_region(pages, res);
            prop_assert!(si.region_pages() >= si_prev, "SI never shrinks");
            prop_assert!(greedy.region_pages() >= greedy_prev * 2 || greedy.region_pages() == 1 << 20);
            si_prev = si.region_pages();
            greedy_prev = greedy.region_pages();
        }
        prop_assert!(greedy.region_pages() >= si.region_pages(), "greedy is the fastest grower");
    }
}
