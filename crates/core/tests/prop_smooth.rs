//! Property tests: Smooth Scan must return *exactly* the rows a full scan +
//! filter returns — same multiset, no duplicates, no losses — for every
//! policy, trigger, order mode, selectivity, data distribution and buffer
//! pool size. This is the paper's correctness obligation: morphing is an
//! execution-strategy change only, never a semantics change. The batched
//! and columnar iterator protocols carry the same obligation: both
//! `next_batch` and `next_columns` must yield the identical row sequence
//! as `next`, including across mode switches and with all three protocols
//! interleaved on one stream.

use std::ops::Bound;
use std::sync::Arc;

use proptest::prelude::*;
use smooth_core::{PolicyKind, SmoothScan, SmoothScanConfig, Trigger};
use smooth_executor::{collect_rows, collect_rows_volcano, FullTableScan, Operator, Predicate};
use smooth_index::BTreeIndex;
use smooth_storage::{CpuCosts, DeviceProfile, HeapFile, HeapLoader, Storage, StorageConfig};
use smooth_types::{Column, DataType, Row, Schema, Value};

/// Drain through `next_batch(max)` only, checking the batch contract.
fn collect_batched(op: &mut dyn Operator, max: usize) -> Vec<Row> {
    op.open().unwrap();
    let mut rows = Vec::new();
    while let Some(batch) = op.next_batch(max).unwrap() {
        assert!(!batch.is_empty() && batch.len() <= max);
        rows.extend(batch.into_rows());
    }
    op.close().unwrap();
    rows
}

/// Drain through `next_columns(max)` only, checking the batch contract.
fn collect_columnar(op: &mut dyn Operator, max: usize) -> Vec<Row> {
    op.open().unwrap();
    let mut rows = Vec::new();
    while let Some(batch) = op.next_columns(max).unwrap() {
        assert!(!batch.is_empty() && batch.len() <= max);
        rows.extend(batch.into_rows());
    }
    op.close().unwrap();
    rows
}

/// Drain rotating `next()`, `next_batch(max)` and `next_columns(max)` on
/// one stream.
fn collect_interleaved(op: &mut dyn Operator, max: usize) -> Vec<Row> {
    op.open().unwrap();
    let mut rows = Vec::new();
    'outer: while let Some(row) = op.next().unwrap() {
        rows.push(row);
        match op.next_batch(max).unwrap() {
            Some(batch) => rows.extend(batch.into_rows()),
            None => break 'outer,
        }
        match op.next_columns(max).unwrap() {
            Some(batch) => rows.extend(batch.into_rows()),
            None => break 'outer,
        }
    }
    op.close().unwrap();
    rows
}

fn build_table(keys: &[i64]) -> (Arc<HeapFile>, Arc<BTreeIndex>) {
    let schema = Schema::new(vec![
        Column::new("c0", DataType::Int64),
        Column::new("c1", DataType::Int64),
        Column::new("pad", DataType::Text),
    ])
    .unwrap();
    let mut l = HeapLoader::new_mem("t", schema);
    for (i, &k) in keys.iter().enumerate() {
        l.push(&Row::new(vec![Value::Int(i as i64), Value::Int(k), Value::str("p".repeat(80))]))
            .unwrap();
    }
    let heap = Arc::new(l.finish().unwrap());
    let index = Arc::new(BTreeIndex::build_from_heap("i", &heap, 1).unwrap());
    (heap, index)
}

fn storage(pool: usize) -> Storage {
    Storage::new(StorageConfig {
        device: DeviceProfile::custom("t", 1, 10),
        cpu: CpuCosts::default(),
        pool_pages: pool,
    })
}

fn canonical(mut rows: Vec<Row>) -> Vec<(i64, i64)> {
    let mut v: Vec<(i64, i64)> =
        rows.drain(..).map(|r| (r.int(1).unwrap(), r.int(0).unwrap())).collect();
    v.sort_unstable();
    v
}

fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Greedy),
        Just(PolicyKind::SelectivityIncrease),
        Just(PolicyKind::Elastic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn smooth_scan_equals_oracle(
        keys in proptest::collection::vec(0i64..200, 50..1500),
        lo in 0i64..200,
        width in 0i64..220,
        policy in arb_policy(),
        ordered in any::<bool>(),
        pool in 4usize..64,
        max_region in prop_oneof![Just(1u32), Just(4u32), Just(2048u32)],
        trigger_card in prop_oneof![Just(None), (0u64..300).prop_map(Some)],
    ) {
        let (heap, index) = build_table(&keys);
        let s = storage(pool);
        let hi = lo + width;
        let mut oracle = FullTableScan::new(
            Arc::clone(&heap),
            s.clone(),
            Predicate::int_half_open(1, lo, hi),
        );
        let expected = canonical(collect_rows(&mut oracle).unwrap());

        let trigger = match trigger_card {
            None => Trigger::Eager,
            Some(c) => Trigger::OptimizerDriven {
                estimated_cardinality: c,
                policy: PolicyKind::SelectivityIncrease,
            },
        };
        let mut config = SmoothScanConfig::default()
            .with_policy(policy)
            .with_order(ordered)
            .with_trigger(trigger);
        config.max_region_pages = max_region;
        let mut ss = SmoothScan::new(
            Arc::clone(&heap),
            Arc::clone(&index),
            s.clone(),
            1,
            Bound::Included(lo),
            Bound::Excluded(hi),
            Predicate::True,
            config,
        );
        let rows = collect_rows(&mut ss).unwrap();
        if ordered {
            let ks: Vec<i64> = rows.iter().map(|r| r.int(1).unwrap()).collect();
            prop_assert!(ks.windows(2).all(|w| w[0] <= w[1]), "ordered mode key order");
        }
        prop_assert_eq!(canonical(rows), expected);
        // Morphing never fetches more pages than the heap holds.
        prop_assert!(ss.metrics().pages_fetched <= heap.page_count() as u64);
    }

    #[test]
    fn switch_scan_equals_oracle(
        keys in proptest::collection::vec(0i64..100, 50..800),
        hi in 0i64..110,
        estimate in 0u64..400,
    ) {
        let (heap, index) = build_table(&keys);
        let s = storage(16);
        let mut oracle = FullTableScan::new(
            Arc::clone(&heap),
            s.clone(),
            Predicate::int_half_open(1, 0, hi),
        );
        let expected = canonical(collect_rows(&mut oracle).unwrap());
        let mut sw = smooth_core::SwitchScan::new(
            heap,
            index,
            s,
            1,
            Bound::Included(0),
            Bound::Excluded(hi),
            Predicate::True,
            estimate,
        );
        let rows = collect_rows(&mut sw).unwrap();
        prop_assert_eq!(canonical(rows), expected);
    }

    #[test]
    fn ordered_smooth_scan_with_spill_equals_oracle(
        keys in proptest::collection::vec(0i64..50, 100..900),
        spill in 1usize..40,
    ) {
        let (heap, index) = build_table(&keys);
        let s = storage(32);
        let mut oracle =
            FullTableScan::new(Arc::clone(&heap), s.clone(), Predicate::int_lt(1, 25));
        let expected = canonical(collect_rows(&mut oracle).unwrap());
        let mut config = SmoothScanConfig::default().with_order(true);
        config.result_cache_spill = Some(spill);
        let mut ss = SmoothScan::new(
            heap,
            index,
            s,
            1,
            Bound::Unbounded,
            Bound::Excluded(25),
            Predicate::True,
            config,
        );
        let rows = collect_rows(&mut ss).unwrap();
        let ks: Vec<i64> = rows.iter().map(|r| r.int(1).unwrap()).collect();
        prop_assert!(ks.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(canonical(rows), expected);
    }

    /// `next_batch` ≡ `next` for Smooth Scan across every policy, order
    /// mode and trigger — in particular across the Mode-0 → morphing
    /// switch an OptimizerDriven trigger fires mid-scan — and for Switch
    /// Scan across its index → full-scan cliff.
    #[test]
    fn batch_protocol_equals_row_protocol_across_mode_switches(
        keys in proptest::collection::vec(0i64..150, 50..1000),
        lo in 0i64..150,
        width in 0i64..170,
        policy in arb_policy(),
        ordered in any::<bool>(),
        trigger_card in prop_oneof![Just(None), (0u64..200).prop_map(Some)],
        estimate in 0u64..300,
        max in 1usize..90,
    ) {
        let (heap, index) = build_table(&keys);
        let s = storage(24);
        let hi = lo + width;
        let trigger = match trigger_card {
            None => Trigger::Eager,
            Some(c) => Trigger::OptimizerDriven {
                estimated_cardinality: c,
                policy: PolicyKind::Elastic,
            },
        };
        let config = SmoothScanConfig::default()
            .with_policy(policy)
            .with_order(ordered)
            .with_trigger(trigger);
        let mut ss = SmoothScan::new(
            Arc::clone(&heap),
            Arc::clone(&index),
            s.clone(),
            1,
            Bound::Included(lo),
            Bound::Excluded(hi),
            Predicate::True,
            config,
        );
        let volcano = collect_rows_volcano(&mut ss).unwrap();
        prop_assert_eq!(&collect_batched(&mut ss, max), &volcano);
        prop_assert_eq!(&collect_columnar(&mut ss, max), &volcano);
        prop_assert_eq!(&collect_interleaved(&mut ss, max), &volcano);
        // The emission counter counts each tuple once under every protocol.
        prop_assert_eq!(ss.metrics().tuples_emitted as usize, volcano.len());

        let mut sw = smooth_core::SwitchScan::new(
            Arc::clone(&heap),
            Arc::clone(&index),
            s.clone(),
            1,
            Bound::Included(lo),
            Bound::Excluded(hi),
            Predicate::True,
            estimate,
        );
        let volcano = collect_rows_volcano(&mut sw).unwrap();
        prop_assert_eq!(&collect_batched(&mut sw, max), &volcano);
        prop_assert_eq!(&collect_columnar(&mut sw, max), &volcano);
        prop_assert_eq!(&collect_interleaved(&mut sw, max), &volcano);
    }

    /// `next_batch` ≡ `next` for the morphing INLJ (Section IV-B inner
    /// path), whose harvest cache state evolves with probe order.
    #[test]
    fn morphing_join_batch_protocol_equals_row_protocol(
        fks in proptest::collection::vec(0i64..60, 0..150),
        max in 1usize..50,
    ) {
        let inner_keys: Vec<i64> = (0..200).map(|i| (i * 7919) % 50).collect();
        let (heap, index) = build_table(&inner_keys);
        let outer_schema =
            Schema::new(vec![Column::new("fk", DataType::Int64)]).unwrap();
        let outer_rows: Vec<Row> =
            fks.iter().map(|&k| Row::new(vec![Value::Int(k)])).collect();
        let mk_join = |s: &Storage| {
            let inner = smooth_core::SmoothInnerPath::new(
                Arc::clone(&heap),
                Arc::clone(&index),
                s.clone(),
                1,
                Predicate::True,
            );
            smooth_core::SmoothIndexNestedLoopJoin::new(
                Box::new(smooth_executor::operator::ValuesOp::new(
                    outer_schema.clone(),
                    outer_rows.clone(),
                )),
                0,
                inner,
            )
        };
        // Fresh join per drain: the harvest cache is cumulative state that
        // a reopen deliberately does not reset.
        let s = storage(8);
        let volcano = collect_rows_volcano(&mut mk_join(&s)).unwrap();
        prop_assert_eq!(&collect_batched(&mut mk_join(&storage(8)), max), &volcano);
        prop_assert_eq!(&collect_columnar(&mut mk_join(&storage(8)), max), &volcano);
        prop_assert_eq!(&collect_interleaved(&mut mk_join(&storage(8)), max), &volcano);
    }
}
