//! Property tests: the morsel-driven parallel driver over *adaptive*
//! sources. Smooth Scan and Switch Scan run as the pipeline's serial
//! shared source — their morph decisions, caches and per-probe region
//! accounting stay centralized in the one operator instance — while
//! filter and partial-aggregate stages fan out across the worker pool.
//! For every policy, trigger, order mode, worker count and morsel size,
//! the parallel run must produce the exact row sequence of the
//! single-threaded columnar driver and charge the exact same virtual
//! CPU/IO clock totals, *including across mid-scan mode switches*.

use std::ops::Bound;
use std::sync::Arc;

use proptest::prelude::*;
use smooth_core::{PolicyKind, SmoothScan, SmoothScanConfig, SwitchScan, Trigger};
use smooth_executor::parallel::{
    run_pipeline, ParallelPipeline, ParallelSource, SinkSpec, StageSpec,
};
use smooth_executor::{AggFunc, BoxedOperator, Filter, HashAggregate, Operator, Predicate};
use smooth_index::BTreeIndex;
use smooth_storage::{CpuCosts, DeviceProfile, HeapFile, HeapLoader, Storage, StorageConfig};
use smooth_types::{Column, DataType, Row, Schema, Value};

const WORKER_GRID: [usize; 4] = [1, 2, 4, 8];

fn build_table(keys: &[i64]) -> (Arc<HeapFile>, Arc<BTreeIndex>) {
    let schema = Schema::new(vec![
        Column::new("c0", DataType::Int64),
        Column::new("c1", DataType::Int64),
        Column::new("pad", DataType::Text),
    ])
    .unwrap();
    let mut l = HeapLoader::new_mem("t", schema);
    for (i, &k) in keys.iter().enumerate() {
        l.push(&Row::new(vec![Value::Int(i as i64), Value::Int(k), Value::str("p".repeat(70))]))
            .unwrap();
    }
    let heap = Arc::new(l.finish().unwrap());
    let index = Arc::new(BTreeIndex::build_from_heap("i", &heap, 1).unwrap());
    (heap, index)
}

fn storage(pool: usize) -> Storage {
    Storage::new(StorageConfig {
        device: DeviceProfile::custom("t", 1, 10),
        cpu: CpuCosts::default(),
        pool_pages: pool,
    })
}

/// Drain a serial operator columnar-only at a fixed morsel size, so the
/// shared-source parallel run sees identical pull boundaries.
fn collect_serial(op: &mut dyn Operator, max: usize) -> Vec<Row> {
    op.open().unwrap();
    let mut rows = Vec::new();
    while let Some(batch) = op.next_columns(max).unwrap() {
        rows.extend(batch.into_rows());
    }
    op.close().unwrap();
    rows
}

fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Greedy),
        Just(PolicyKind::SelectivityIncrease),
        Just(PolicyKind::Elastic),
    ]
}

/// Run `source` under the parallel driver with a filter stage (and
/// optionally a partial-aggregate sink) at every worker count, asserting
/// rows and clock totals against the serial stack built by `mk_serial`.
#[allow(clippy::type_complexity)]
fn check_against_serial(
    mk_source: &dyn Fn(&Storage) -> BoxedOperator,
    stage_pred: &Predicate,
    aggregate: bool,
    pool: usize,
    max: usize,
) -> std::result::Result<(), TestCaseError> {
    let aggs = vec![AggFunc::CountStar, AggFunc::Sum(0), AggFunc::Min(0), AggFunc::Max(1)];
    let s_serial = storage(pool);
    let filtered: BoxedOperator = Box::new(Filter::new(mk_source(&s_serial), stage_pred.clone()));
    let expected = if aggregate {
        let mut agg =
            HashAggregate::new(filtered, vec![1], aggs.clone(), s_serial.clone()).unwrap();
        collect_serial(&mut agg, max)
    } else {
        let mut op = filtered;
        collect_serial(op.as_mut(), max)
    };
    for workers in WORKER_GRID {
        let s_par = storage(pool);
        let pipeline = ParallelPipeline {
            source: ParallelSource::Shared { op: mk_source(&s_par) },
            builds: Vec::new(),
            stages: vec![StageSpec::Filter(stage_pred.clone())],
            sink: if aggregate {
                SinkSpec::Aggregate { group_cols: vec![1], aggs: aggs.clone(), merge_exact: true }
            } else {
                SinkSpec::Collect
            },
            storage: s_par.clone(),
            morsel_rows: max,
        };
        let got = run_pipeline(pipeline, workers).unwrap();
        prop_assert!(got == expected, "rows diverge at {workers} workers (max {max})");
        prop_assert!(
            s_par.clock().snapshot() == s_serial.clock().snapshot(),
            "clock totals diverge at {workers} workers (max {max})"
        );
        prop_assert!(
            s_par.io_snapshot() == s_serial.io_snapshot(),
            "I/O counters diverge at {workers} workers"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Smooth Scan as a shared parallel source across every policy,
    /// trigger and order mode — including OptimizerDriven triggers that
    /// flip Mode 0 → morphing mid-scan — with filter / partial-aggregate
    /// stages fanning out above it.
    #[test]
    fn parallel_smooth_scan_equals_serial(
        keys in proptest::collection::vec(0i64..150, 50..900),
        lo in 0i64..150,
        width in 0i64..170,
        policy in arb_policy(),
        ordered in any::<bool>(),
        trigger_card in prop_oneof![Just(None), (0u64..200).prop_map(Some)],
        aggregate in any::<bool>(),
        pool in 6usize..48,
        max in 1usize..90,
        stage_hi in 0i64..900,
    ) {
        let (heap, index) = build_table(&keys);
        let hi = lo + width;
        let trigger = match trigger_card {
            None => Trigger::Eager,
            Some(c) => Trigger::OptimizerDriven {
                estimated_cardinality: c,
                policy: PolicyKind::Elastic,
            },
        };
        let config = SmoothScanConfig::default()
            .with_policy(policy)
            .with_order(ordered)
            .with_trigger(trigger);
        let mk_source = |s: &Storage| -> BoxedOperator {
            Box::new(SmoothScan::new(
                Arc::clone(&heap),
                Arc::clone(&index),
                s.clone(),
                1,
                Bound::Included(lo),
                Bound::Excluded(hi),
                Predicate::True,
                config,
            ))
        };
        check_against_serial(
            &mk_source,
            &Predicate::int_lt(0, stage_hi),
            aggregate,
            pool,
            max,
        )?;
    }

    /// Switch Scan as a shared parallel source across its index →
    /// full-scan cliff.
    #[test]
    fn parallel_switch_scan_equals_serial(
        keys in proptest::collection::vec(0i64..100, 50..700),
        hi in 0i64..110,
        estimate in 0u64..400,
        aggregate in any::<bool>(),
        max in 1usize..90,
        stage_hi in 0i64..700,
    ) {
        let (heap, index) = build_table(&keys);
        let mk_source = |s: &Storage| -> BoxedOperator {
            Box::new(SwitchScan::new(
                Arc::clone(&heap),
                Arc::clone(&index),
                s.clone(),
                1,
                Bound::Included(0),
                Bound::Excluded(hi),
                Predicate::True,
                estimate,
            ))
        };
        check_against_serial(
            &mk_source,
            &Predicate::int_lt(0, stage_hi),
            aggregate,
            16,
            max,
        )?;
    }
}
