//! The Result Cache: qualifying tuples found ahead of the cursor
//! (Section IV-A).
//!
//! When Smooth Scan must respect an interesting order, tuples discovered on
//! speculatively fetched pages cannot be emitted immediately; they wait in
//! the Result Cache until the index cursor reaches their `(key, tid)`.
//! Following the paper:
//!
//! * the cache is **partitioned by key range**, with boundaries taken from
//!   the index root page ("the root page is a good indicator of the key
//!   value distributions");
//! * emission probes by exact `(key, tid)`;
//! * deletion is **bulk**: once the cursor passes a partition's upper
//!   boundary, the whole partition is dropped at once — and the cursor
//!   bookkeeping itself is *batch-aware*: Ordered Smooth Scan records the
//!   cursor position per probe ([`ResultCache::defer_advance`]) but the
//!   eviction sweep runs once per emitted batch
//!   ([`ResultCache::flush_advance`]), not once per cursor key;
//! * under memory pressure, partitions whose key ranges are furthest from
//!   the cursor spill to overflow files and are charged sequential I/O to
//!   write and later re-read.

use std::collections::HashMap;

use smooth_storage::Storage;
use smooth_types::{Row, Tid};

/// Counters reported by Fig. 9a.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Tuples inserted over the operator's lifetime.
    pub inserts: u64,
    /// Probe calls.
    pub requests: u64,
    /// Probes answered from the cache.
    pub hits: u64,
    /// Tuples dropped by bulk partition eviction.
    pub evicted: u64,
    /// High-water mark of resident tuples.
    pub max_resident: u64,
    /// Tuples currently resident.
    pub resident: u64,
    /// Tuples written to overflow files under memory pressure.
    pub spilled: u64,
    /// Tuples read back from overflow files.
    pub unspilled: u64,
}

#[derive(Debug, Default)]
struct Partition {
    rows: HashMap<(i64, Tid), Row>,
    /// Spilled to an overflow file: contents kept (simulated file), but
    /// access requires a charged re-read.
    spilled: bool,
}

/// Key-range-partitioned cache of rows found ahead of the cursor.
pub struct ResultCache {
    /// `bounds[i]` is the *exclusive* upper key of partition `i`;
    /// the last partition is unbounded.
    bounds: Vec<i64>,
    parts: Vec<Partition>,
    /// Lowest partition not yet evicted (cursor position).
    current: usize,
    /// Highest cursor key recorded since the last eviction sweep.
    pending_advance: Option<i64>,
    /// Spill when resident tuples exceed this (None = unlimited).
    spill_threshold: Option<usize>,
    /// Approximate bytes per row for spill I/O accounting.
    row_bytes: usize,
    stats: ResultCacheStats,
}

impl ResultCache {
    /// Build from index-root separator keys, using up to `partitions`
    /// ranges. `row_bytes` sizes spill I/O.
    pub fn new(separators: &[i64], partitions: usize, row_bytes: usize) -> Self {
        let partitions = partitions.max(1);
        let mut bounds: Vec<i64> = Vec::new();
        if partitions > 1 && !separators.is_empty() {
            // Sample `partitions - 1` boundaries evenly from the separators.
            let want = (partitions - 1).min(separators.len());
            for i in 1..=want {
                let idx = i * separators.len() / (want + 1);
                bounds.push(separators[idx.min(separators.len() - 1)]);
            }
            bounds.dedup();
        }
        let nparts = bounds.len() + 1;
        ResultCache {
            bounds,
            parts: (0..nparts).map(|_| Partition::default()).collect(),
            current: 0,
            pending_advance: None,
            spill_threshold: None,
            row_bytes: row_bytes.max(1),
            stats: ResultCacheStats::default(),
        }
    }

    /// Enable spilling beyond `max_resident_tuples`.
    pub fn with_spill_threshold(mut self, max_resident_tuples: usize) -> Self {
        self.spill_threshold = Some(max_resident_tuples.max(1));
        self
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    fn partition_of(&self, key: i64) -> usize {
        // First partition whose exclusive upper bound exceeds the key.
        self.bounds.partition_point(|&b| b <= key)
    }

    /// Insert a tuple found ahead of the cursor.
    pub fn insert(&mut self, storage: &Storage, key: i64, tid: Tid, row: Row) {
        storage.clock().charge_cpu(storage.cpu().hash_op_ns);
        let p = self.partition_of(key);
        debug_assert!(p >= self.current, "insert behind the cursor");
        let part = &mut self.parts[p];
        if part.spilled {
            // Appending to a spilled partition keeps it on "disk".
            let ns = Self::spill_io_ns(storage, self.row_bytes, 1);
            storage.clock().charge_io(ns);
            self.stats.spilled += 1;
        }
        if part.rows.insert((key, tid), row).is_none() {
            self.stats.inserts += 1;
            if !part.spilled {
                self.stats.resident += 1;
                self.stats.max_resident = self.stats.max_resident.max(self.stats.resident);
            }
        }
        self.maybe_spill(storage);
    }

    /// Probe for the tuple the cursor just reached.
    pub fn probe(&mut self, storage: &Storage, key: i64, tid: Tid) -> Option<Row> {
        storage.clock().charge_cpu(storage.cpu().hash_op_ns);
        self.stats.requests += 1;
        let p = self.partition_of(key);
        if self.parts[p].spilled {
            self.unspill(storage, p);
        }
        let row = self.parts[p].rows.get(&(key, tid)).cloned();
        if row.is_some() {
            self.stats.hits += 1;
        }
        row
    }

    /// Record the cursor position without sweeping. Probes and inserts
    /// are unaffected by a deferred advance (a key never evicts its own
    /// partition), so the sweep can wait for the next batch boundary.
    pub fn defer_advance(&mut self, key: i64) {
        self.pending_advance = Some(match self.pending_advance {
            Some(prev) => prev.max(key),
            None => key,
        });
    }

    /// Run the eviction sweep for every cursor position recorded since
    /// the last flush — the batch-boundary amortization of the per-key
    /// partition bookkeeping.
    pub fn flush_advance(&mut self) {
        if let Some(key) = self.pending_advance.take() {
            self.advance_to(key);
        }
    }

    /// Advance the cursor to `key`, bulk-dropping every partition whose key
    /// range lies entirely behind it.
    pub fn advance_to(&mut self, key: i64) {
        while self.current < self.bounds.len() && self.bounds[self.current] <= key {
            let part = std::mem::take(&mut self.parts[self.current]);
            let n = part.rows.len() as u64;
            self.stats.evicted += n;
            if !part.spilled {
                self.stats.resident -= n;
            }
            self.current += 1;
        }
    }

    /// Drop everything (operator close).
    pub fn clear(&mut self) {
        self.pending_advance = None;
        for part in &mut self.parts {
            let n = part.rows.len() as u64;
            self.stats.evicted += n;
            if !part.spilled {
                self.stats.resident = self.stats.resident.saturating_sub(n);
            }
            part.rows.clear();
            part.spilled = false;
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ResultCacheStats {
        self.stats
    }

    /// Cost of writing or reading `tuples` rows of an overflow file: one
    /// seek plus sequential page transfers on the scan's device.
    ///
    /// Shared invariant: this routes through the engine-wide overflow-file
    /// formula ([`smooth_executor::spill_io_ns`]) so the Result Cache, the
    /// grace hash join and the external sort all price spill bytes
    /// identically — one charged sequential run on the scan's device,
    /// never the disk-arm counters (see `docs/larger_than_memory.md`).
    /// `row_bytes` is clamped to ≥ 1 at construction, so `tuples > 0`
    /// always yields a non-zero transfer.
    fn spill_io_ns(storage: &Storage, row_bytes: usize, tuples: u64) -> u64 {
        smooth_executor::spill_io_ns(&storage.device(), tuples * row_bytes as u64)
    }

    fn maybe_spill(&mut self, storage: &Storage) {
        let Some(limit) = self.spill_threshold else { return };
        // Sweep any deferred cursor advance *before* the spill decision:
        // the batched protocols defer the eviction sweep to morsel
        // boundaries, so without this `resident` could cross the
        // threshold mid-batch and charge spill I/O the row-at-a-time
        // protocol never pays. Evicting first makes the resident count at
        // every spill decision identical no matter how the protocol
        // batches its sweeps — volcano, row-batch and columnar drivers
        // charge byte-identical spill I/O. (Without a spill threshold the
        // sweep stays at the protocol boundary, unchanged.)
        self.flush_advance();
        while self.stats.resident as usize > limit {
            // Spill the resident partition furthest from the cursor
            // ("caches containing the ranges the furthest from the current
            // key range are spilled into the overflow files").
            let victim = (self.current..self.parts.len())
                .rev()
                .find(|&i| !self.parts[i].spilled && !self.parts[i].rows.is_empty());
            let Some(v) = victim else { return };
            let n = self.parts[v].rows.len() as u64;
            if v == self.current && self.parts.len() == 1 {
                return; // never spill the only active partition
            }
            self.parts[v].spilled = true;
            self.stats.spilled += n;
            self.stats.resident -= n;
            let ns = Self::spill_io_ns(storage, self.row_bytes, n);
            storage.clock().charge_io(ns);
        }
    }

    fn unspill(&mut self, storage: &Storage, p: usize) {
        let part = &mut self.parts[p];
        let n = part.rows.len() as u64;
        part.spilled = false;
        self.stats.unspilled += n;
        self.stats.resident += n;
        self.stats.max_resident = self.stats.max_resident.max(self.stats.resident);
        let ns = Self::spill_io_ns(storage, self.row_bytes, n);
        storage.clock().charge_io(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_types::Value;

    fn storage() -> Storage {
        Storage::default_hdd()
    }

    fn row(v: i64) -> Row {
        Row::new(vec![Value::Int(v)])
    }

    #[test]
    fn insert_probe_roundtrip() {
        let s = storage();
        let mut c = ResultCache::new(&[100, 200, 300], 4, 64);
        c.insert(&s, 150, Tid::new(1, 1), row(150));
        assert_eq!(c.probe(&s, 150, Tid::new(1, 1)), Some(row(150)));
        assert_eq!(c.probe(&s, 150, Tid::new(1, 2)), None);
        let st = c.stats();
        assert_eq!((st.inserts, st.requests, st.hits), (1, 2, 1));
    }

    #[test]
    fn partitions_follow_separators() {
        let c = ResultCache::new(&(0..100).collect::<Vec<i64>>(), 8, 64);
        assert_eq!(c.partition_count(), 8);
        let c = ResultCache::new(&[], 8, 64);
        assert_eq!(c.partition_count(), 1);
        let c = ResultCache::new(&[5], 1, 64);
        assert_eq!(c.partition_count(), 1);
    }

    #[test]
    fn bulk_eviction_on_advance() {
        let s = storage();
        let mut c = ResultCache::new(&[10, 20, 30], 4, 64);
        c.insert(&s, 5, Tid::new(0, 0), row(5));
        c.insert(&s, 15, Tid::new(0, 1), row(15));
        c.insert(&s, 25, Tid::new(0, 2), row(25));
        c.insert(&s, 35, Tid::new(0, 3), row(35));
        assert_eq!(c.stats().resident, 4);
        c.advance_to(20); // passes partitions [_,10) and [10,20)
        let st = c.stats();
        assert_eq!(st.evicted, 2);
        assert_eq!(st.resident, 2);
        // Items at/ahead of the cursor survive.
        assert_eq!(c.probe(&s, 25, Tid::new(0, 2)), Some(row(25)));
        assert_eq!(c.probe(&s, 35, Tid::new(0, 3)), Some(row(35)));
    }

    #[test]
    fn deferred_advance_sweeps_once_at_flush() {
        let s = storage();
        let mut c = ResultCache::new(&[10, 20, 30], 4, 64);
        c.insert(&s, 5, Tid::new(0, 0), row(5));
        c.insert(&s, 15, Tid::new(0, 1), row(15));
        c.insert(&s, 25, Tid::new(0, 2), row(25));
        // Recording cursor keys evicts nothing yet …
        c.defer_advance(12);
        c.defer_advance(22);
        assert_eq!(c.stats().evicted, 0);
        // … and a deferred advance never hides a probe of the current key.
        assert_eq!(c.probe(&s, 25, Tid::new(0, 2)), Some(row(25)));
        // The flush sweeps to the highest recorded key.
        c.flush_advance();
        let st = c.stats();
        assert_eq!(st.evicted, 2);
        assert_eq!(st.resident, 1);
        // A second flush is a no-op.
        c.flush_advance();
        assert_eq!(c.stats().evicted, 2);
    }

    #[test]
    fn boundary_key_does_not_evict_its_own_partition() {
        let s = storage();
        let mut c = ResultCache::new(&[10], 2, 64);
        c.insert(&s, 10, Tid::new(0, 0), row(10));
        c.advance_to(10); // partition [10, ∞) must survive
        assert_eq!(c.probe(&s, 10, Tid::new(0, 0)), Some(row(10)));
        assert_eq!(c.stats().evicted, 0);
    }

    #[test]
    fn spilling_under_pressure_and_transparent_unspill() {
        let s = storage();
        let mut c = ResultCache::new(&[100, 200, 300], 4, 64).with_spill_threshold(2);
        // Fill three partitions; threshold 2 forces the furthest to spill.
        c.insert(&s, 50, Tid::new(0, 0), row(50));
        c.insert(&s, 150, Tid::new(0, 1), row(150));
        let io_before = s.clock().snapshot().io_ns;
        c.insert(&s, 350, Tid::new(0, 2), row(350)); // exceeds threshold
        let st = c.stats();
        assert!(st.spilled >= 1, "furthest partition spilled: {st:?}");
        assert!(s.clock().snapshot().io_ns > io_before, "spill charged I/O");
        // Probing the spilled partition brings it back (charged) and hits.
        assert_eq!(c.probe(&s, 350, Tid::new(0, 2)), Some(row(350)));
        assert!(c.stats().unspilled >= 1);
    }

    #[test]
    fn deferred_sweep_never_changes_spill_charges() {
        // PR 3 latent divergence, pinned: the same insert/advance key
        // sequence must charge identical spill I/O whether the eviction
        // sweep runs per cursor key (the row-at-a-time protocol) or is
        // deferred to a batch boundary (the batched protocols). The
        // sweep-before-spill rule in `maybe_spill` makes the resident
        // count at every spill decision protocol-independent.
        let bounds = [10i64, 20, 30];
        let limit = 2;
        // Per-key sweeps: the cursor advance evicts [_,10) before the
        // third insert, so resident never crosses the limit — no spill.
        let s_eager = storage();
        let mut eager = ResultCache::new(&bounds, 4, 64).with_spill_threshold(limit);
        eager.insert(&s_eager, 5, Tid::new(0, 0), row(5));
        eager.defer_advance(6);
        eager.flush_advance();
        eager.insert(&s_eager, 15, Tid::new(0, 1), row(15));
        eager.defer_advance(12);
        eager.flush_advance(); // volcano sweeps here, before the next insert
        eager.insert(&s_eager, 25, Tid::new(0, 2), row(25));
        eager.flush_advance();
        // Deferred sweeps: identical sequence, but the sweep for key 12
        // waits for the batch boundary after the third insert.
        let s_deferred = storage();
        let mut deferred = ResultCache::new(&bounds, 4, 64).with_spill_threshold(limit);
        deferred.insert(&s_deferred, 5, Tid::new(0, 0), row(5));
        deferred.defer_advance(6);
        deferred.insert(&s_deferred, 15, Tid::new(0, 1), row(15));
        deferred.defer_advance(12);
        deferred.insert(&s_deferred, 25, Tid::new(0, 2), row(25));
        deferred.flush_advance();
        assert_eq!(
            s_deferred.clock().snapshot(),
            s_eager.clock().snapshot(),
            "deferred sweep must not charge spill I/O the eager sweep never pays: {:?} vs {:?}",
            deferred.stats(),
            eager.stats()
        );
        assert_eq!(deferred.stats().spilled, eager.stats().spilled);
        assert_eq!(eager.stats().spilled, 0, "eviction keeps residency under the threshold");
    }

    #[test]
    fn clear_releases_everything() {
        let s = storage();
        let mut c = ResultCache::new(&[10], 2, 64);
        c.insert(&s, 5, Tid::new(0, 0), row(5));
        c.insert(&s, 15, Tid::new(0, 1), row(15));
        c.clear();
        assert_eq!(c.stats().resident, 0);
        assert_eq!(c.probe(&s, 5, Tid::new(0, 0)), None);
    }

    #[test]
    fn max_resident_high_water_mark() {
        let s = storage();
        let mut c = ResultCache::new(&[10], 2, 64);
        c.insert(&s, 1, Tid::new(0, 0), row(1));
        c.insert(&s, 2, Tid::new(0, 1), row(2));
        c.advance_to(10);
        c.insert(&s, 11, Tid::new(0, 2), row(11));
        assert_eq!(c.stats().max_resident, 2);
    }
}
