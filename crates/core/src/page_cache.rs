//! The Page-ID cache: one bit per heap page (Section IV-A).
//!
//! "To avoid processing the same heap page twice ... Smooth Scan keeps
//! track of the pages it has read and records them in a Page ID Cache. The
//! Page ID Cache is a bitmap structure with one bit per page." Its size is
//! negligible — the paper reports 140 KB for a 1 M-page LINEITEM — which
//! the `memory_bytes` accessor lets experiments confirm.

use smooth_types::PageId;

/// Bitmap of visited heap pages.
#[derive(Debug, Clone)]
pub struct PageIdCache {
    bits: Vec<u64>,
    pages: u32,
    set_count: u32,
}

impl PageIdCache {
    /// A cache for a heap of `pages` pages, all unvisited.
    pub fn new(pages: u32) -> Self {
        PageIdCache { bits: vec![0u64; (pages as usize).div_ceil(64)], pages, set_count: 0 }
    }

    /// Number of pages the cache covers.
    pub fn capacity(&self) -> u32 {
        self.pages
    }

    /// Whether `page` has been visited.
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        debug_assert!(page.0 < self.pages, "page {page} out of range");
        let i = page.0 as usize;
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Mark `page` visited; returns `true` if it was newly set.
    #[inline]
    pub fn insert(&mut self, page: PageId) -> bool {
        debug_assert!(page.0 < self.pages, "page {page} out of range");
        let i = page.0 as usize;
        let mask = 1u64 << (i % 64);
        let word = &mut self.bits[i / 64];
        if *word & mask == 0 {
            *word |= mask;
            self.set_count += 1;
            true
        } else {
            false
        }
    }

    /// Number of visited pages.
    pub fn len(&self) -> u32 {
        self.set_count
    }

    /// `true` when no page is marked.
    pub fn is_empty(&self) -> bool {
        self.set_count == 0
    }

    /// Heap footprint of the bitmap in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Length of the run of *unvisited* pages starting at `page`, capped at
    /// `max`. Zero when `page` itself is visited. Smooth Scan uses this to
    /// split a morphing region into device requests that skip already
    /// processed pages (the ✗ marks of Fig. 3).
    pub fn unvisited_run(&self, page: PageId, max: u32) -> u32 {
        let limit = max.min(self.pages.saturating_sub(page.0));
        let mut n = 0;
        while n < limit && !self.contains(PageId(page.0 + n)) {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_membership() {
        let mut c = PageIdCache::new(1000);
        assert!(!c.contains(PageId(3)));
        assert!(c.insert(PageId(3)));
        assert!(c.contains(PageId(3)));
        assert!(!c.insert(PageId(3)), "second insert is not new");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn size_matches_paper_scale() {
        // 1 M pages → 128 KB of bitmap + change (paper: 140 KB, §VI-B).
        let c = PageIdCache::new(1_000_000);
        assert_eq!(c.memory_bytes(), 1_000_000usize.div_ceil(64) * 8);
        assert!(c.memory_bytes() < 140 * 1024);
    }

    #[test]
    fn unvisited_run_skips_processed_pages() {
        let mut c = PageIdCache::new(100);
        c.insert(PageId(5));
        assert_eq!(c.unvisited_run(PageId(0), 100), 5);
        assert_eq!(c.unvisited_run(PageId(5), 100), 0);
        assert_eq!(c.unvisited_run(PageId(6), 3), 3);
        // capped at the end of the heap
        assert_eq!(c.unvisited_run(PageId(98), 100), 2);
        assert_eq!(c.unvisited_run(PageId(99), 1), 1);
    }

    #[test]
    fn boundary_pages() {
        let mut c = PageIdCache::new(65);
        assert!(c.insert(PageId(63)));
        assert!(c.insert(PageId(64)));
        assert!(c.contains(PageId(63)) && c.contains(PageId(64)));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn empty_heap() {
        let c = PageIdCache::new(0);
        assert_eq!(c.capacity(), 0);
        assert_eq!(c.unvisited_run(PageId(0), 10), 0);
    }
}
