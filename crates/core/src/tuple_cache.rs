//! The Tuple-ID cache: one bit per tuple slot (Section IV-A).
//!
//! Needed only by the Optimizer- and SLA-driven triggers: tuples produced
//! by the traditional index scan *before* morphing starts must not be
//! produced again when Smooth Scan later processes their whole page. (With
//! the Eager strategy the cache is unnecessary — a point the paper credits
//! to strict `(indexkey, TID)` ordering.)

use smooth_types::Tid;

/// Bitmap of already-produced tuples, addressed by dense TID ordinal.
#[derive(Debug, Clone)]
pub struct TupleIdCache {
    bits: Vec<u64>,
    slots_per_page: u32,
    set_count: u64,
}

impl TupleIdCache {
    /// A cache for a heap of `pages` pages with at most `slots_per_page`
    /// tuples per page.
    pub fn new(pages: u32, slots_per_page: u32) -> Self {
        let slots = pages as u64 * slots_per_page as u64;
        TupleIdCache {
            bits: vec![0u64; (slots as usize).div_ceil(64)],
            slots_per_page,
            set_count: 0,
        }
    }

    /// Whether the tuple has been produced already.
    #[inline]
    pub fn contains(&self, tid: Tid) -> bool {
        let i = tid.ordinal(self.slots_per_page) as usize;
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Record a produced tuple; returns `true` if newly set.
    #[inline]
    pub fn insert(&mut self, tid: Tid) -> bool {
        let i = tid.ordinal(self.slots_per_page) as usize;
        let mask = 1u64 << (i % 64);
        let word = &mut self.bits[i / 64];
        if *word & mask == 0 {
            *word |= mask;
            self.set_count += 1;
            true
        } else {
            false
        }
    }

    /// Number of recorded tuples.
    pub fn len(&self) -> u64 {
        self.set_count
    }

    /// `true` when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.set_count == 0
    }

    /// Heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_membership() {
        let mut c = TupleIdCache::new(100, 120);
        let t = Tid::new(40, 77);
        assert!(!c.contains(t));
        assert!(c.insert(t));
        assert!(c.contains(t));
        assert!(!c.insert(t));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn distinct_tids_do_not_collide() {
        let mut c = TupleIdCache::new(10, 120);
        c.insert(Tid::new(0, 119));
        assert!(!c.contains(Tid::new(1, 0)));
        c.insert(Tid::new(1, 0));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn memory_is_one_bit_per_slot() {
        let c = TupleIdCache::new(1000, 128);
        assert_eq!(c.memory_bytes(), (1000 * 128 / 64) * 8);
    }
}
