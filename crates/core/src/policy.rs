//! Morphing policies: when and how fast the morphing region grows
//! (Section III-B).
//!
//! The policy owns the *morph size* — how many adjacent pages each index
//! probe drags in. Size 1 is Mode 1 (entire-page probe); anything larger is
//! Mode 2 (flattening). Growth is multiplicative by
//! [`MorphPolicy::GROWTH_FACTOR`] (Eq. 17), capped by the operator's
//! maximum region, and — for Elastic only — shrinks through sparse regions
//! so skew becomes an opportunity instead of a liability (Section VI-D).

/// Which policy drives the morph-size updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Expand after every probe: fastest convergence to a full scan, worst
    /// low-selectivity overhead.
    Greedy,
    /// Expand only when local selectivity exceeds global selectivity.
    SelectivityIncrease,
    /// Like Selectivity-Increase, but also *shrinks* through sparse
    /// regions. The paper's most robust policy.
    Elastic,
}

/// Mutable morphing state: region size plus the selectivity counters of
/// Eqs. (1) and (2).
#[derive(Debug, Clone)]
pub struct MorphPolicy {
    kind: PolicyKind,
    region_pages: u32,
    max_region_pages: u32,
    /// `#P_seen`: pages fetched by morphing so far.
    pages_seen: u64,
    /// `#P_res`: fetched pages that contained at least one result.
    pages_with_results: u64,
}

impl MorphPolicy {
    /// Region growth/shrink factor (Eq. 17).
    pub const GROWTH_FACTOR: u32 = 2;

    /// Default region cap: 2 K pages = 16 MB, the optimum found by the
    /// paper's sensitivity analysis (Section VI-D, "Impact of the
    /// Flattening Access Mode").
    pub const DEFAULT_MAX_REGION: u32 = 2048;

    /// A policy starting in Mode 1 (single-page regions).
    pub fn new(kind: PolicyKind, max_region_pages: u32) -> Self {
        MorphPolicy {
            kind,
            region_pages: 1,
            max_region_pages: max_region_pages.max(1),
            pages_seen: 0,
            pages_with_results: 0,
        }
    }

    /// The policy flavour.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// Current morph size in pages (1 = Mode 1, >1 = Mode 2).
    pub fn region_pages(&self) -> u32 {
        self.region_pages
    }

    /// Global selectivity over pages seen so far (Eq. 2), or `None` before
    /// the first region.
    pub fn global_selectivity(&self) -> Option<f64> {
        (self.pages_seen > 0).then(|| self.pages_with_results as f64 / self.pages_seen as f64)
    }

    /// `#P_seen` so far.
    pub fn pages_seen(&self) -> u64 {
        self.pages_seen
    }

    /// `#P_res` so far.
    pub fn pages_with_results(&self) -> u64 {
        self.pages_with_results
    }

    /// Morphing accuracy (Fig. 9b): fraction of fetched pages that held
    /// results.
    pub fn accuracy(&self) -> Option<f64> {
        self.global_selectivity()
    }

    /// Record one completed morphing region (`pages` fetched, of which
    /// `pages_with_results` held matches) and update the morph size.
    pub fn observe_region(&mut self, pages: u64, pages_with_results: u64) {
        debug_assert!(pages_with_results <= pages);
        if pages == 0 {
            return;
        }
        let local = pages_with_results as f64 / pages as f64;
        let global = self.global_selectivity();
        self.pages_seen += pages;
        self.pages_with_results += pages_with_results;
        // "Denser" means at least as dense as everything seen so far. The
        // comparison is non-strict: at a uniform density the fixed point
        // must be growth, otherwise a 100%-selectivity scan would stay in
        // Mode 1 forever instead of converging to sequential behaviour
        // (Fig. 5b shows Smooth Scan within 20% of Full Scan there).
        let denser = pages_with_results > 0 && global.is_none_or(|g| local >= g);
        match self.kind {
            PolicyKind::Greedy => self.grow(),
            PolicyKind::SelectivityIncrease => {
                if denser {
                    self.grow();
                }
            }
            PolicyKind::Elastic => {
                if denser {
                    self.grow();
                } else {
                    self.shrink();
                }
            }
        }
    }

    fn grow(&mut self) {
        self.region_pages =
            (self.region_pages.saturating_mul(Self::GROWTH_FACTOR)).min(self.max_region_pages);
    }

    fn shrink(&mut self) {
        self.region_pages = (self.region_pages / Self::GROWTH_FACTOR).max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_doubles_every_region_up_to_cap() {
        let mut p = MorphPolicy::new(PolicyKind::Greedy, 16);
        let sizes: Vec<u32> = (0..6)
            .map(|_| {
                let s = p.region_pages();
                p.observe_region(s as u64, 0); // even empty regions grow
                s
            })
            .collect();
        assert_eq!(sizes, vec![1, 2, 4, 8, 16, 16]);
    }

    #[test]
    fn selectivity_increase_grows_only_on_denser_regions() {
        let mut p = MorphPolicy::new(PolicyKind::SelectivityIncrease, 1024);
        p.observe_region(1, 1); // first hit grows
        assert_eq!(p.region_pages(), 2);
        p.observe_region(2, 0); // sparse: SI never shrinks
        assert_eq!(p.region_pages(), 2);
        // global is now 1/3; local 1/2 > 1/3 → grow
        p.observe_region(2, 1);
        assert_eq!(p.region_pages(), 4);
        // local below global → keep (SI never shrinks)
        p.observe_region(10, 1); // local 0.1 < global 0.4
        assert_eq!(p.region_pages(), 4);
    }

    #[test]
    fn elastic_shrinks_through_sparse_regions() {
        let mut p = MorphPolicy::new(PolicyKind::Elastic, 1024);
        // Dense head: grow repeatedly.
        p.observe_region(1, 1);
        p.observe_region(2, 2);
        p.observe_region(4, 4);
        assert_eq!(p.region_pages(), 8);
        // Sparse region: halve back.
        p.observe_region(8, 0);
        assert_eq!(p.region_pages(), 4);
        p.observe_region(4, 0);
        p.observe_region(2, 0);
        p.observe_region(1, 0);
        assert_eq!(p.region_pages(), 1, "floors at Mode 1");
    }

    #[test]
    fn counters_accumulate() {
        let mut p = MorphPolicy::new(PolicyKind::Elastic, 64);
        p.observe_region(10, 5);
        p.observe_region(10, 0);
        assert_eq!(p.pages_seen(), 20);
        assert_eq!(p.pages_with_results(), 5);
        assert!((p.accuracy().unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_region_is_ignored() {
        let mut p = MorphPolicy::new(PolicyKind::Greedy, 64);
        p.observe_region(0, 0);
        assert_eq!(p.region_pages(), 1);
        assert_eq!(p.global_selectivity(), None);
    }

    #[test]
    fn mode1_only_via_cap_of_one() {
        let mut p = MorphPolicy::new(PolicyKind::Greedy, 1);
        p.observe_region(1, 1);
        p.observe_region(1, 1);
        assert_eq!(p.region_pages(), 1);
    }
}
