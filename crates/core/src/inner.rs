//! Smooth Scan as a *parameterized path*: the inner side of an
//! index-nested-loop join (Section IV-B).
//!
//! "If Smooth Scan serves as an inner input to an INLJ join, the results
//! per join key could be produced in an arbitrary order. Smooth Scan thus
//! performs morphing per key value which reduces the number of repeated
//! and random accesses for that particular key" — and, one step further,
//! "by performing caching of additional (qualifying) tuples from the inner
//! input found along the way, INLJ morphs into a variant of Hash Join over
//! time, with the index used only when a tuple is not found in the cache."
//!
//! [`SmoothInnerPath`] implements exactly that: every heap page fetched
//! for one probe is *harvested* — all residual-qualifying tuples on it are
//! cached under their join keys — so later probes whose matches live on
//! already-visited pages are served without touching the device. Once
//! every heap page has been visited, the structure has fully morphed into
//! a hash table and the B+-tree is no longer consulted.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use smooth_executor::{BoxedOperator, Operator, Predicate, ScanFilter};
use smooth_index::BTreeIndex;
use smooth_storage::{HeapFile, PageView, Storage};
use smooth_types::{PageId, Result, Row, RowBatch, Schema, Value};

use crate::page_cache::PageIdCache;

/// Counters for the inner path's morphing progress.
#[derive(Debug, Clone, Copy, Default)]
pub struct InnerPathMetrics {
    /// Probe calls received.
    pub probes: u64,
    /// Probes answered entirely from the harvest cache.
    pub cache_only_probes: u64,
    /// Heap pages fetched (each at most once).
    pub pages_fetched: u64,
    /// Rows harvested into the cache.
    pub rows_harvested: u64,
    /// Whether the path has fully morphed into a hash table.
    pub fully_morphed: bool,
}

/// A morphing inner access path: B+-tree look-ups that harvest whole pages
/// into a by-key cache.
pub struct SmoothInnerPath {
    heap: Arc<HeapFile>,
    index: Arc<BTreeIndex>,
    storage: Storage,
    key_col: usize,
    /// Compiled residual, probed on *encoded* tuples during the harvest —
    /// non-qualifiers are never fully decoded (the PR 2 `ScanFilter`
    /// selection pushdown, applied to the morphing INLJ).
    filter: ScanFilter,
    visited: PageIdCache,
    harvested: HashMap<i64, Vec<Row>>,
    metrics: InnerPathMetrics,
}

impl SmoothInnerPath {
    /// Build an inner path over `index` (on `key_col` of `heap`);
    /// `residual` filters harvested rows.
    pub fn new(
        heap: Arc<HeapFile>,
        index: Arc<BTreeIndex>,
        storage: Storage,
        key_col: usize,
        residual: Predicate,
    ) -> Self {
        let pages = heap.page_count();
        let filter = ScanFilter::new(residual, heap.schema());
        SmoothInnerPath {
            heap,
            index,
            storage,
            key_col,
            filter,
            visited: PageIdCache::new(pages),
            harvested: HashMap::new(),
            metrics: InnerPathMetrics::default(),
        }
    }

    /// Morphing counters.
    pub fn metrics(&self) -> InnerPathMetrics {
        self.metrics
    }

    fn harvest_page(&mut self, page_id: PageId) -> Result<()> {
        let page = self.storage.read_heap_page(&self.heap, page_id)?;
        self.visited.insert(page_id);
        self.metrics.pages_fetched += 1;
        let cpu = *self.storage.cpu();
        let view = PageView::new(&page)?;
        let slots = view.slot_count();
        let mut hash_ops = 0u64;
        for slot in 0..slots {
            let bytes = view.get(slot)?;
            let Some(row) = self.filter.filter_decode(self.heap.schema(), bytes)? else {
                continue;
            };
            if let Value::Int(k) = row.get(self.key_col) {
                let k = *k;
                hash_ops += 1;
                self.harvested.entry(k).or_default().push(row);
                self.metrics.rows_harvested += 1;
            }
        }
        // Bulk per-page charge, identical totals to the per-tuple path:
        // one inspect per slot, one hash op per harvested row.
        self.storage
            .clock()
            .charge_cpu(cpu.inspect_tuple_ns * slots as u64 + cpu.hash_op_ns * hash_ops);
        Ok(())
    }

    /// All inner rows matching `key`, in harvest order. Pages are fetched
    /// at most once across the whole join.
    pub fn probe(&mut self, key: i64) -> Result<Vec<Row>> {
        self.metrics.probes += 1;
        let cpu = *self.storage.cpu();
        self.storage.clock().charge_cpu(cpu.hash_op_ns);
        if self.metrics.fully_morphed {
            // Pure hash-join regime: the index is no longer consulted.
            self.metrics.cache_only_probes += 1;
            return Ok(self.harvested.get(&key).cloned().unwrap_or_default());
        }
        let tids = self.index.probe(&self.storage, key);
        let mut fetched_any = false;
        for tid in tids {
            self.storage.clock().charge_cpu(cpu.bitmap_op_ns);
            if !self.visited.contains(tid.page) {
                self.harvest_page(tid.page)?;
                fetched_any = true;
            }
        }
        if !fetched_any {
            self.metrics.cache_only_probes += 1;
        }
        if self.visited.len() == self.heap.page_count() {
            self.metrics.fully_morphed = true;
        }
        Ok(self.harvested.get(&key).cloned().unwrap_or_default())
    }
}

/// Index-nested-loop join whose inner side is a [`SmoothInnerPath`] — the
/// Section IV-B "morphable join" sketch made concrete.
pub struct SmoothIndexNestedLoopJoin {
    outer: BoxedOperator,
    outer_col: usize,
    inner: SmoothInnerPath,
    schema: Schema,
    pending: Vec<Row>,
    /// Outer rows pulled in batches, consumed front-to-back.
    outer_buf: VecDeque<Row>,
}

impl SmoothIndexNestedLoopJoin {
    /// `outer.outer_col = inner.key_col` via the inner path's index.
    pub fn new(outer: BoxedOperator, outer_col: usize, inner: SmoothInnerPath) -> Self {
        let schema = outer.schema().join(inner.heap.schema());
        SmoothIndexNestedLoopJoin {
            outer,
            outer_col,
            inner,
            schema,
            pending: Vec::new(),
            outer_buf: VecDeque::new(),
        }
    }

    /// The inner path's morphing counters.
    pub fn inner_metrics(&self) -> InnerPathMetrics {
        self.inner.metrics()
    }

    /// Next outer row: buffered batch first, then the child row protocol.
    fn next_outer(&mut self) -> Result<Option<Row>> {
        if let Some(row) = self.outer_buf.pop_front() {
            return Ok(Some(row));
        }
        self.outer.next()
    }

    /// Probe the morphing inner path for one outer row; matches queue in
    /// `pending` (reversed, so `pop()` preserves harvest order).
    fn probe_outer(&mut self, outer_row: Row) -> Result<()> {
        let key = match outer_row.get(self.outer_col) {
            Value::Int(k) => *k,
            Value::Null => return Ok(()),
            other => {
                return Err(smooth_types::Error::exec(format!(
                    "join key must be integer, got {other}"
                )))
            }
        };
        let matches = self.inner.probe(key)?;
        let cpu = *self.inner.storage.cpu();
        self.inner.storage.clock().charge_cpu(cpu.emit_tuple_ns * matches.len() as u64);
        debug_assert!(self.pending.is_empty(), "probe with undrained pending rows");
        for m in matches.iter().rev() {
            self.pending.push(outer_row.concat(m));
        }
        Ok(())
    }
}

impl Operator for SmoothIndexNestedLoopJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.outer.open()?;
        self.pending.clear();
        self.outer_buf.clear();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.pending.pop() {
                return Ok(Some(row));
            }
            let Some(outer_row) = self.next_outer()? else { return Ok(None) };
            self.probe_outer(outer_row)?;
        }
    }

    /// Vectorized probe loop: outer rows arrive in batches, join output
    /// leaves in batches of up to `max`.
    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let max = max.max(1);
        let mut out = Vec::new();
        loop {
            while out.len() < max {
                match self.pending.pop() {
                    Some(row) => out.push(row),
                    None => break,
                }
            }
            if out.len() >= max {
                break;
            }
            if self.outer_buf.is_empty() {
                match self.outer.next_batch(max)? {
                    Some(batch) => self.outer_buf.extend(batch.into_rows()),
                    None => break,
                }
            }
            let Some(outer_row) = self.outer_buf.pop_front() else { break };
            self.probe_outer(outer_row)?;
        }
        Ok((!out.is_empty()).then(|| RowBatch::from_rows(out)))
    }

    fn close(&mut self) -> Result<()> {
        self.pending.clear();
        self.outer_buf.clear();
        self.outer.close()
    }

    fn label(&self) -> String {
        format!(
            "SmoothIndexNestedLoopJoin [{} ⋈ {} via {}]",
            self.outer.label(),
            self.inner.heap.name(),
            self.inner.index.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_executor::operator::ValuesOp;
    use smooth_executor::{collect_rows, IndexNestedLoopJoin, JoinType};
    use smooth_storage::{CpuCosts, DeviceProfile, HeapLoader, StorageConfig};
    use smooth_types::{Column, DataType};

    /// Inner table: `fanout` rows per key, each stripe a scrambled
    /// permutation of the keys so one key's matches scatter across pages
    /// (7919 is coprime with all test key counts).
    fn inner_table(keys: i64, fanout: i64) -> (Arc<HeapFile>, Arc<BTreeIndex>) {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int64),
            Column::new("v", DataType::Int64),
            Column::new("pad", DataType::Text),
        ])
        .unwrap();
        let mut l = HeapLoader::new_mem("inner", schema);
        for rep in 0..fanout {
            for j in 0..keys {
                let k = (j * 7919 + rep * 13) % keys;
                l.push(&Row::new(vec![Value::Int(k), Value::Int(rep), Value::str("x".repeat(60))]))
                    .unwrap();
            }
        }
        let heap = Arc::new(l.finish().unwrap());
        let index = Arc::new(BTreeIndex::build_from_heap("inner_k", &heap, 0).unwrap());
        (heap, index)
    }

    fn storage() -> Storage {
        Storage::new(StorageConfig {
            device: DeviceProfile::custom("t", 1, 10),
            cpu: CpuCosts::default(),
            pool_pages: 8,
        })
    }

    fn outer(keys: &[i64]) -> BoxedOperator {
        let schema = Schema::new(vec![Column::new("fk", DataType::Int64)]).unwrap();
        Box::new(ValuesOp::new(
            schema,
            keys.iter().map(|&k| Row::new(vec![Value::Int(k)])).collect(),
        ))
    }

    fn canonical(rows: Vec<Row>) -> Vec<(i64, i64, i64)> {
        let mut v: Vec<(i64, i64, i64)> = rows
            .iter()
            .map(|r| (r.int(0).unwrap(), r.int(1).unwrap(), r.int(2).unwrap()))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn agrees_with_plain_inlj() {
        let (heap, index) = inner_table(50, 6);
        let keys: Vec<i64> = (0..120).map(|i| (i * 7) % 55).collect(); // some misses
        let s1 = storage();
        let mut plain = IndexNestedLoopJoin::new(
            outer(&keys),
            0,
            Arc::clone(&heap),
            Arc::clone(&index),
            Predicate::True,
            JoinType::Inner,
            s1,
        );
        let expected = canonical(collect_rows(&mut plain).unwrap());
        let s2 = storage();
        let inner = SmoothInnerPath::new(heap, index, s2, 0, Predicate::True);
        let mut smooth = SmoothIndexNestedLoopJoin::new(outer(&keys), 0, inner);
        let got = canonical(collect_rows(&mut smooth).unwrap());
        assert_eq!(got, expected);
        assert!(!expected.is_empty());
    }

    #[test]
    fn repeated_keys_hit_the_harvest_cache() {
        let (heap, index) = inner_table(40, 5);
        // Every key probed three times.
        let keys: Vec<i64> = (0..40).chain(0..40).chain(0..40).collect();
        let s = storage();
        let inner = SmoothInnerPath::new(heap, index, s.clone(), 0, Predicate::True);
        let mut join = SmoothIndexNestedLoopJoin::new(outer(&keys), 0, inner);
        collect_rows(&mut join).unwrap();
        let m = join.inner_metrics();
        assert_eq!(m.probes, 120);
        assert!(m.cache_only_probes >= 80, "repeat probes served from cache: {m:?}");
        // Pages fetched at most once each despite 120 probes.
        assert!(m.pages_fetched <= 40, "{m:?}");
    }

    #[test]
    fn morphs_fully_into_a_hash_join() {
        let (heap, index) = inner_table(30, 4);
        let all_keys: Vec<i64> = (0..30).collect();
        let s = storage();
        let inner = SmoothInnerPath::new(Arc::clone(&heap), index, s.clone(), 0, Predicate::True);
        let mut join = SmoothIndexNestedLoopJoin::new(outer(&all_keys), 0, inner);
        collect_rows(&mut join).unwrap();
        let m = join.inner_metrics();
        assert!(m.fully_morphed, "{m:?}");
        assert_eq!(m.pages_fetched, heap.page_count() as u64);
        // A second pass over every key must not touch the device at all.
        let io_before = s.io_snapshot().pages_read;
        let mut join2_inner = join.inner;
        for k in 0..30 {
            assert_eq!(join2_inner.probe(k).unwrap().len(), 4);
        }
        assert_eq!(s.io_snapshot().pages_read, io_before, "pure hash-join regime");
    }

    #[test]
    fn fetches_fewer_pages_than_plain_inlj_under_fanout() {
        let (heap, index) = inner_table(600, 6);
        let keys: Vec<i64> = (0..600).collect();
        // Plain INLJ with a tiny pool re-reads pages per duplicate TID.
        let s1 = storage();
        let mut plain = IndexNestedLoopJoin::new(
            outer(&keys),
            0,
            Arc::clone(&heap),
            Arc::clone(&index),
            Predicate::True,
            JoinType::Inner,
            s1.clone(),
        );
        collect_rows(&mut plain).unwrap();
        let plain_reads = s1.io_snapshot().pages_read;
        let s2 = storage();
        let inner = SmoothInnerPath::new(heap, index, s2.clone(), 0, Predicate::True);
        let mut smooth = SmoothIndexNestedLoopJoin::new(outer(&keys), 0, inner);
        collect_rows(&mut smooth).unwrap();
        let smooth_reads = s2.io_snapshot().pages_read;
        assert!(
            smooth_reads < plain_reads,
            "harvesting must cut page traffic: {smooth_reads} vs {plain_reads}"
        );
    }

    #[test]
    fn residual_filters_harvested_rows() {
        let (heap, index) = inner_table(20, 4);
        let s = storage();
        let mut inner = SmoothInnerPath::new(heap, index, s, 0, Predicate::int_lt(1, 2));
        let rows = inner.probe(5).unwrap();
        assert_eq!(rows.len(), 2, "only v < 2 qualifies");
        assert!(rows.iter().all(|r| r.int(1).unwrap() < 2));
        assert!(inner.probe(99).unwrap().is_empty());
    }
}
