//! Switch Scan: mid-operator adaptivity with a binary decision
//! (Sections III and VI-F).
//!
//! Runs a traditional index scan while monitoring the produced cardinality;
//! the moment it exceeds the optimizer's estimate, it abandons the index
//! and restarts as a full table scan, using a Tuple-ID cache to suppress
//! the tuples already produced. The total time to produce tuple
//! `estimate + 1` is therefore the index time for `estimate` tuples *plus*
//! an entire full scan — the performance cliff of Fig. 11.

use std::ops::Bound;
use std::sync::Arc;

use smooth_executor::{Operator, Predicate, ScanFilter};
use smooth_index::{BTreeIndex, IndexCursor};
use smooth_storage::{HeapFile, PageView, Storage};
use smooth_types::{ColumnBatch, ColumnBuffer, PageId, Result, Row, RowBatch, Schema, Tid};

use crate::tuple_cache::TupleIdCache;

/// Pages per full-scan readahead request after the switch.
const READAHEAD: u32 = 32;

/// The binary-switching access path.
pub struct SwitchScan {
    heap: Arc<HeapFile>,
    index: Arc<BTreeIndex>,
    storage: Storage,
    key_col: usize,
    lo: Bound<i64>,
    hi: Bound<i64>,
    /// Compiled `key range AND residual` filter, probed on encoded tuples.
    filter: ScanFilter,
    residual: Predicate,
    /// The optimizer's cardinality estimate — the switch threshold.
    estimate: u64,
    cursor: Option<IndexCursor>,
    produced: Option<TupleIdCache>,
    produced_count: u64,
    switched: bool,
    next_page: u32,
    /// Phase-2 output: full-scan refills decode qualifiers straight into
    /// this columnar FIFO, which all three protocols drain.
    out: ColumnBuffer,
}

impl SwitchScan {
    /// Build a Switch Scan with the given cardinality `estimate`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        heap: Arc<HeapFile>,
        index: Arc<BTreeIndex>,
        storage: Storage,
        key_col: usize,
        lo: Bound<i64>,
        hi: Bound<i64>,
        residual: Predicate,
        estimate: u64,
    ) -> Self {
        let full_pred =
            Predicate::and(vec![Predicate::IntRange { col: key_col, lo, hi }, residual.clone()]);
        let filter = ScanFilter::new(full_pred, heap.schema());
        let out = ColumnBuffer::for_schema(heap.schema());
        SwitchScan {
            heap,
            index,
            storage,
            key_col,
            lo,
            hi,
            filter,
            residual,
            estimate,
            cursor: None,
            produced: None,
            produced_count: 0,
            switched: false,
            next_page: 0,
            out,
        }
    }

    /// Whether the cliff was taken.
    pub fn switched(&self) -> bool {
        self.switched
    }

    /// Tuples produced by the index phase.
    pub fn index_tuples(&self) -> u64 {
        self.produced_count
    }

    /// Key column ordinal (used by planners for EXPLAIN output).
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// Phase-2 refill: read one readahead run into the columnar output
    /// buffer, skipping tuples the index phase already produced.
    /// Vectorized — the predicate is probed on the encoded tuples,
    /// qualifiers decode straight into column vectors, and the clock is
    /// charged per page with totals identical to per-tuple accounting.
    /// Returns `false` once the heap is exhausted.
    fn fill_phase2(&mut self) -> Result<bool> {
        let total = self.heap.page_count();
        if self.next_page >= total {
            return Ok(false);
        }
        let cpu = *self.storage.cpu();
        let len = READAHEAD.min(total - self.next_page);
        let pages = self.storage.read_heap_run(&self.heap, PageId(self.next_page), len)?;
        self.storage.charge_page_probes(len as u64);
        self.next_page += len;
        let produced = self.produced.as_ref().expect("opened");
        for (pid, page) in &pages {
            let view = PageView::new(page)?;
            let slots = view.slot_count();
            let mut tuples: Vec<&[u8]> = Vec::with_capacity(slots as usize);
            for slot in 0..slots {
                if produced.contains(Tid { page: *pid, slot }) {
                    continue;
                }
                tuples.push(view.get(slot)?);
            }
            let (inspected, emitted) = self.filter.fill_columns(
                self.heap.schema(),
                &tuples,
                Some(page),
                self.out.fill(),
            )?;
            self.storage.clock().charge_cpu(
                cpu.bitmap_op_ns * slots as u64
                    + cpu.inspect_tuple_ns * inspected
                    + cpu.emit_tuple_ns * emitted,
            );
        }
        Ok(true)
    }
}

impl Operator for SwitchScan {
    fn schema(&self) -> &Schema {
        self.heap.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.cursor = Some(self.index.range(&self.storage, self.lo, self.hi));
        self.produced =
            Some(TupleIdCache::new(self.heap.page_count(), self.heap.max_slots_per_page() as u32));
        self.produced_count = 0;
        self.switched = false;
        self.next_page = 0;
        self.out.reset();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        let cpu = *self.storage.cpu();
        // Phase 1: traditional index scan under cardinality monitoring.
        while !self.switched {
            let Some((_, tid)) = self.cursor.as_mut().expect("opened").next() else {
                return Ok(None);
            };
            let page = self.storage.read_heap_page(&self.heap, tid.page)?;
            self.storage.clock().charge_cpu(cpu.inspect_tuple_ns);
            let row = self.heap.decode_slot(&page, tid.slot)?;
            if !self.residual.eval(&row)? {
                continue;
            }
            if self.produced_count >= self.estimate {
                // Cardinality violated: throw away this tuple (the full
                // scan will re-find it) and restart as a full scan.
                self.switched = true;
                self.cursor = None;
                break;
            }
            self.produced_count += 1;
            self.produced.as_mut().expect("opened").insert(tid);
            self.storage.clock().charge_cpu(cpu.emit_tuple_ns);
            return Ok(Some(row));
        }
        // Phase 2: full scan, skipping already-produced tuples.
        loop {
            if let Some(row) = self.out.pop_row() {
                return Ok(Some(row));
            }
            if !self.fill_phase2()? {
                return Ok(None);
            }
        }
    }

    /// Batched Switch Scan: per-row while the index phase monitors the
    /// cardinality estimate (the switch must fire at the exact tuple), then
    /// page-run-sized drains of the full-scan phase.
    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let max = max.max(1);
        let mut rows = Vec::new();
        while rows.len() < max {
            if !self.switched {
                match self.next()? {
                    Some(row) => rows.push(row),
                    None => break,
                }
            } else if !self.out.is_drained() {
                rows.extend(self.out.pop_rows(max - rows.len()));
            } else if !self.fill_phase2()? {
                break;
            }
        }
        Ok((!rows.is_empty()).then(|| RowBatch::from_rows(rows)))
    }

    /// Columnar Switch Scan: the index phase still runs per-row (the
    /// cliff must fire at the exact tuple), the full-scan phase emits
    /// columnar morsels straight off the refill buffer.
    fn next_columns(&mut self, max: usize) -> Result<Option<ColumnBatch>> {
        let max = max.max(1);
        if !self.switched {
            let mut out = ColumnBatch::for_schema(self.heap.schema());
            while out.physical_rows() < max && !self.switched {
                match self.next()? {
                    Some(row) => out.push_owned_row(row)?,
                    None => break,
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
            if !self.switched {
                return Ok(None); // exhausted within the index phase
            }
        }
        loop {
            if let Some(batch) = self.out.pop_columns(max) {
                return Ok(Some(batch));
            }
            if !self.fill_phase2()? {
                return Ok(None);
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.cursor = None;
        self.out.reset();
        Ok(())
    }

    fn label(&self) -> String {
        format!(
            "SwitchScan({} via {}, estimate={})",
            self.heap.name(),
            self.index.name(),
            self.estimate
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_executor::collect_rows;
    use smooth_storage::{CpuCosts, DeviceProfile, HeapLoader, StorageConfig};
    use smooth_types::{Column, DataType, Schema, Value};

    fn table(rows: i64) -> (Arc<HeapFile>, Arc<BTreeIndex>) {
        let schema = Schema::new(vec![
            Column::new("c0", DataType::Int64),
            Column::new("c1", DataType::Int64),
        ])
        .unwrap();
        let mut l = HeapLoader::new_mem("t", schema);
        for i in 0..rows {
            let c1 = ((i.wrapping_mul(2654435761)) % 1000 + 1000) % 1000;
            l.push(&Row::new(vec![Value::Int(i), Value::Int(c1)])).unwrap();
        }
        let heap = Arc::new(l.finish().unwrap());
        let index = Arc::new(BTreeIndex::build_from_heap("i", &heap, 1).unwrap());
        (heap, index)
    }

    fn storage() -> Storage {
        Storage::new(StorageConfig {
            device: DeviceProfile::custom("t", 1, 10),
            cpu: CpuCosts::default(),
            pool_pages: 32,
        })
    }

    fn scan(
        heap: &Arc<HeapFile>,
        index: &Arc<BTreeIndex>,
        s: &Storage,
        hi: i64,
        estimate: u64,
    ) -> SwitchScan {
        SwitchScan::new(
            Arc::clone(heap),
            Arc::clone(index),
            s.clone(),
            1,
            Bound::Included(0),
            Bound::Excluded(hi),
            Predicate::True,
            estimate,
        )
    }

    #[test]
    fn below_estimate_behaves_like_index_scan() {
        let (heap, index) = table(3000);
        let s = storage();
        let mut sw = scan(&heap, &index, &s, 20, 1000);
        let rows = collect_rows(&mut sw).unwrap();
        assert!(!sw.switched());
        assert_eq!(rows.len() as u64, sw.index_tuples());
        // key-ordered output in the index phase
        let keys: Vec<i64> = rows.iter().map(|r| r.int(1).unwrap()).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn exceeding_estimate_switches_and_loses_no_tuples() {
        let (heap, index) = table(3000);
        let s = storage();
        let mut sw = scan(&heap, &index, &s, 500, 100);
        let rows = collect_rows(&mut sw).unwrap();
        assert!(sw.switched());
        assert_eq!(sw.index_tuples(), 100);
        // Exactly the true result set, no duplicates.
        let mut ids: Vec<i64> = rows.iter().map(|r| r.int(0).unwrap()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "no duplicates");
        let mut oracle = smooth_executor::FullTableScan::new(
            Arc::clone(&heap),
            s.clone(),
            Predicate::int_half_open(1, 0, 500),
        );
        assert_eq!(rows.len(), collect_rows(&mut oracle).unwrap().len());
    }

    #[test]
    fn switch_pays_index_cost_plus_full_scan_cost() {
        let (heap, index) = table(3000);
        // Cost of a pure full scan:
        let s_full = storage();
        let mut full = smooth_executor::FullTableScan::new(
            Arc::clone(&heap),
            s_full.clone(),
            Predicate::int_half_open(1, 0, 500),
        );
        collect_rows(&mut full).unwrap();
        let full_io = s_full.clock().snapshot().io_ns;
        // Switch Scan that tripped early:
        let s_sw = storage();
        let mut sw = scan(&heap, &index, &s_sw, 500, 50);
        collect_rows(&mut sw).unwrap();
        let sw_io = s_sw.clock().snapshot().io_ns;
        assert!(sw.switched());
        assert!(sw_io > full_io, "cliff: {sw_io} vs full {full_io}");
    }

    #[test]
    fn zero_estimate_switches_immediately() {
        let (heap, index) = table(1000);
        let s = storage();
        let mut sw = scan(&heap, &index, &s, 100, 0);
        let rows = collect_rows(&mut sw).unwrap();
        assert!(sw.switched());
        assert_eq!(sw.index_tuples(), 0);
        assert!(!rows.is_empty());
        // Full-scan phase emits in physical order.
        let ids: Vec<i64> = rows.iter().map(|r| r.int(0).unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_result_never_switches() {
        let (heap, index) = table(1000);
        let s = storage();
        let mut sw = scan(&heap, &index, &s, 0, 10);
        assert!(collect_rows(&mut sw).unwrap().is_empty());
        assert!(!sw.switched());
    }
}
