//! Morphing triggers: *when* Smooth Scan starts morphing (Section III-C).

use crate::cost_model::CostModel;
use crate::policy::PolicyKind;

/// When morphing begins, and which policy takes over afterwards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Replace the access path outright: morph from the very first tuple.
    /// No Tuple-ID cache needed (Section III-C, the paper's default).
    Eager,
    /// Run a traditional index scan until the produced cardinality exceeds
    /// the optimizer's estimate — a cardinality violation signals that the
    /// plan choice may be wrong — then morph with `policy`.
    OptimizerDriven {
        /// The optimizer's (possibly wildly wrong) cardinality estimate.
        estimated_cardinality: u64,
        /// Policy after triggering (the paper's Fig. 7b uses
        /// Selectivity-Increase here).
        policy: PolicyKind,
    },
    /// Run a traditional index scan until continuing would jeopardize a
    /// performance SLA; the switch point is precomputed from the cost
    /// model for the worst case (100% selectivity), and morphing proceeds
    /// greedily (Fig. 7b switches straight to Greedy).
    SlaDriven {
        /// The SLA: an upper bound on operator execution time.
        bound_ns: u64,
    },
}

impl Trigger {
    /// The cardinality at which the traditional index phase must end
    /// (`None` for Eager, which never runs a traditional phase).
    pub fn trigger_cardinality(&self, model: &CostModel) -> Option<u64> {
        match self {
            Trigger::Eager => None,
            Trigger::OptimizerDriven { estimated_cardinality, .. } => Some(*estimated_cardinality),
            Trigger::SlaDriven { bound_ns } => {
                Some(model.sla_trigger_cardinality(*bound_ns as f64))
            }
        }
    }

    /// Policy to morph with once triggered.
    pub fn post_trigger_policy(&self, default: PolicyKind) -> PolicyKind {
        match self {
            Trigger::Eager => default,
            Trigger::OptimizerDriven { policy, .. } => *policy,
            Trigger::SlaDriven { .. } => PolicyKind::Greedy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_model::TableGeometry;
    use smooth_storage::DeviceProfile;

    fn model() -> CostModel {
        CostModel::new(TableGeometry::new(64, 480_000), DeviceProfile::hdd())
    }

    #[test]
    fn eager_never_delays() {
        assert_eq!(Trigger::Eager.trigger_cardinality(&model()), None);
        assert_eq!(Trigger::Eager.post_trigger_policy(PolicyKind::Elastic), PolicyKind::Elastic);
    }

    #[test]
    fn optimizer_trigger_uses_the_estimate_verbatim() {
        let t = Trigger::OptimizerDriven {
            estimated_cardinality: 15_000,
            policy: PolicyKind::SelectivityIncrease,
        };
        assert_eq!(t.trigger_cardinality(&model()), Some(15_000));
        assert_eq!(t.post_trigger_policy(PolicyKind::Elastic), PolicyKind::SelectivityIncrease);
    }

    #[test]
    fn sla_trigger_comes_from_the_cost_model_and_switches_to_greedy() {
        let m = model();
        let bound = (2.0 * m.fs_cost_ns()) as u64;
        let t = Trigger::SlaDriven { bound_ns: bound };
        let k = t.trigger_cardinality(&m).unwrap();
        assert!(k > 0 && k < m.geometry.tuples);
        assert_eq!(t.post_trigger_policy(PolicyKind::Elastic), PolicyKind::Greedy);
        // The switch point guarantees the worst case stays under the SLA.
        let worst = m.is_cost_ns(k)
            + m.ss_mode2_cost_ns(m.geometry.pages())
            + m.geometry.leaves() as f64 * DeviceProfile::hdd().seq_page_ns as f64
            + m.geometry.tuples as f64 * CostModel::SLA_CPU_ALLOWANCE_NS;
        assert!(worst <= bound as f64 * 1.001);
    }
}
