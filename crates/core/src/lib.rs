//! Smooth Scan: the paper's contribution.
//!
//! A *morphable* access path that continuously adjusts between an index
//! look-up and a full table scan as it learns the query's actual
//! selectivity (Section III). This crate contains:
//!
//! * [`operator`] — the Smooth Scan operator itself, driving the B+-tree
//!   cursor while morphing through Mode 0 (plain index scan), Mode 1
//!   (entire-page probe) and Mode 2(+) (flattening expansion);
//! * [`policy`] — the morphing policies: Greedy, Selectivity-Increase and
//!   Elastic (Section III-B);
//! * [`trigger`] — the morphing triggers: Eager, Optimizer-driven and
//!   SLA-driven (Section III-C);
//! * [`page_cache`] / [`tuple_cache`] — the Page-ID and Tuple-ID bitmap
//!   caches (Section IV-A);
//! * [`result_cache`] — the key-range-partitioned Result Cache with bulk
//!   eviction and spill accounting (Section IV-A);
//! * [`inner`] — Smooth Scan as a *parameterized inner path* for
//!   index-nested-loop joins, morphing toward a hash join (Section IV-B);
//! * [`switch_scan`] — Switch Scan, the binary-decision straw man
//!   (Sections III, VI-F);
//! * [`cost_model`] — the analytical model, Eqs. (3)–(23), and the
//!   competitive-ratio analysis of Section V.

pub mod cost_model;
pub mod inner;
pub mod operator;
pub mod page_cache;
pub mod policy;
pub mod result_cache;
pub mod switch_scan;
pub mod trigger;
pub mod tuple_cache;

pub use cost_model::{CostModel, TableGeometry};
pub use inner::{InnerPathMetrics, SmoothIndexNestedLoopJoin, SmoothInnerPath};
pub use operator::{SmoothScan, SmoothScanConfig, SmoothScanMetrics};
pub use page_cache::PageIdCache;
pub use policy::{MorphPolicy, PolicyKind};
pub use result_cache::{ResultCache, ResultCacheStats};
pub use switch_scan::SwitchScan;
pub use trigger::Trigger;
pub use tuple_cache::TupleIdCache;
