//! The analytical cost model of Section V, Eqs. (3)–(23), plus the
//! competitive-ratio analysis of Section V-A.
//!
//! Costs are expressed in virtual-clock nanoseconds using a
//! [`DeviceProfile`]'s sequential/random page costs, so model predictions
//! are directly comparable with measured executions (the `costmodel`
//! experiment regenerates the accuracy corroboration of the technical
//! report).

use smooth_storage::DeviceProfile;
use smooth_types::PAGE_SIZE;

/// Bytes per index entry for the fanout of Eq. (5) (`1.2 × KS` spacing).
pub const KEY_SIZE: u64 = 16;

/// Physical shape of one table (Table I's base parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableGeometry {
    /// `TS`: tuple size in bytes (including per-tuple overhead).
    pub tuple_size: u64,
    /// `#T`: number of tuples.
    pub tuples: u64,
    /// `PS`: page size in bytes.
    pub page_size: u64,
}

impl TableGeometry {
    /// Geometry with the engine's page size.
    pub fn new(tuple_size: u64, tuples: u64) -> Self {
        TableGeometry { tuple_size, tuples, page_size: PAGE_SIZE as u64 }
    }

    /// Eq. (3): tuples per page.
    pub fn tuples_per_page(&self) -> u64 {
        (self.page_size / self.tuple_size).max(1)
    }

    /// Eq. (4): heap pages.
    pub fn pages(&self) -> u64 {
        self.tuples.div_ceil(self.tuples_per_page()).max(1)
    }

    /// Eq. (5): B+-tree fanout.
    pub fn fanout(&self) -> u64 {
        ((self.page_size as f64) / (1.2 * KEY_SIZE as f64)).floor() as u64
    }

    /// Eq. (6): leaf pages.
    pub fn leaves(&self) -> u64 {
        self.tuples.div_ceil(self.fanout()).max(1)
    }

    /// Eq. (7): tree height.
    pub fn height(&self) -> u64 {
        let leaves = self.leaves() as f64;
        (leaves.ln() / (self.fanout() as f64).ln()).ceil() as u64 + 1
    }

    /// Eq. (8): result cardinality at a selectivity.
    pub fn cardinality(&self, selectivity: f64) -> u64 {
        (selectivity.clamp(0.0, 1.0) * self.tuples as f64).round() as u64
    }

    /// Eq. (9): leaf pages holding result pointers.
    pub fn leaves_res(&self, card: u64) -> u64 {
        card.div_ceil(self.fanout())
    }

    /// Eq. (13): pages containing results, worst case (uniform placement).
    pub fn pages_res(&self, card: u64) -> u64 {
        card.min(self.pages())
    }
}

/// The full cost model for one table on one device.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Table shape.
    pub geometry: TableGeometry,
    /// Device timing.
    pub device: DeviceProfile,
}

impl CostModel {
    /// Bundle geometry and device.
    pub fn new(geometry: TableGeometry, device: DeviceProfile) -> Self {
        CostModel { geometry, device }
    }

    fn seq(&self) -> f64 {
        self.device.seq_page_ns as f64
    }

    fn rand(&self) -> f64 {
        self.device.rand_page_ns as f64
    }

    /// Eq. (10): full-scan I/O cost (selectivity independent).
    pub fn fs_cost_ns(&self) -> f64 {
        self.geometry.pages() as f64 * self.seq()
    }

    /// Eq. (11): non-clustered index-scan I/O cost for `card` results.
    pub fn is_cost_ns(&self, card: u64) -> f64 {
        (self.geometry.height() + card) as f64 * self.rand()
            + self.geometry.leaves_res(card) as f64 * self.seq()
    }

    /// Sort (bitmap) scan: drain the index (descent + leaf walk), sort
    /// TIDs, then fetch each result page exactly once in ascending order.
    /// When the result pages are sparse, the ascending fetches are still
    /// individual random I/Os; once they are dense enough for prefetchers
    /// to bridge the gaps, the pass degenerates to one sequential sweep —
    /// whichever is cheaper (Section II's "nearly sequential pattern").
    pub fn sort_scan_cost_ns(&self, card: u64) -> f64 {
        let p_res = self.geometry.pages_res(card) as f64;
        let scattered = p_res * self.rand();
        let sweep = self.rand() + self.geometry.pages() as f64 * self.seq();
        self.geometry.height() as f64 * self.rand()
            + self.geometry.leaves_res(card) as f64 * self.seq()
            + scattered.min(sweep)
    }

    /// Eq. (15): Mode-1 cost for `pages_m1` entire-page probes.
    pub fn ss_mode1_cost_ns(&self, pages_m1: u64) -> f64 {
        pages_m1 as f64 * self.rand()
    }

    /// Eqs. (20)/(21): number of random jumps in Mode 2, which both
    /// converge to `log2(#P + 1)` (the paper uses this value).
    pub fn mode2_rand_ios(&self, pages_m2: u64) -> f64 {
        let bound = ((self.geometry.pages() + 1) as f64).log2();
        (pages_m2 as f64).min(bound)
    }

    /// Eq. (22): Mode-2 cost for `pages_m2` flattened pages.
    pub fn ss_mode2_cost_ns(&self, pages_m2: u64) -> f64 {
        let randio = self.mode2_rand_ios(pages_m2);
        randio * self.rand() + (pages_m2 as f64 - randio).max(0.0) * self.seq()
    }

    /// Eqs. (12)–(23) under the paper's worst-case uniform-result
    /// assumption with the Eager trigger: `card_m0 = 0`, the first probe is
    /// Mode 1, the remaining result pages are fetched in Mode 2.
    pub fn ss_cost_ns(&self, card: u64) -> f64 {
        let index_part = self.geometry.height() as f64 * self.rand()
            + self.geometry.leaves_res(card) as f64 * self.seq();
        let p_res = self.geometry.pages_res(card);
        let p_m1 = p_res.min(1);
        let p_m2 = p_res - p_m1;
        index_part + self.ss_mode1_cost_ns(p_m1) + self.ss_mode2_cost_ns(p_m2)
    }

    /// Mode-1-only Smooth Scan (the Fig. 6 "Entire Page Probe" curve):
    /// every result page is fetched with its own random access.
    pub fn ss_mode1_only_cost_ns(&self, card: u64) -> f64 {
        let index_part = self.geometry.height() as f64 * self.rand()
            + self.geometry.leaves_res(card) as f64 * self.seq();
        index_part + self.ss_mode1_cost_ns(self.geometry.pages_res(card))
    }

    /// The optimal traditional alternative at `card` results: the cheaper
    /// of Full Scan, Index Scan and Sort Scan.
    pub fn optimal_cost_ns(&self, card: u64) -> f64 {
        self.fs_cost_ns().min(self.is_cost_ns(card)).min(self.sort_scan_cost_ns(card))
    }

    /// Competitive ratio of a measured/modelled cost against the optimum.
    pub fn competitive_ratio(&self, cost_ns: f64, card: u64) -> f64 {
        cost_ns / self.optimal_cost_ns(card).max(1.0)
    }

    /// Section V-A: the Elastic policy's worst case — matches on every
    /// second page, so morphing never triggers: half the pages are fetched
    /// with a random positioning each, and the skipped gap still passes
    /// under the head (`(randcost + seqcost)/2` per page, which yields the
    /// paper's 5.5 at 10:1).
    pub fn elastic_worst_case_cost_ns(&self) -> f64 {
        let index_part = self.geometry.height() as f64 * self.rand()
            + self.geometry.leaves() as f64 / 2.0 * self.seq();
        index_part + (self.geometry.pages() as f64 / 2.0) * (self.rand() + self.seq())
    }

    /// Section V-A: Elastic's worst-case competitive ratio vs Full Scan
    /// (≈ 5.5 for HDD at 10:1, ≈ 3 for SSD at 2:1 in the paper).
    pub fn elastic_worst_case_cr(&self) -> f64 {
        self.elastic_worst_case_cost_ns() / self.fs_cost_ns()
    }

    /// Section V-A: the theoretical CR bound "purely driven by the ratio
    /// between the random and sequential access" (11 for HDD, i.e.
    /// ratio + 1).
    pub fn cr_theoretical_bound(&self) -> f64 {
        self.device.rand_seq_ratio() + 1.0
    }

    /// CPU allowance per tuple used when sizing SLA triggers: Section V
    /// models I/O only (the full CPU-aware model lives in the technical
    /// report), but a trigger that ignores CPU would let the measured time
    /// brush past the bound at 100% selectivity. ~Inspect + emit cost.
    pub const SLA_CPU_ALLOWANCE_NS: f64 = 300.0;

    /// SLA-driven trigger point (Section III-C, Fig. 7b): the largest
    /// cardinality `K` such that producing `K` tuples with the traditional
    /// index scan and then morphing (worst case: the remainder becomes a
    /// greedy near-full scan over every page and every leaf, touching
    /// every tuple) still meets the SLA. Binary search over the monotone
    /// total-cost function.
    pub fn sla_trigger_cardinality(&self, sla_ns: f64) -> u64 {
        let worst_remainder = |k: u64| {
            // After switching at K: at worst the whole heap is re-fetched
            // with flattening (log2(#P+1) jumps + sequential remainder),
            // the whole leaf level is walked, and every tuple is touched.
            let p = self.geometry.pages();
            self.ss_mode2_cost_ns(p).max(0.0)
                + self.is_cost_ns(k)
                + self.geometry.leaves() as f64 * self.seq()
                + self.geometry.tuples as f64 * Self::SLA_CPU_ALLOWANCE_NS
        };
        if worst_remainder(0) > sla_ns {
            return 0;
        }
        let (mut lo, mut hi) = (0u64, self.geometry.tuples);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if worst_remainder(mid) <= sla_ns {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's micro-benchmark geometry scaled down: 64 B tuples.
    fn model() -> CostModel {
        CostModel::new(TableGeometry::new(64, 480_000), DeviceProfile::hdd())
    }

    #[test]
    fn geometry_equations() {
        let g = model().geometry;
        assert_eq!(g.tuples_per_page(), 128); // Eq. 3 with TS=64
        assert_eq!(g.pages(), 3750); // Eq. 4
        assert_eq!(g.fanout(), 426); // Eq. 5
        assert_eq!(g.leaves(), 480_000u64.div_ceil(426)); // Eq. 6
        assert_eq!(g.height(), 3); // Eq. 7: ceil(log426(1127)) + 1
        assert_eq!(g.cardinality(0.5), 240_000); // Eq. 8
        assert_eq!(g.leaves_res(852), 2); // Eq. 9
        assert_eq!(g.pages_res(5000), 3750); // Eq. 13 clamps at #P
    }

    #[test]
    fn full_scan_flat_index_scan_linear() {
        let m = model();
        assert_eq!(m.fs_cost_ns(), 3750.0 * 62_500.0);
        let low = m.is_cost_ns(10);
        let high = m.is_cost_ns(10_000);
        assert!(high > low * 100.0);
    }

    #[test]
    fn crossover_against_full_scan_is_below_one_percent() {
        // The tipping point where IS = FS sits well below 1% selectivity —
        // the core motivation (Section II: "above 1-10%... full scan").
        let m = model();
        let card_1pct = m.geometry.cardinality(0.01);
        assert!(m.is_cost_ns(card_1pct) > m.fs_cost_ns());
        let card_001pct = m.geometry.cardinality(0.0001);
        assert!(m.is_cost_ns(card_001pct) < m.fs_cost_ns());
    }

    #[test]
    fn smooth_scan_tracks_both_extremes() {
        let m = model();
        // At tiny cardinality, SS ≈ IS within a small constant factor.
        let tiny = m.geometry.cardinality(0.00001);
        assert!(m.ss_cost_ns(tiny) <= 3.0 * m.is_cost_ns(tiny).max(1.0));
        // At 100%, SS approaches FS plus the leaf walk. The extra is
        // bounded by #leaves/#P = #TP/fanout: ~30% for 64 B tuples, and
        // under 20% for the paper's ~100 B LINEITEM tuples (§VI-C reports
        // "less than 20% overhead ... for 100% selectivity").
        let all = m.geometry.tuples;
        let overhead = m.ss_cost_ns(all) / m.fs_cost_ns();
        assert!(overhead < 1.35, "SS at 100% within 35% of FS, got {overhead}");
        let paper_like = CostModel::new(TableGeometry::new(100, 480_000), DeviceProfile::hdd());
        let overhead = paper_like.ss_cost_ns(480_000) / paper_like.fs_cost_ns();
        assert!(overhead < 1.22, "paper-shaped tuples stay under 20%: {overhead}");
        // And never above the Mode-1-only variant at high selectivity.
        assert!(m.ss_cost_ns(all) < m.ss_mode1_only_cost_ns(all));
    }

    #[test]
    fn mode1_only_is_an_order_of_magnitude_over_fs_on_hdd() {
        // Fig. 6: Entire-Page-Probe-only ends a factor ~rand/seq above FS.
        let m = model();
        let ratio = m.ss_mode1_only_cost_ns(m.geometry.tuples) / m.fs_cost_ns();
        assert!(ratio > 8.0 && ratio < 12.0, "{ratio}");
    }

    #[test]
    fn elastic_worst_case_ratios_match_section_va() {
        let hdd = model();
        let cr = hdd.elastic_worst_case_cr();
        assert!((cr - 5.5).abs() < 0.6, "HDD worst-case CR ≈ 5.5, got {cr}");
        assert_eq!(hdd.cr_theoretical_bound(), 11.0);
        let ssd = CostModel::new(hdd.geometry, DeviceProfile::ssd());
        let cr = ssd.elastic_worst_case_cr();
        assert!((cr - 1.5).abs() < 0.6, "SSD worst-case CR ≈ ratio/2 + ε, got {cr}");
        assert_eq!(ssd.cr_theoretical_bound(), 3.0);
    }

    #[test]
    fn sla_trigger_is_monotone_in_the_bound() {
        let m = model();
        let tight = m.sla_trigger_cardinality(1.2 * m.fs_cost_ns());
        let loose = m.sla_trigger_cardinality(2.0 * m.fs_cost_ns());
        let looser = m.sla_trigger_cardinality(4.0 * m.fs_cost_ns());
        assert!(tight <= loose && loose <= looser);
        assert!(loose > 0, "2×FS leaves budget for some index tuples");
        assert!(looser < m.geometry.tuples);
        // An impossible SLA yields zero.
        assert_eq!(m.sla_trigger_cardinality(0.0), 0);
    }

    #[test]
    fn competitive_ratio_uses_best_alternative() {
        let m = model();
        // At 100% the optimum is the full scan.
        let all = m.geometry.tuples;
        assert_eq!(m.optimal_cost_ns(all), m.fs_cost_ns());
        // At 1 tuple the optimum is the index scan.
        assert_eq!(m.optimal_cost_ns(1), m.is_cost_ns(1));
        let cr = m.competitive_ratio(m.ss_cost_ns(all), all);
        assert!(cr < 1.35);
    }

    #[test]
    fn ssd_narrows_the_gap() {
        let hdd = model();
        let ssd = CostModel::new(hdd.geometry, DeviceProfile::ssd());
        let card = hdd.geometry.cardinality(0.001);
        let hdd_gap = hdd.is_cost_ns(card) / hdd.fs_cost_ns();
        let ssd_gap = ssd.is_cost_ns(card) / ssd.fs_cost_ns();
        assert!(ssd_gap < hdd_gap, "index scans are relatively cheaper on SSD");
    }
}
