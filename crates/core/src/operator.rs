//! The Smooth Scan operator (Sections III–IV).
//!
//! Smooth Scan is driven by the B+-tree range cursor, exactly like an index
//! scan — but instead of fetching one tuple per probe it *morphs*:
//!
//! * **Mode 0** (only under the Optimizer/SLA triggers): behave as a
//!   traditional index scan, recording produced tuples in the Tuple-ID
//!   cache, until the trigger cardinality is exceeded.
//! * **Mode 1 — Entire Page Probe**: examine *all* records of each heap
//!   page fetched, trading CPU for I/O (never visit a page twice).
//! * **Mode 2(+) — Flattening Access**: fetch a growing region of adjacent
//!   pages per probe, replacing random with sequential I/O; the region
//!   size is owned by the [`MorphPolicy`].
//!
//! Already-visited pages are skipped via the Page-ID cache (the ✗ marks of
//! Fig. 3). With an interesting order to respect, qualifying tuples found
//! ahead of the cursor wait in the partitioned Result Cache; without one,
//! they are emitted the moment they are found (Section IV-B).

use std::ops::Bound;
use std::sync::Arc;

use smooth_executor::{Operator, Predicate, ScanFilter};
use smooth_index::{BTreeIndex, IndexCursor};
use smooth_storage::{HeapFile, PageView, Storage};
use smooth_types::{ColumnBatch, ColumnBuffer, PageId, Result, Row, RowBatch, Schema, Tid, Value};

use crate::cost_model::{CostModel, TableGeometry};
use crate::page_cache::PageIdCache;
use crate::policy::{MorphPolicy, PolicyKind};
use crate::result_cache::{ResultCache, ResultCacheStats};
use crate::trigger::Trigger;
use crate::tuple_cache::TupleIdCache;

/// Configuration of one Smooth Scan instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothScanConfig {
    /// Morphing policy (ignored before the trigger fires).
    pub policy: PolicyKind,
    /// Morphing trigger strategy.
    pub trigger: Trigger,
    /// Respect the index key order (engage the Result Cache).
    pub ordered: bool,
    /// Region-size cap in pages (2048 = 16 MB, the paper's optimum).
    pub max_region_pages: u32,
    /// Result-Cache key-range partitions (Section IV-A).
    pub result_cache_partitions: usize,
    /// Spill the Result Cache beyond this many resident tuples.
    pub result_cache_spill: Option<usize>,
}

impl Default for SmoothScanConfig {
    fn default() -> Self {
        SmoothScanConfig {
            policy: PolicyKind::Elastic,
            trigger: Trigger::Eager,
            ordered: false,
            max_region_pages: MorphPolicy::DEFAULT_MAX_REGION,
            result_cache_partitions: 16,
            result_cache_spill: None,
        }
    }
}

impl SmoothScanConfig {
    /// The paper's default: Eager + Elastic (Section VI).
    pub fn eager_elastic() -> Self {
        Self::default()
    }

    /// Cap morphing at Mode 1 (Fig. 6's "Entire Page Probe" ablation).
    pub fn mode1_only(mut self) -> Self {
        self.max_region_pages = 1;
        self
    }

    /// Builder: set the policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Builder: set the trigger.
    pub fn with_trigger(mut self, trigger: Trigger) -> Self {
        self.trigger = trigger;
        self
    }

    /// Builder: respect key order.
    pub fn with_order(mut self, ordered: bool) -> Self {
        self.ordered = ordered;
        self
    }
}

/// Counters exposed after execution (Figs. 6–9 are plotted from these).
#[derive(Debug, Clone, Copy, Default)]
pub struct SmoothScanMetrics {
    /// Rows returned to the parent operator.
    pub tuples_emitted: u64,
    /// Rows produced by the traditional phase (Mode 0).
    pub mode0_tuples: u64,
    /// Morphing regions processed.
    pub regions: u64,
    /// Pages processed in Mode 1 (single-page regions).
    pub mode1_pages: u64,
    /// Pages processed in Mode 2 (flattening regions).
    pub mode2_pages: u64,
    /// Pages fetched by morphing (`#P_seen`).
    pub pages_fetched: u64,
    /// Fetched pages holding at least one result (`#P_res`).
    pub pages_with_results: u64,
    /// Largest region used.
    pub max_region_pages: u32,
    /// Whether a non-Eager trigger fired.
    pub triggered: bool,
    /// Result-Cache counters (ordered mode only).
    pub cache: ResultCacheStats,
}

impl SmoothScanMetrics {
    /// Morphing accuracy (Fig. 9b): result pages over checked pages.
    pub fn morphing_accuracy(&self) -> Option<f64> {
        (self.pages_fetched > 0).then(|| self.pages_with_results as f64 / self.pages_fetched as f64)
    }

    /// Result-Cache hit rate (Fig. 9a): hits over tuple requests.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        (self.cache.requests > 0).then(|| self.cache.hits as f64 / self.cache.requests as f64)
    }
}

/// The morphing access path.
pub struct SmoothScan {
    heap: Arc<HeapFile>,
    index: Arc<BTreeIndex>,
    storage: Storage,
    key_col: usize,
    lo: Bound<i64>,
    hi: Bound<i64>,
    residual: Predicate,
    /// Compiled `key range AND residual` filter, probed on encoded tuples.
    filter: ScanFilter,
    config: SmoothScanConfig,
    model: CostModel,
    // run-time state
    cursor: Option<IndexCursor>,
    page_cache: PageIdCache,
    tuple_cache: Option<TupleIdCache>,
    result_cache: Option<ResultCache>,
    policy: MorphPolicy,
    traditional_until: Option<u64>,
    /// Pending output: a columnar FIFO all three iterator protocols drain.
    /// Unordered morphing regions decode their qualifiers straight into
    /// it (no per-row materialization); Mode-0 tuples, Result-Cache hits
    /// and ordered driving tuples append row-wise.
    out: ColumnBuffer,
    metrics: SmoothScanMetrics,
}

impl SmoothScan {
    /// Build a Smooth Scan over `index` (on `key_col` of `heap`) for keys
    /// in `[lo, hi]`, with `residual` filtering the remaining columns.
    #[allow(clippy::too_many_arguments)] // mirrors the access-path ctor shape
    pub fn new(
        heap: Arc<HeapFile>,
        index: Arc<BTreeIndex>,
        storage: Storage,
        key_col: usize,
        lo: Bound<i64>,
        hi: Bound<i64>,
        residual: Predicate,
        config: SmoothScanConfig,
    ) -> Self {
        let full_pred =
            Predicate::and(vec![Predicate::IntRange { col: key_col, lo, hi }, residual.clone()]);
        let filter = ScanFilter::new(full_pred, heap.schema());
        let model = CostModel::new(
            TableGeometry::new(
                (heap.schema().estimated_tuple_width(16) as u64).max(1),
                heap.tuple_count(),
            ),
            storage.device(),
        );
        let pages = heap.page_count();
        let out = ColumnBuffer::for_schema(heap.schema());
        SmoothScan {
            heap,
            index,
            storage,
            key_col,
            lo,
            hi,
            residual,
            filter,
            config,
            model,
            cursor: None,
            page_cache: PageIdCache::new(pages),
            tuple_cache: None,
            result_cache: None,
            policy: MorphPolicy::new(config.policy, config.max_region_pages),
            traditional_until: None,
            out,
            metrics: SmoothScanMetrics::default(),
        }
    }

    /// Execution counters (valid during and after execution).
    pub fn metrics(&self) -> SmoothScanMetrics {
        let mut m = self.metrics;
        if let Some(rc) = &self.result_cache {
            m.cache = rc.stats();
        }
        m
    }

    /// The analytical model for this scan's table and device.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    fn key_of(&self, row: &Row) -> Result<i64> {
        match row.get(self.key_col) {
            Value::Int(k) => Ok(*k),
            other => Err(smooth_types::Error::exec(format!("non-integer index key {other}"))),
        }
    }

    /// Process all unvisited pages of the region `[start, start+len)`:
    /// mark them visited, collect qualifying tuples, update the policy.
    /// In ordered mode the driving tuple (if it qualifies) is returned and
    /// other finds go to the Result Cache; in unordered mode everything is
    /// queued in the columnar output buffer.
    ///
    /// Region processing is vectorized: the predicate is probed on the
    /// encoded tuples (only the key/residual columns are decoded for
    /// non-qualifiers) and the virtual clock is charged once per page
    /// rather than per tuple, with totals identical to the per-tuple
    /// accounting. In unordered mode the qualifiers additionally decode
    /// *straight into column vectors* — the whole morphing region becomes
    /// a columnar morsel without a single `Row` materializing. Ordered
    /// mode stays row-wise (the Result Cache stores rows keyed by
    /// `(key, tid)`), with identical clock totals either way.
    fn process_region(&mut self, driving: Tid, len: u32) -> Result<Option<Row>> {
        let end = (driving.page.0 + len).min(self.heap.page_count());
        let cpu = *self.storage.cpu();
        let mut driving_row = None;
        let mut pages_processed = 0u64;
        let mut pages_with_results = 0u64;
        let mut p = driving.page.0;
        while p < end {
            self.storage.clock().charge_cpu(cpu.bitmap_op_ns);
            if self.page_cache.contains(PageId(p)) {
                p += 1;
                continue;
            }
            let run = self.page_cache.unvisited_run(PageId(p), end - p);
            let pages = self.storage.read_heap_run(&self.heap, PageId(p), run)?;
            self.storage.charge_page_probes(run as u64);
            for (pid, buf) in &pages {
                self.page_cache.insert(*pid);
                let had_result;
                let view = PageView::new(buf)?;
                let mut bitmap_ops = 0u64;
                if self.config.ordered {
                    let mut inspected = 0u64;
                    let mut emitted = 0u64;
                    let mut any = false;
                    for slot in 0..view.slot_count() {
                        let tid = Tid { page: *pid, slot };
                        if let Some(tc) = &self.tuple_cache {
                            bitmap_ops += 1;
                            if tc.contains(tid) {
                                continue; // already produced by Mode 0
                            }
                        }
                        inspected += 1;
                        let bytes = view.get(slot)?;
                        let Some(row) = self.filter.filter_decode(self.heap.schema(), bytes)?
                        else {
                            continue;
                        };
                        any = true;
                        emitted += 1;
                        if tid == driving {
                            driving_row = Some(row);
                        } else {
                            let key = self.key_of(&row)?;
                            self.result_cache
                                .as_mut()
                                .expect("ordered mode has a result cache")
                                .insert(&self.storage, key, tid, row);
                        }
                    }
                    had_result = any;
                    self.storage.clock().charge_cpu(
                        cpu.bitmap_op_ns * bitmap_ops
                            + cpu.inspect_tuple_ns * inspected
                            + cpu.emit_tuple_ns * emitted,
                    );
                } else {
                    let mut tuples: Vec<&[u8]> = Vec::with_capacity(view.slot_count() as usize);
                    for slot in 0..view.slot_count() {
                        if let Some(tc) = &self.tuple_cache {
                            bitmap_ops += 1;
                            if tc.contains(Tid { page: *pid, slot }) {
                                continue; // already produced by Mode 0
                            }
                        }
                        tuples.push(view.get(slot)?);
                    }
                    let (inspected, emitted) = self.filter.fill_columns(
                        self.heap.schema(),
                        &tuples,
                        Some(buf),
                        self.out.fill(),
                    )?;
                    had_result = emitted > 0;
                    self.storage.clock().charge_cpu(
                        cpu.bitmap_op_ns * bitmap_ops
                            + cpu.inspect_tuple_ns * inspected
                            + cpu.emit_tuple_ns * emitted,
                    );
                }
                pages_processed += 1;
                if had_result {
                    pages_with_results += 1;
                }
            }
            p += run.max(1);
        }
        // Update policy + metrics with this region's outcome.
        if pages_processed > 0 {
            self.metrics.regions += 1;
            self.metrics.pages_fetched += pages_processed;
            self.metrics.pages_with_results += pages_with_results;
            self.metrics.max_region_pages = self.metrics.max_region_pages.max(len);
            if len <= 1 {
                self.metrics.mode1_pages += pages_processed;
            } else {
                self.metrics.mode2_pages += pages_processed;
            }
            self.policy.observe_region(pages_processed, pages_with_results);
        }
        Ok(driving_row)
    }

    /// Advance the driving cursor by one probe. Any rows this produces —
    /// a Mode-0 tuple, a Result-Cache hit, the ordered driving tuple, or a
    /// whole region's worth of unordered finds — append to the columnar
    /// output buffer in emission order. Returns `false` at cursor
    /// exhaustion.
    fn advance(&mut self) -> Result<bool> {
        let Some((key, tid)) = self.cursor.as_mut().expect("opened").next() else {
            return Ok(false);
        };
        if let Some(rc) = self.result_cache.as_mut() {
            // Record the cursor position; the eviction sweep runs once
            // per emitted batch (see `flush_cache_eviction`), not per key.
            rc.defer_advance(key);
        }
        // Mode 0: traditional index scan until the trigger fires.
        if let Some(limit) = self.traditional_until {
            if self.metrics.mode0_tuples >= limit {
                self.traditional_until = None;
                self.metrics.triggered = true;
            } else {
                if let Some(row) = self.mode0_step(tid)? {
                    self.out.fill().push_owned_row(row)?;
                }
                return Ok(true);
            }
        }
        // Smooth phase.
        if self.config.ordered {
            let cached = self
                .result_cache
                .as_mut()
                .expect("ordered mode has a result cache")
                .probe(&self.storage, key, tid);
            if let Some(row) = cached {
                self.out.fill().push_owned_row(row)?;
                return Ok(true);
            }
        }
        self.storage.clock().charge_cpu(self.storage.cpu().bitmap_op_ns);
        if self.page_cache.contains(tid.page) {
            // Page fully examined before: the tuple either did not
            // qualify or was already produced.
            return Ok(true);
        }
        let region = self.policy.region_pages();
        if let Some(row) = self.process_region(tid, region)? {
            self.out.fill().push_owned_row(row)?;
        }
        Ok(true)
    }

    /// Batch-boundary Result-Cache sweep: applied once per protocol call,
    /// so ordered-mode eviction bookkeeping amortizes over whole morsels.
    fn flush_cache_eviction(&mut self) {
        if let Some(rc) = self.result_cache.as_mut() {
            rc.flush_advance();
        }
    }

    /// One traditional (Mode 0) index-scan step for the driving TID.
    fn mode0_step(&mut self, tid: Tid) -> Result<Option<Row>> {
        let page = self.storage.read_heap_page(&self.heap, tid.page)?;
        let cpu = *self.storage.cpu();
        self.storage.clock().charge_cpu(cpu.inspect_tuple_ns);
        let row = self.heap.decode_slot(&page, tid.slot)?;
        if self.residual.eval(&row)? {
            self.tuple_cache.as_mut().expect("traditional phase has a tuple cache").insert(tid);
            self.metrics.mode0_tuples += 1;
            self.storage.clock().charge_cpu(cpu.emit_tuple_ns);
            Ok(Some(row))
        } else {
            Ok(None)
        }
    }
}

impl Operator for SmoothScan {
    fn schema(&self) -> &Schema {
        self.heap.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.cursor = Some(self.index.range(&self.storage, self.lo, self.hi));
        self.page_cache = PageIdCache::new(self.heap.page_count());
        self.out.reset();
        self.metrics = SmoothScanMetrics::default();
        self.traditional_until = self.config.trigger.trigger_cardinality(&self.model);
        self.tuple_cache = self.traditional_until.map(|_| {
            TupleIdCache::new(self.heap.page_count(), self.heap.max_slots_per_page() as u32)
        });
        self.policy = MorphPolicy::new(
            if self.traditional_until.is_some() {
                self.config.trigger.post_trigger_policy(self.config.policy)
            } else {
                self.config.policy
            },
            self.config.max_region_pages,
        );
        self.result_cache = self.config.ordered.then(|| {
            let cache = ResultCache::new(
                &self.index.root_separators(),
                self.config.result_cache_partitions,
                self.heap.schema().estimated_tuple_width(16),
            );
            match self.config.result_cache_spill {
                Some(limit) => cache.with_spill_threshold(limit),
                None => cache,
            }
        });
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        self.flush_cache_eviction();
        loop {
            if let Some(row) = self.out.pop_row() {
                self.metrics.tuples_emitted += 1;
                return Ok(Some(row));
            }
            if !self.advance()? {
                return Ok(None);
            }
        }
    }

    /// Batched Smooth Scan: cursor probes run until a whole morsel is
    /// buffered, then it leaves in one call. Morphing decisions (trigger
    /// cardinality, region growth) still advance per probe — the batch
    /// boundary never coarsens the switch logic, it only amortizes
    /// emission.
    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        self.flush_cache_eviction();
        let max = max.max(1);
        while self.out.pending() < max {
            if !self.advance()? {
                break;
            }
        }
        let rows = self.out.pop_rows(max);
        self.metrics.tuples_emitted += rows.len() as u64;
        Ok((!rows.is_empty()).then(|| RowBatch::from_rows(rows)))
    }

    /// Columnar Smooth Scan: unordered morphing regions leave as columnar
    /// morsels whose qualifiers never materialized as rows; per-page
    /// clock-charge totals are unchanged, so all mode-switch logic and
    /// region accounting survive byte-for-byte.
    fn next_columns(&mut self, max: usize) -> Result<Option<ColumnBatch>> {
        self.flush_cache_eviction();
        let max = max.max(1);
        while self.out.pending() < max {
            if !self.advance()? {
                break;
            }
        }
        let batch = self.out.pop_columns(max);
        if let Some(b) = &batch {
            self.metrics.tuples_emitted += b.len() as u64;
        }
        Ok(batch)
    }

    fn close(&mut self) -> Result<()> {
        if let Some(rc) = &self.result_cache {
            self.metrics.cache = rc.stats();
        }
        self.cursor = None;
        if let Some(rc) = self.result_cache.as_mut() {
            rc.clear();
        }
        self.out.reset();
        Ok(())
    }

    fn label(&self) -> String {
        format!(
            "SmoothScan({} via {}, {:?}, {:?}{})",
            self.heap.name(),
            self.index.name(),
            self.config.policy,
            self.config.trigger,
            if self.config.ordered { ", ordered" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_executor::collect_rows;
    use smooth_storage::{CpuCosts, DeviceProfile, HeapLoader, StorageConfig};
    use smooth_types::{Column, DataType, Schema};

    /// A micro-benchmark-shaped table: c0 = row number, c1 pseudo-random
    /// in [0, 1000), pad to make tuples non-trivial.
    fn table(rows: i64) -> (Arc<HeapFile>, Arc<BTreeIndex>) {
        let schema = Schema::new(vec![
            Column::new("c0", DataType::Int64),
            Column::new("c1", DataType::Int64),
            Column::new("pad", DataType::Text),
        ])
        .unwrap();
        let mut l = HeapLoader::new_mem("t", schema);
        for i in 0..rows {
            let c1 = (i.wrapping_mul(2654435761)) % 1000;
            let c1 = (c1 + 1000) % 1000;
            l.push(&Row::new(vec![Value::Int(i), Value::Int(c1), Value::str("x".repeat(40))]))
                .unwrap();
        }
        let heap = Arc::new(l.finish().unwrap());
        let index = Arc::new(BTreeIndex::build_from_heap("i_c1", &heap, 1).unwrap());
        (heap, index)
    }

    fn storage(pool: usize) -> Storage {
        Storage::new(StorageConfig {
            device: DeviceProfile::custom("t", 1, 10),
            cpu: CpuCosts::default(),
            pool_pages: pool,
        })
    }

    fn smooth(
        heap: &Arc<HeapFile>,
        index: &Arc<BTreeIndex>,
        s: &Storage,
        hi: i64,
        config: SmoothScanConfig,
    ) -> SmoothScan {
        SmoothScan::new(
            Arc::clone(heap),
            Arc::clone(index),
            s.clone(),
            1,
            Bound::Included(0),
            Bound::Excluded(hi),
            Predicate::True,
            config,
        )
    }

    fn oracle(heap: &Arc<HeapFile>, s: &Storage, hi: i64) -> Vec<Row> {
        let mut full = smooth_executor::FullTableScan::new(
            Arc::clone(heap),
            s.clone(),
            Predicate::int_half_open(1, 0, hi),
        );
        let mut rows = collect_rows(&mut full).unwrap();
        rows.sort_by_key(|r| (r.int(1).unwrap(), r.int(0).unwrap()));
        rows
    }

    fn sorted_by_key(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort_by_key(|r| (r.int(1).unwrap(), r.int(0).unwrap()));
        rows
    }

    #[test]
    fn unordered_smooth_scan_matches_oracle() {
        let (heap, index) = table(3000);
        let s = storage(64);
        let expected = oracle(&heap, &s, 300);
        for policy in [PolicyKind::Greedy, PolicyKind::SelectivityIncrease, PolicyKind::Elastic] {
            let mut ss =
                smooth(&heap, &index, &s, 300, SmoothScanConfig::default().with_policy(policy));
            let rows = sorted_by_key(collect_rows(&mut ss).unwrap());
            assert_eq!(rows, expected, "policy {policy:?}");
        }
    }

    #[test]
    fn ordered_smooth_scan_preserves_key_order_and_results() {
        let (heap, index) = table(3000);
        let s = storage(64);
        let expected = oracle(&heap, &s, 400);
        let mut ss = smooth(&heap, &index, &s, 400, SmoothScanConfig::default().with_order(true));
        let rows = collect_rows(&mut ss).unwrap();
        let keys: Vec<i64> = rows.iter().map(|r| r.int(1).unwrap()).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "key order preserved");
        assert_eq!(sorted_by_key(rows), expected);
        let m = ss.metrics();
        assert!(m.cache.hits > 0, "result cache served tuples: {:?}", m.cache);
        assert!(m.cache.requests >= m.cache.hits);
    }

    #[test]
    fn no_duplicates_at_full_selectivity() {
        let (heap, index) = table(2000);
        let s = storage(64);
        let mut ss = smooth(&heap, &index, &s, 1000, SmoothScanConfig::default());
        let rows = collect_rows(&mut ss).unwrap();
        assert_eq!(rows.len(), 2000);
        let mut ids: Vec<i64> = rows.iter().map(|r| r.int(0).unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 2000, "every tuple exactly once");
    }

    #[test]
    fn never_fetches_more_pages_than_the_heap() {
        let (heap, index) = table(5000);
        let s = storage(32);
        let mut ss = smooth(&heap, &index, &s, 1000, SmoothScanConfig::default());
        collect_rows(&mut ss).unwrap();
        let m = ss.metrics();
        assert!(m.pages_fetched <= heap.page_count() as u64);
        assert_eq!(m.pages_fetched, heap.page_count() as u64, "100% sel reads all pages once");
    }

    #[test]
    fn residual_predicates_apply() {
        let (heap, index) = table(3000);
        let s = storage(64);
        let mut ss = SmoothScan::new(
            Arc::clone(&heap),
            Arc::clone(&index),
            s.clone(),
            1,
            Bound::Included(0),
            Bound::Excluded(500),
            Predicate::int_lt(0, 1000),
            SmoothScanConfig::default(),
        );
        let rows = collect_rows(&mut ss).unwrap();
        assert!(rows.iter().all(|r| r.int(0).unwrap() < 1000 && r.int(1).unwrap() < 500));
        let mut full = smooth_executor::FullTableScan::new(
            Arc::clone(&heap),
            s.clone(),
            Predicate::And(vec![Predicate::int_half_open(1, 0, 500), Predicate::int_lt(0, 1000)]),
        );
        assert_eq!(rows.len(), collect_rows(&mut full).unwrap().len());
    }

    #[test]
    fn optimizer_trigger_runs_mode0_then_morphs_without_duplicates() {
        let (heap, index) = table(3000);
        let s = storage(64);
        let expected = oracle(&heap, &s, 600);
        let cfg = SmoothScanConfig::default().with_trigger(Trigger::OptimizerDriven {
            estimated_cardinality: 100,
            policy: PolicyKind::SelectivityIncrease,
        });
        let mut ss = smooth(&heap, &index, &s, 600, cfg);
        let rows = collect_rows(&mut ss).unwrap();
        let m = ss.metrics();
        assert!(m.triggered);
        assert_eq!(m.mode0_tuples, 100);
        assert_eq!(sorted_by_key(rows), expected, "no duplicates, no losses");
    }

    #[test]
    fn optimizer_trigger_not_reached_stays_traditional() {
        let (heap, index) = table(3000);
        let s = storage(64);
        let cfg = SmoothScanConfig::default().with_trigger(Trigger::OptimizerDriven {
            estimated_cardinality: 1_000_000,
            policy: PolicyKind::Elastic,
        });
        let mut ss = smooth(&heap, &index, &s, 10, cfg);
        let rows = collect_rows(&mut ss).unwrap();
        let m = ss.metrics();
        assert!(!m.triggered);
        assert_eq!(m.pages_fetched, 0, "never morphed");
        assert_eq!(m.mode0_tuples as usize, rows.len());
    }

    #[test]
    fn sla_trigger_fires_from_cost_model() {
        let (heap, index) = table(5000);
        let s = storage(16);
        let model = CostModel::new(TableGeometry::new(64, 5000), DeviceProfile::custom("t", 1, 10));
        let bound = (2.0 * model.fs_cost_ns()) as u64;
        let mut ss = smooth(
            &heap,
            &index,
            &s,
            1000,
            SmoothScanConfig::default().with_trigger(Trigger::SlaDriven { bound_ns: bound }),
        );
        let rows = collect_rows(&mut ss).unwrap();
        assert_eq!(rows.len(), 5000);
        assert!(ss.metrics().triggered, "100% selectivity must exceed any SLA trigger point");
    }

    #[test]
    fn mode1_only_never_flattens() {
        let (heap, index) = table(3000);
        let s = storage(64);
        let mut ss = smooth(&heap, &index, &s, 1000, SmoothScanConfig::default().mode1_only());
        collect_rows(&mut ss).unwrap();
        let m = ss.metrics();
        assert_eq!(m.mode2_pages, 0);
        assert_eq!(m.max_region_pages, 1);
        assert_eq!(m.mode1_pages, heap.page_count() as u64);
    }

    #[test]
    fn greedy_converges_faster_than_elastic_on_uniform_low_selectivity() {
        let (heap, index) = table(6000);
        let s1 = storage(64);
        let mut greedy = smooth(
            &heap,
            &index,
            &s1,
            5,
            SmoothScanConfig::default().with_policy(PolicyKind::Greedy),
        );
        collect_rows(&mut greedy).unwrap();
        let greedy_pages = greedy.metrics().pages_fetched;
        let s2 = storage(64);
        let mut elastic = smooth(
            &heap,
            &index,
            &s2,
            5,
            SmoothScanConfig::default().with_policy(PolicyKind::Elastic),
        );
        collect_rows(&mut elastic).unwrap();
        let elastic_pages = elastic.metrics().pages_fetched;
        assert!(
            greedy_pages > elastic_pages,
            "greedy over-fetches at low selectivity: {greedy_pages} vs {elastic_pages}"
        );
    }

    #[test]
    fn smooth_scan_never_rereads_heap_pages() {
        let (heap, index) = table(4000);
        let s = storage(8); // tiny pool: rereads would hit the device
        let mut ss = smooth(&heap, &index, &s, 500, SmoothScanConfig::default());
        collect_rows(&mut ss).unwrap();
        // distinct heap pages fetched == pages read from the heap file
        // (index touches add some, but heap pages are never re-read).
        assert_eq!(s.distinct_pages_for(heap.file_id()), ss.metrics().pages_fetched);
    }

    #[test]
    fn empty_range_and_empty_table() {
        let (heap, index) = table(1000);
        let s = storage(64);
        let mut ss = smooth(&heap, &index, &s, 0, SmoothScanConfig::default());
        assert!(collect_rows(&mut ss).unwrap().is_empty());
        let empty_schema = Schema::new(vec![
            Column::new("c0", DataType::Int64),
            Column::new("c1", DataType::Int64),
        ])
        .unwrap();
        let empty = Arc::new(HeapLoader::new_mem("e", empty_schema).finish().unwrap());
        let eidx = Arc::new(BTreeIndex::build_from_heap("ei", &empty, 1).unwrap());
        let mut ss = SmoothScan::new(
            empty,
            eidx,
            s,
            1,
            Bound::Unbounded,
            Bound::Unbounded,
            Predicate::True,
            SmoothScanConfig::default(),
        );
        assert!(collect_rows(&mut ss).unwrap().is_empty());
    }

    #[test]
    fn ordered_mode_with_spilling_still_correct() {
        let (heap, index) = table(3000);
        let s = storage(64);
        let expected = oracle(&heap, &s, 800);
        let mut cfg = SmoothScanConfig::default().with_order(true);
        cfg.result_cache_spill = Some(50); // heavy pressure
        let mut ss = smooth(&heap, &index, &s, 800, cfg);
        let rows = collect_rows(&mut ss).unwrap();
        assert_eq!(sorted_by_key(rows.clone()), expected);
        let keys: Vec<i64> = rows.iter().map(|r| r.int(1).unwrap()).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        assert!(ss.metrics().cache.spilled > 0, "{:?}", ss.metrics().cache);
    }

    #[test]
    fn ordered_spill_charges_identically_across_protocols() {
        // PR 3 latent divergence, fixed by sweeping eviction before the
        // spill decision (`ResultCache::maybe_spill`): with
        // `result_cache_spill` set, the batched protocols defer the
        // eviction sweep to morsel boundaries, so `resident` could cross
        // the threshold mid-batch and charge spill I/O the row-at-a-time
        // protocol never pays. Rows *and* clock totals must now agree
        // across all three drivers.
        let (heap, index) = table(3000);
        let mut cfg = SmoothScanConfig::default().with_order(true);
        cfg.result_cache_spill = Some(50); // heavy pressure
        let run =
            |driver: fn(&mut dyn smooth_executor::Operator) -> smooth_types::Result<Vec<Row>>| {
                let s = storage(64);
                let mut ss = smooth(&heap, &index, &s, 800, cfg);
                let rows = driver(&mut ss).unwrap();
                assert!(ss.metrics().cache.spilled > 0, "pressure must spill: {:?}", ss.metrics());
                (rows, s.clock().snapshot(), s.io_snapshot())
            };
        let (volcano_rows, volcano_clock, volcano_io) = run(smooth_executor::collect_rows_volcano);
        let (batch_rows, batch_clock, batch_io) = run(smooth_executor::collect_rows_batch);
        let (col_rows, col_clock, col_io) = run(collect_rows);
        assert_eq!(batch_rows, volcano_rows, "row-batch rows");
        assert_eq!(col_rows, volcano_rows, "columnar rows");
        assert_eq!(batch_clock, volcano_clock, "row-batch clock with spill enabled");
        assert_eq!(col_clock, volcano_clock, "columnar clock with spill enabled");
        assert_eq!(batch_io, volcano_io);
        assert_eq!(col_io, volcano_io);
    }

    #[test]
    fn metrics_accuracy_reaches_one_at_high_selectivity() {
        let (heap, index) = table(3000);
        let s = storage(64);
        let mut ss = smooth(&heap, &index, &s, 1000, SmoothScanConfig::default());
        collect_rows(&mut ss).unwrap();
        let acc = ss.metrics().morphing_accuracy().unwrap();
        assert!(acc > 0.99, "all pages contain results at 100% sel: {acc}");
    }
}
