//! The skewed dataset of Section VI-D ("Adjusting to Skew Distribution").
//!
//! "First 15 M tuples have c2 = 0; afterwards another 0.001% of random
//! tuples have value 0. The result selectivity is slightly above 1%, with
//! most of the tuples coming from the pages placed at the beginning of the
//! relation heap." Scaled down proportionally: the dense head is 1% of the
//! table, the sprinkle is 0.001%.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smooth_executor::Predicate;
use smooth_planner::{AccessPathChoice, Database, LogicalPlan, ScanSpec};
use smooth_types::{Column, DataType, Result, Row, Schema, Value};

/// Installed table name.
pub const TABLE: &str = "skew";
/// Ordinal of the indexed column `c2`.
pub const C2: usize = 1;
/// Domain of the non-zero values.
pub const DOMAIN: i64 = 100_000;
/// Dense-head fraction (the paper's 15 M of 1.5 B).
pub const HEAD_FRACTION: f64 = 0.01;
/// Sprinkle fraction beyond the head.
pub const SPRINKLE_FRACTION: f64 = 0.00001;
/// Default row count (≈ 10 K pages).
pub const DEFAULT_ROWS: u64 = 1_200_000;

/// The table schema (same shape as the micro benchmark).
pub fn schema() -> Schema {
    let mut cols: Vec<Column> =
        (1..=10).map(|i| Column::new(format!("c{i}"), DataType::Int64)).collect();
    cols.push(Column::new("pad", DataType::Text));
    Schema::new(cols).expect("static schema")
}

/// Generate the skewed rows.
pub fn rows(count: u64, seed: u64) -> impl Iterator<Item = Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    let head = (count as f64 * HEAD_FRACTION) as u64;
    (0..count).map(move |i| {
        // Zero either in the dense head or as part of the sparse sprinkle.
        let c2 =
            if i < head || rng.gen_bool(SPRINKLE_FRACTION) { 0 } else { rng.gen_range(1..DOMAIN) };
        let mut values = Vec::with_capacity(11);
        values.push(Value::Int(i as i64));
        values.push(Value::Int(c2));
        for _ in 2..10 {
            values.push(Value::Int(rng.gen_range(0..DOMAIN)));
        }
        values.push(Value::str("."));
        Row::new(values)
    })
}

/// Load the skew table into `db` and index `c2`.
pub fn install(db: &mut Database, count: u64, seed: u64) -> Result<()> {
    db.load_table(TABLE, schema(), rows(count, seed))?;
    db.create_index(TABLE, C2, "skew_c2")
}

/// The experiment's predicate: `c2 = 0` (all of the dense head plus the
/// sprinkle — selectivity slightly above 1%).
pub fn predicate() -> Predicate {
    Predicate::int_eq(C2, 0)
}

/// The Fig. 8 query under a chosen access path.
pub fn query(access: AccessPathChoice) -> LogicalPlan {
    LogicalPlan::Scan(ScanSpec::new(TABLE, predicate()).with_access(access))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_storage::StorageConfig;

    #[test]
    fn head_is_dense_and_selectivity_is_one_percent_plus() {
        let n = 50_000u64;
        let all: Vec<Row> = rows(n, 3).collect();
        let head = (n as f64 * HEAD_FRACTION) as usize;
        assert!(all[..head].iter().all(|r| r.int(C2).unwrap() == 0));
        let zeros = all.iter().filter(|r| r.int(C2).unwrap() == 0).count() as f64;
        let sel = zeros / n as f64;
        assert!((HEAD_FRACTION..HEAD_FRACTION + 0.001).contains(&sel), "{sel}");
    }

    #[test]
    fn query_returns_the_zero_tuples() {
        let mut db = Database::new(StorageConfig::default());
        install(&mut db, 30_000, 9).unwrap();
        let got = db.run(&query(AccessPathChoice::ForceFull)).unwrap();
        assert!(got.rows.iter().all(|r| r.int(C2).unwrap() == 0));
        assert!(got.rows.len() >= 300);
        let smooth = db.run(&query(AccessPathChoice::Smooth(Default::default()))).unwrap();
        assert_eq!(smooth.rows.len(), got.rows.len());
    }
}
