//! The micro-benchmark of Section VI-C.
//!
//! "A table with 10 integer columns randomly populated with values from an
//! interval 0–10^5. The first column is the primary key identifier, and is
//! equal to a tuple order number. ... a non-clustered index is created on
//! the second column (c2)." Tuples are padded to ≈ 90 bytes so the
//! page-geometry ratios (tuples/page vs index fanout) match the paper's
//! setup, where Smooth Scan at 100% selectivity lands within ~20% of the
//! full scan.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smooth_executor::Predicate;
use smooth_planner::{AccessPathChoice, Database, LogicalPlan, ScanSpec};
use smooth_types::{Column, DataType, Result, Row, Schema, Value};

/// The table name installed by [`install`].
pub const TABLE: &str = "micro";
/// Domain of the non-key columns: `[0, KEY_DOMAIN)`.
pub const KEY_DOMAIN: i64 = 100_000;
/// Ordinal of the indexed column `c2`.
pub const C2: usize = 1;
/// Default row count (≈ 4 K pages of 8 KB at ~90 B/tuple).
pub const DEFAULT_ROWS: u64 = 480_000;

/// The micro table schema: `c1` (pk) … `c10`, plus a pad column.
pub fn schema() -> Schema {
    let mut cols: Vec<Column> =
        (1..=10).map(|i| Column::new(format!("c{i}"), DataType::Int64)).collect();
    cols.push(Column::new("pad", DataType::Text));
    Schema::new(cols).expect("static schema")
}

/// Generate the rows (deterministic under `seed`).
pub fn rows(count: u64, seed: u64) -> impl Iterator<Item = Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(move |i| {
        let mut values = Vec::with_capacity(11);
        values.push(Value::Int(i as i64)); // c1 = tuple order number
        for _ in 1..10 {
            values.push(Value::Int(rng.gen_range(0..KEY_DOMAIN)));
        }
        values.push(Value::str("."));
        Row::new(values)
    })
}

/// Load the micro table into `db` and index `c2`.
pub fn install(db: &mut Database, count: u64, seed: u64) -> Result<()> {
    db.load_table(TABLE, schema(), rows(count, seed))?;
    db.create_index(TABLE, C2, "micro_c2")
}

/// The benchmark predicate `c2 >= 0 AND c2 < selectivity·domain`.
pub fn predicate(selectivity: f64) -> Predicate {
    let hi = (selectivity.clamp(0.0, 1.0) * KEY_DOMAIN as f64).round() as i64;
    Predicate::int_half_open(C2, 0, hi)
}

/// The benchmark query as a scan plan.
pub fn query(selectivity: f64, ordered: bool, access: AccessPathChoice) -> LogicalPlan {
    let mut spec = ScanSpec::new(TABLE, predicate(selectivity)).with_access(access);
    if ordered {
        spec = spec.with_order();
    }
    LogicalPlan::Scan(spec)
}

/// The selectivity grid of Figs. 5/6/10 (percent values from the paper's
/// x-axes).
pub fn selectivity_grid() -> Vec<f64> {
    vec![0.0, 0.00001, 0.0001, 0.001, 0.01, 0.05, 0.20, 0.50, 0.75, 1.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_storage::StorageConfig;

    fn tiny_db() -> Database {
        let mut db = Database::new(StorageConfig::default());
        install(&mut db, 20_000, 42).unwrap();
        db
    }

    #[test]
    fn generation_is_deterministic_and_uniform() {
        let a: Vec<Row> = rows(1000, 7).collect();
        let b: Vec<Row> = rows(1000, 7).collect();
        assert_eq!(a, b);
        let c: Vec<Row> = rows(1000, 8).collect();
        assert_ne!(a, c);
        // c1 is the order number; c2 stays in-domain.
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.int(0).unwrap(), i as i64);
            let c2 = r.int(C2).unwrap();
            assert!((0..KEY_DOMAIN).contains(&c2));
        }
    }

    #[test]
    fn tuple_geometry_matches_the_paper_band() {
        let db = tiny_db();
        let heap = &db.table(TABLE).unwrap().heap;
        let tpp = heap.tuples_per_page();
        assert!((80.0..120.0).contains(&tpp), "≈90 B tuples → ~90–100 tuples/page, got {tpp}");
    }

    #[test]
    fn predicate_selectivity_is_calibrated() {
        let db = tiny_db();
        for sel in [0.01, 0.2, 0.9] {
            let q = query(sel, false, AccessPathChoice::ForceFull);
            let got = db.run(&q).unwrap().rows.len() as f64 / 20_000.0;
            assert!((got - sel).abs() < 0.02, "target {sel}, got {got}");
        }
        assert_eq!(db.run(&query(0.0, false, AccessPathChoice::ForceFull)).unwrap().rows.len(), 0);
    }

    #[test]
    fn ordered_query_orders_by_c2() {
        let db = tiny_db();
        let q = query(0.05, true, AccessPathChoice::Smooth(Default::default()));
        let rows = db.run(&q).unwrap().rows;
        assert!(!rows.is_empty());
        let keys: Vec<i64> = rows.iter().map(|r| r.int(C2).unwrap()).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }
}
