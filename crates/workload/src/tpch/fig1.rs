//! The Fig. 1 experiment: 19 TPC-H queries, original vs tuned.
//!
//! The paper's Fig. 1 runs TPC-H on DBMS-X twice: *original* (no secondary
//! indexes — plans are scans and hash joins) and *tuned* (the vendor
//! advisor's indexes installed). Tuning should only help; instead several
//! queries regress — catastrophically for Q12 (×400) and Q19 (×20),
//! moderately for Q3/Q18/Q21 — because index-based plans are chosen off
//! mis-estimated cardinalities.
//!
//! Each entry below is one query (simplified to this engine's operator
//! repertoire, with the spec's predicate *structure* preserved) plus the
//! statistics damage that models the estimation error the paper attributes
//! to that query. Queries whose tuned plans were fine carry no damage: for
//! them the optimizer sees honest numbers and tuning helps or is neutral —
//! exactly the mixed picture of Fig. 1. Q15/Q17/Q20 are absent from the
//! paper's figure and therefore absent here.

use smooth_executor::{AggFunc, JoinType, Predicate};
use smooth_planner::{JoinStrategy, LogicalPlan, ScanSpec};
use smooth_stats::StatsQuality;

use super::{c, l, n, o, p, ps, s};

/// One Fig. 1 query: a plan with `Auto` disciplines, plus the statistics
/// damage injected for the tuned configuration.
pub struct Fig1Query {
    /// Paper's query name ("Q12", ...).
    pub name: &'static str,
    /// Plan builder (access paths and join strategies all `Auto`).
    pub build: fn() -> LogicalPlan,
    /// `(table, damage)` pairs applied before planning the tuned run.
    pub tuned_damage: &'static [(&'static str, StatsQuality)],
}

fn scan(table: &str, pred: Predicate) -> LogicalPlan {
    LogicalPlan::Scan(ScanSpec::new(table, pred))
}

fn count_agg(plan: LogicalPlan) -> LogicalPlan {
    plan.aggregate(vec![], vec![AggFunc::CountStar])
}

fn q1() -> LogicalPlan {
    super::queries::q1(smooth_planner::AccessPathChoice::Auto)
}

fn q2() -> LogicalPlan {
    // min-cost supplier: partsupp ⋈ part(size) ⋈ supplier
    scan("partsupp", Predicate::True)
        .join(
            scan("part", Predicate::int_eq(p::SIZE, 15)),
            ps::PARTKEY,
            p::PARTKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .join(
            scan("supplier", Predicate::True),
            ps::SUPPKEY,
            s::SUPPKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .aggregate(vec![ps::WIDTH + p::SIZE], vec![AggFunc::Min(ps::SUPPLYCOST)])
}

fn q3() -> LogicalPlan {
    // shipping priority: orders in a quarter ⋈ lineitem shipped after it
    scan("orders", Predicate::int_half_open(o::ORDERDATE, 800, 890))
        .join(
            scan("lineitem", Predicate::int_ge(l::SHIPDATE, 890)),
            o::ORDERKEY,
            l::ORDERKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .aggregate(
            vec![o::ORDERDATE],
            vec![AggFunc::SumProduct(o::WIDTH + l::EXTENDEDPRICE, o::WIDTH + l::DISCOUNT)],
        )
}

fn q4() -> LogicalPlan {
    super::queries::q4(smooth_planner::AccessPathChoice::Auto)
}

fn q5() -> LogicalPlan {
    // local supplier volume: one region, one orderdate year
    scan("lineitem", Predicate::True)
        .join(
            scan("orders", Predicate::int_half_open(o::ORDERDATE, 365, 730)),
            l::ORDERKEY,
            o::ORDERKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .join(
            scan("customer", Predicate::True),
            l::WIDTH + o::CUSTKEY,
            c::CUSTKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .join(
            scan("supplier", Predicate::True),
            l::SUPPKEY,
            s::SUPPKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .join(
            scan("nation", Predicate::True),
            l::WIDTH + o::WIDTH + c::NATIONKEY,
            n::NATIONKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .join(
            scan("region", Predicate::StrEq { col: super::r::NAME, value: "ASIA".into() }),
            l::WIDTH + o::WIDTH + c::WIDTH + s::WIDTH + n::REGIONKEY,
            super::r::REGIONKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .aggregate(
            vec![l::WIDTH + o::WIDTH + c::WIDTH + s::WIDTH + n::NAME],
            vec![AggFunc::SumProduct(l::EXTENDEDPRICE, l::DISCOUNT)],
        )
}

fn q6() -> LogicalPlan {
    super::queries::q6(smooth_planner::AccessPathChoice::Auto)
}

fn q7() -> LogicalPlan {
    super::queries::q7(smooth_planner::AccessPathChoice::Auto)
}

fn q8() -> LogicalPlan {
    // national market share: two years, promo parts
    scan("lineitem", Predicate::int_half_open(l::SHIPDATE, 730, 1460))
        .join(
            scan("part", Predicate::int_eq(p::PROMO, 1)),
            l::PARTKEY,
            p::PARTKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .join(
            scan("orders", Predicate::True),
            l::ORDERKEY,
            o::ORDERKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .aggregate(
            vec![l::WIDTH + p::PROMO],
            vec![AggFunc::SumProduct(l::EXTENDEDPRICE, l::DISCOUNT)],
        )
}

fn q9() -> LogicalPlan {
    // product type profit: small parts across suppliers
    scan("lineitem", Predicate::True)
        .join(
            scan("part", Predicate::int_half_open(p::SIZE, 1, 8)),
            l::PARTKEY,
            p::PARTKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .join(
            scan("supplier", Predicate::True),
            l::SUPPKEY,
            s::SUPPKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .aggregate(
            vec![l::WIDTH + p::SIZE],
            vec![AggFunc::SumProduct(l::EXTENDEDPRICE, l::DISCOUNT)],
        )
}

fn q10() -> LogicalPlan {
    // returned items: one quarter, returnflag = R
    scan("lineitem", Predicate::StrEq { col: l::RETURNFLAG, value: "R".into() })
        .join(
            scan("orders", Predicate::int_half_open(o::ORDERDATE, 1095, 1185)),
            l::ORDERKEY,
            o::ORDERKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .join(
            scan("customer", Predicate::True),
            l::WIDTH + o::CUSTKEY,
            c::CUSTKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .aggregate(
            vec![l::WIDTH + o::WIDTH + c::NATIONKEY],
            vec![AggFunc::SumProduct(l::EXTENDEDPRICE, l::DISCOUNT)],
        )
}

fn q11() -> LogicalPlan {
    // important stock: one nation's suppliers
    scan("partsupp", Predicate::True)
        .join(
            scan("supplier", Predicate::True),
            ps::SUPPKEY,
            s::SUPPKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .join(
            scan("nation", Predicate::StrEq { col: n::NAME, value: "GERMANY".into() }),
            ps::WIDTH + s::NATIONKEY,
            n::NATIONKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .aggregate(vec![ps::PARTKEY], vec![AggFunc::SumProduct(ps::SUPPLYCOST, ps::AVAILQTY)])
}

fn q12() -> LogicalPlan {
    // shipping modes and delivery priority: one receipt year, two modes,
    // late commits. The famous Fig. 1 victim: its conjunction is heavily
    // correlated, so the tuned optimizer underestimates it and flips both
    // the access path (receiptdate index) and the join (INLJ into orders).
    let pred = Predicate::And(vec![
        Predicate::int_half_open(l::RECEIPTDATE, 1095, 1460),
        Predicate::StrIn { col: l::SHIPMODE, values: vec!["MAIL".into(), "SHIP".into()] },
        Predicate::IntColLt { left: l::COMMITDATE, right: l::RECEIPTDATE },
    ]);
    scan("lineitem", pred)
        .join(
            scan("orders", Predicate::True),
            l::ORDERKEY,
            o::ORDERKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .aggregate(vec![l::WIDTH + o::ORDERPRIORITY], vec![AggFunc::CountStar])
}

fn q13() -> LogicalPlan {
    // customer distribution
    count_agg(scan("customer", Predicate::True).join(
        scan("orders", Predicate::True),
        c::CUSTKEY,
        o::CUSTKEY,
        JoinType::Inner,
        JoinStrategy::Auto,
    ))
}

fn q14() -> LogicalPlan {
    super::queries::q14(smooth_planner::AccessPathChoice::Auto)
}

fn q16() -> LogicalPlan {
    // parts/supplier relationship: brand + size set
    scan("partsupp", Predicate::True)
        .join(
            scan(
                "part",
                Predicate::And(vec![
                    Predicate::int_half_open(p::SIZE, 10, 20),
                    Predicate::StrIn {
                        col: p::BRAND,
                        values: vec!["Brand#11".into(), "Brand#22".into()],
                    },
                ]),
            ),
            ps::PARTKEY,
            p::PARTKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .aggregate(vec![ps::WIDTH + p::SIZE], vec![AggFunc::CountStar])
}

fn q18() -> LogicalPlan {
    // large volume customers: orders in a window joined to all their lines
    scan("orders", Predicate::int_half_open(o::ORDERDATE, 600, 780))
        .join(
            scan("lineitem", Predicate::True),
            o::ORDERKEY,
            l::ORDERKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .aggregate(vec![o::ORDERKEY], vec![AggFunc::Sum(o::WIDTH + l::QUANTITY)])
}

fn q19() -> LogicalPlan {
    // discounted revenue: OR of brand/container/quantity conjuncts — the
    // second Fig. 1 victim (correlated disjunction, underestimated).
    let pred = Predicate::And(vec![
        // Many distinct quantity values: the index range interleaves their
        // TID runs, so a chosen index scan pays a near-table sweep per
        // value — the paper's ×20 regression pattern.
        Predicate::int_half_open(l::QUANTITY, 1, 20),
        Predicate::Or(vec![
            Predicate::StrIn { col: l::SHIPMODE, values: vec!["AIR".into(), "REG AIR".into()] },
            Predicate::int_half_open(l::DISCOUNT, 0, 3),
        ]),
    ]);
    scan("lineitem", pred)
        .join(
            scan("part", Predicate::True),
            l::PARTKEY,
            p::PARTKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .aggregate(vec![], vec![AggFunc::SumProduct(l::EXTENDEDPRICE, l::DISCOUNT)])
}

fn q21() -> LogicalPlan {
    // suppliers who kept orders waiting: late lines in an early window
    let pred = Predicate::And(vec![
        Predicate::int_half_open(l::SHIPDATE, 0, 60),
        Predicate::IntColLt { left: l::COMMITDATE, right: l::RECEIPTDATE },
    ]);
    scan("lineitem", pred)
        .join(
            scan("orders", Predicate::StrEq { col: o::ORDERSTATUS, value: "F".into() }),
            l::ORDERKEY,
            o::ORDERKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .join(
            scan("supplier", Predicate::True),
            l::SUPPKEY,
            s::SUPPKEY,
            JoinType::Inner,
            JoinStrategy::Auto,
        )
        .aggregate(vec![l::SUPPKEY], vec![AggFunc::CountStar])
}

fn q22() -> LogicalPlan {
    // global sales opportunity: wealthy customers
    count_agg(scan("customer", Predicate::int_ge(c::ACCTBAL, 600_000)))
}

/// The 19 queries of Fig. 1 with their tuned-run statistics damage.
pub fn fig1_queries() -> Vec<Fig1Query> {
    vec![
        Fig1Query { name: "Q1", build: q1, tuned_damage: &[] },
        Fig1Query { name: "Q2", build: q2, tuned_damage: &[] },
        Fig1Query {
            name: "Q3",
            build: q3,
            // Correlated quarter+segment: the advisor's orderdate index
            // gets picked off a 50× underestimate — a moderate regression.
            tuned_damage: &[("orders", StatsQuality::ScaledSelectivity(0.02))],
        },
        Fig1Query { name: "Q4", build: q4, tuned_damage: &[] },
        Fig1Query { name: "Q5", build: q5, tuned_damage: &[] },
        Fig1Query { name: "Q6", build: q6, tuned_damage: &[] },
        Fig1Query { name: "Q7", build: q7, tuned_damage: &[] },
        Fig1Query { name: "Q8", build: q8, tuned_damage: &[] },
        Fig1Query { name: "Q9", build: q9, tuned_damage: &[] },
        Fig1Query { name: "Q10", build: q10, tuned_damage: &[] },
        Fig1Query { name: "Q11", build: q11, tuned_damage: &[] },
        Fig1Query {
            name: "Q12",
            build: q12,
            // The ×400 catastrophe: shipmode × receipt-year × lateness is
            // so correlated the optimizer predicts almost nothing
            // qualifies → receiptdate index scan + INLJ into orders.
            tuned_damage: &[("lineitem", StatsQuality::FixedCardinality(10))],
        },
        Fig1Query { name: "Q13", build: q13, tuned_damage: &[] },
        Fig1Query { name: "Q14", build: q14, tuned_damage: &[] },
        Fig1Query { name: "Q16", build: q16, tuned_damage: &[] },
        Fig1Query {
            name: "Q18",
            build: q18,
            // Window + FK correlation: orderdate index picked too eagerly.
            tuned_damage: &[("orders", StatsQuality::ScaledSelectivity(0.005))],
        },
        Fig1Query {
            name: "Q19",
            build: q19,
            // The ×20 regression: the OR-of-conjuncts underestimate sends
            // the plan to the quantity index.
            tuned_damage: &[("lineitem", StatsQuality::FixedCardinality(20))],
        },
        Fig1Query {
            name: "Q21",
            build: q21,
            tuned_damage: &[("lineitem", StatsQuality::ScaledSelectivity(0.05))],
        },
        Fig1Query { name: "Q22", build: q22, tuned_damage: &[] },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::gen::{create_tuning_indexes, install, Scale};
    use smooth_planner::Database;
    use smooth_storage::StorageConfig;

    #[test]
    fn all_nineteen_queries_run_on_original_and_tuned() {
        let mut original = Database::new(StorageConfig::default());
        install(&mut original, Scale::tiny()).unwrap();
        let mut tuned = Database::new(StorageConfig::default());
        install(&mut tuned, Scale::tiny()).unwrap();
        create_tuning_indexes(&mut tuned).unwrap();
        let queries = fig1_queries();
        assert_eq!(queries.len(), 19, "Fig. 1 plots 19 queries");
        for q in &queries {
            let plan = (q.build)();
            let a = original.run(&plan).unwrap_or_else(|e| panic!("{} original: {e}", q.name));
            for (table, quality) in q.tuned_damage {
                tuned.set_stats_quality(table, *quality).unwrap();
            }
            let b = tuned.run(&plan).unwrap_or_else(|e| panic!("{} tuned: {e}", q.name));
            for (table, _) in q.tuned_damage {
                tuned.set_stats_quality(table, StatsQuality::Accurate).unwrap();
            }
            assert_eq!(a.rows.len(), b.rows.len(), "{}: tuning must not change results", q.name);
        }
    }

    #[test]
    fn q12_regresses_badly_when_tuned_with_bad_stats() {
        let mut tuned = Database::new(StorageConfig::default());
        install(&mut tuned, Scale::tiny()).unwrap();
        create_tuning_indexes(&mut tuned).unwrap();
        let plan = q12();
        let honest = tuned.run(&plan).unwrap().stats;
        tuned.set_stats_quality("lineitem", StatsQuality::FixedCardinality(10)).unwrap();
        let damaged = tuned.run(&plan).unwrap().stats;
        assert!(
            damaged.clock.total_ns() > 5 * honest.clock.total_ns(),
            "Q12 cliff: honest {:.3}s vs damaged {:.3}s",
            honest.secs(),
            damaged.secs()
        );
    }
}
