//! TPC-H-style data generation.
//!
//! Shapes follow the spec where the paper's queries depend on them:
//! uniform dates over seven years, `l_quantity` in 1..=50, discounts
//! 0..=10%, ~4 lineitems per order, `P(l_commitdate < l_receiptdate)` ≈
//! 0.65 (the Q4 predicate's selectivity the paper reports), 20% of parts
//! promotional, 25 nations in 5 regions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smooth_planner::Database;
use smooth_types::{Column, DataType, Result, Row, Schema, Value};

use super::DATE_MAX;

/// Scale factor: row counts relative to TPC-H SF 1.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Fraction of SF 1 (e.g. 0.02 → lineitem ≈ 120 K rows).
    pub sf: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Scale {
    /// The default experiment scale.
    pub fn default_bench() -> Self {
        Scale { sf: 0.02, seed: 2015 }
    }

    /// A tiny scale for unit tests.
    pub fn tiny() -> Self {
        Scale { sf: 0.002, seed: 7 }
    }

    fn count(&self, base: u64, min: u64) -> u64 {
        ((base as f64 * self.sf) as u64).max(min)
    }

    /// Customer row count.
    pub fn customers(&self) -> u64 {
        self.count(150_000, 50)
    }

    /// Orders row count.
    pub fn orders(&self) -> u64 {
        self.customers() * 10
    }

    /// Supplier row count.
    pub fn suppliers(&self) -> u64 {
        self.count(10_000, 10)
    }

    /// Part row count.
    pub fn parts(&self) -> u64 {
        self.count(200_000, 50)
    }
}

/// The five market segments.
pub const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];
/// The seven ship modes.
pub const SHIPMODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];
/// Order priorities.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
/// The 25 nation names (per the spec).
pub const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];
/// The five region names.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
/// Containers.
pub const CONTAINERS: [&str; 8] =
    ["SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX", "LG CASE", "LG BOX"];

fn int_col(name: &str) -> Column {
    Column::new(name, DataType::Int64)
}

fn text_col(name: &str) -> Column {
    Column::new(name, DataType::Text)
}

/// Install all eight tables into `db` and build the primary-key indexes
/// that model PostgreSQL's PK constraints (`orders`, `customer`,
/// `supplier`, `part`, `nation` — the INLJ inner paths of the paper's
/// plans). Secondary "tuning" indexes are *not* built here; see
/// [`create_tuning_indexes`].
pub fn install(db: &mut Database, scale: Scale) -> Result<()> {
    let mut rng = StdRng::seed_from_u64(scale.seed);

    // region / nation
    db.load_table(
        "region",
        Schema::new(vec![int_col("r_regionkey"), text_col("r_name")])?,
        REGIONS
            .iter()
            .enumerate()
            .map(|(i, name)| Row::new(vec![Value::Int(i as i64), Value::str(*name)])),
    )?;
    db.load_table(
        "nation",
        Schema::new(vec![int_col("n_nationkey"), int_col("n_regionkey"), text_col("n_name")])?,
        NATIONS.iter().enumerate().map(|(i, name)| {
            Row::new(vec![
                Value::Int(i as i64),
                Value::Int((i % REGIONS.len()) as i64),
                Value::str(*name),
            ])
        }),
    )?;

    // supplier
    let n_supp = scale.suppliers();
    {
        let rows: Vec<Row> = (0..n_supp)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i as i64),
                    Value::Int(rng.gen_range(0..25)),
                    Value::Int(rng.gen_range(-99_999..999_999)),
                ])
            })
            .collect();
        db.load_table(
            "supplier",
            Schema::new(vec![int_col("s_suppkey"), int_col("s_nationkey"), int_col("s_acctbal")])?,
            rows,
        )?;
    }

    // customer
    let n_cust = scale.customers();
    {
        let rows: Vec<Row> = (0..n_cust)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i as i64),
                    Value::Int(rng.gen_range(0..25)),
                    Value::Int(rng.gen_range(-99_999..999_999)),
                    Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
                ])
            })
            .collect();
        db.load_table(
            "customer",
            Schema::new(vec![
                int_col("c_custkey"),
                int_col("c_nationkey"),
                int_col("c_acctbal"),
                text_col("c_mktsegment"),
            ])?,
            rows,
        )?;
    }

    // part
    let n_part = scale.parts();
    {
        let rows: Vec<Row> = (0..n_part)
            .map(|i| {
                let promo = rng.gen_bool(0.2);
                Row::new(vec![
                    Value::Int(i as i64),
                    Value::Int(rng.gen_range(1..=50)),
                    Value::Int(promo as i64),
                    Value::str(format!("Brand#{}{}", rng.gen_range(1..=5), rng.gen_range(1..=5))),
                    Value::str(CONTAINERS[rng.gen_range(0..CONTAINERS.len())]),
                ])
            })
            .collect();
        db.load_table(
            "part",
            Schema::new(vec![
                int_col("p_partkey"),
                int_col("p_size"),
                int_col("p_promo"),
                text_col("p_brand"),
                text_col("p_container"),
            ])?,
            rows,
        )?;
    }

    // partsupp
    {
        let rows: Vec<Row> = (0..n_part * 4)
            .map(|i| {
                Row::new(vec![
                    Value::Int((i / 4) as i64),
                    Value::Int(rng.gen_range(0..n_supp) as i64),
                    Value::Int(rng.gen_range(1..10_000)),
                    Value::Int(rng.gen_range(100..100_000)),
                ])
            })
            .collect();
        db.load_table(
            "partsupp",
            Schema::new(vec![
                int_col("ps_partkey"),
                int_col("ps_suppkey"),
                int_col("ps_availqty"),
                int_col("ps_supplycost"),
            ])?,
            rows,
        )?;
    }

    // orders + lineitem (lineitems clustered by order, as dbgen emits them)
    let n_orders = scale.orders();
    let mut order_rows = Vec::with_capacity(n_orders as usize);
    let mut line_rows = Vec::with_capacity(n_orders as usize * 4);
    for okey in 0..n_orders {
        let orderdate = rng.gen_range(0..=DATE_MAX - 180);
        order_rows.push(Row::new(vec![
            Value::Int(okey as i64),
            Value::Int(rng.gen_range(0..n_cust) as i64),
            Value::Int(rng.gen_range(1_000..500_000)),
            Value::Int(orderdate),
            Value::str(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
            Value::str(["O", "F", "P"][rng.gen_range(0..3)]),
        ]));
        let lines = rng.gen_range(1..=7);
        for lineno in 0..lines {
            let shipdate = orderdate + rng.gen_range(1..=121);
            let commitdate = shipdate + rng.gen_range(-25..=35);
            let receiptdate = shipdate + rng.gen_range(1..=30);
            line_rows.push(Row::new(vec![
                Value::Int(okey as i64),
                Value::Int(rng.gen_range(0..n_part) as i64),
                Value::Int(rng.gen_range(0..n_supp) as i64),
                Value::Int(lineno),
                Value::Int(rng.gen_range(1..=50)),
                Value::Int(rng.gen_range(1_000..100_000)),
                Value::Int(rng.gen_range(0..=10)),
                Value::Int(rng.gen_range(0..=8)),
                Value::Int(shipdate),
                Value::Int(commitdate),
                Value::Int(receiptdate),
                Value::str(["A", "N", "R"][rng.gen_range(0..3)]),
                Value::str(if shipdate > DATE_MAX * 3 / 4 { "O" } else { "F" }),
                Value::str(SHIPMODES[rng.gen_range(0..SHIPMODES.len())]),
            ]));
        }
    }
    db.load_table(
        "orders",
        Schema::new(vec![
            int_col("o_orderkey"),
            int_col("o_custkey"),
            int_col("o_totalprice"),
            int_col("o_orderdate"),
            text_col("o_orderpriority"),
            text_col("o_orderstatus"),
        ])?,
        order_rows,
    )?;
    db.load_table(
        "lineitem",
        Schema::new(vec![
            int_col("l_orderkey"),
            int_col("l_partkey"),
            int_col("l_suppkey"),
            int_col("l_linenumber"),
            int_col("l_quantity"),
            int_col("l_extendedprice"),
            int_col("l_discount"),
            int_col("l_tax"),
            int_col("l_shipdate"),
            int_col("l_commitdate"),
            int_col("l_receiptdate"),
            text_col("l_returnflag"),
            text_col("l_linestatus"),
            text_col("l_shipmode"),
        ])?,
        line_rows,
    )?;

    // PK indexes (PostgreSQL builds these for PRIMARY KEY constraints).
    db.create_index("orders", super::o::ORDERKEY, "orders_pk")?;
    db.create_index("customer", super::c::CUSTKEY, "customer_pk")?;
    db.create_index("supplier", super::s::SUPPKEY, "supplier_pk")?;
    db.create_index("part", super::p::PARTKEY, "part_pk")?;
    db.create_index("nation", super::n::NATIONKEY, "nation_pk")?;
    Ok(())
}

/// Build the secondary indexes the tuning advisor proposes for this
/// workload (the Fig. 1 "tuned" configuration): range columns of the
/// selection predicates on the two big tables.
pub fn create_tuning_indexes(db: &mut Database) -> Result<()> {
    db.create_index("lineitem", super::l::SHIPDATE, "l_shipdate_idx")?;
    db.create_index("lineitem", super::l::RECEIPTDATE, "l_receiptdate_idx")?;
    db.create_index("lineitem", super::l::QUANTITY, "l_quantity_idx")?;
    db.create_index("orders", super::o::ORDERDATE, "o_orderdate_idx")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_storage::StorageConfig;

    fn tiny_db() -> Database {
        let mut db = Database::new(StorageConfig::default());
        install(&mut db, Scale::tiny()).unwrap();
        db
    }

    #[test]
    fn tables_load_with_foreign_keys_intact() {
        let db = tiny_db();
        let orders = db.table("orders").unwrap();
        let lineitem = db.table("lineitem").unwrap();
        let n_orders = orders.heap.tuple_count();
        assert!(n_orders >= 500);
        let lpo = lineitem.heap.tuple_count() as f64 / n_orders as f64;
        assert!((3.0..5.0).contains(&lpo), "≈4 lineitems/order, got {lpo}");
        // Dense PK domains → every FK resolves.
        let stats = orders.stats.honest();
        let okey = stats.column(super::super::o::ORDERKEY).unwrap();
        assert_eq!(okey.min, Some(0));
        assert_eq!(okey.max, Some(n_orders as i64 - 1));
    }

    #[test]
    fn q4_predicate_selectivity_is_paper_shaped() {
        // P(l_commitdate < l_receiptdate) ≈ 0.65 (Section VI-B: Q4's 65%).
        let db = tiny_db();
        let plan = smooth_planner::LogicalPlan::scan(smooth_planner::ScanSpec::new(
            "lineitem",
            smooth_executor::Predicate::IntColLt {
                left: super::super::l::COMMITDATE,
                right: super::super::l::RECEIPTDATE,
            },
        ));
        let n = db.table("lineitem").unwrap().heap.tuple_count() as f64;
        let got = db.run(&plan).unwrap().rows.len() as f64 / n;
        assert!((got - 0.65).abs() < 0.05, "{got}");
    }

    #[test]
    fn promo_fraction_is_twenty_percent() {
        let db = tiny_db();
        let plan = smooth_planner::LogicalPlan::scan(smooth_planner::ScanSpec::new(
            "part",
            smooth_executor::Predicate::int_eq(super::super::p::PROMO, 1),
        ));
        let n = db.table("part").unwrap().heap.tuple_count() as f64;
        let got = db.run(&plan).unwrap().rows.len() as f64 / n;
        assert!((got - 0.2).abs() < 0.08, "{got}");
    }

    #[test]
    fn tuning_indexes_install() {
        let mut db = tiny_db();
        create_tuning_indexes(&mut db).unwrap();
        let li = db.table("lineitem").unwrap();
        assert!(li.index_on(super::super::l::SHIPDATE).is_some());
        assert!(li.index_on(super::super::l::QUANTITY).is_some());
        assert!(db.table("orders").unwrap().index_on(super::super::o::ORDERDATE).is_some());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_db();
        let b = tiny_db();
        assert_eq!(
            a.table("lineitem").unwrap().heap.tuple_count(),
            b.table("lineitem").unwrap().heap.tuple_count()
        );
        let pa = a
            .run(&smooth_planner::LogicalPlan::scan(smooth_planner::ScanSpec::new(
                "lineitem",
                smooth_executor::Predicate::int_lt(super::super::l::SHIPDATE, 500),
            )))
            .unwrap();
        let pb = b
            .run(&smooth_planner::LogicalPlan::scan(smooth_planner::ScanSpec::new(
                "lineitem",
                smooth_executor::Predicate::int_lt(super::super::l::SHIPDATE, 500),
            )))
            .unwrap();
        assert_eq!(pa.rows.len(), pb.rows.len());
    }
}
