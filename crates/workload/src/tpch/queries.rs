//! The Fig. 4 / Table II query set: Q1, Q4, Q6, Q7, Q14.
//!
//! The paper picks these five because they cover the LINEITEM selectivity
//! spectrum — Q1: 98%, Q4: 65%, Q6: 2%, Q7: 30%, Q14: 1% — and reports,
//! for each, plain PostgreSQL's plan vs the same plan with Smooth Scan as
//! the LINEITEM access path. Every builder below is parameterized by that
//! access choice; `psql_access` returns the access path the paper says
//! PostgreSQL 9.2.1 chose (Section VI-B).

use smooth_executor::{AggFunc, JoinType, Predicate};
use smooth_planner::{AccessPathChoice, JoinStrategy, LogicalPlan, ScanSpec};

use super::{l, o, p, DATE_MAX};

/// Selectivity knobs (quantiles of the generated `l_shipdate`).
pub mod knobs {
    use super::DATE_MAX;
    /// Q1: `l_shipdate <= Q1_SHIPDATE` → ≈ 98% of lineitem.
    pub const Q1_SHIPDATE: i64 = DATE_MAX * 98 / 100;
    /// Q6: one year of shipdate (≈ 15%).
    pub const Q6_YEAR: (i64, i64) = (365, 730);
    /// Q7: two years of shipdate (≈ 30%).
    pub const Q7_YEARS: (i64, i64) = (365, 1095);
    /// Q14: one month of shipdate (≈ 1.25%).
    pub const Q14_MONTH: (i64, i64) = (1000, 1030);
    /// Q4: one quarter of orderdate (residual on the orders side).
    pub const Q4_QUARTER: (i64, i64) = (800, 890);
}

/// The five queries of the Fig. 4 study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig4Query {
    /// Pricing summary report (selection 98% + wide aggregation).
    Q1,
    /// Order priority checking (65%, join with orders).
    Q4,
    /// Forecasting revenue change (2%, scalar aggregate).
    Q6,
    /// Volume shipping (30%, 6-table join).
    Q7,
    /// Promotion effect (1%, join with part).
    Q14,
}

impl Fig4Query {
    /// All five, in paper order.
    pub fn all() -> [Fig4Query; 5] {
        [Fig4Query::Q1, Fig4Query::Q4, Fig4Query::Q6, Fig4Query::Q7, Fig4Query::Q14]
    }

    /// Display name with the paper's LINEITEM selectivity.
    pub fn label(&self) -> &'static str {
        match self {
            Fig4Query::Q1 => "Q1 (98%)",
            Fig4Query::Q4 => "Q4 (65%)",
            Fig4Query::Q6 => "Q6 (2%)",
            Fig4Query::Q7 => "Q7 (30%)",
            Fig4Query::Q14 => "Q14 (1%)",
        }
    }

    /// The access path plain PostgreSQL chose for LINEITEM (Section VI-B).
    pub fn psql_access(&self) -> AccessPathChoice {
        match self {
            // "plain PostgreSQL chooses Sort Scan (also called Bitmap Heap
            // Scan), which is an optimal path" — Q1.
            Fig4Query::Q1 => AccessPathChoice::ForceSort,
            // "PostgreSQL chooses the full scan as the outer table" — Q4.
            Fig4Query::Q4 => AccessPathChoice::ForceFull,
            // "plain PostgreSQL suffers in Q6 due to a suboptimal choice
            // of an index scan".
            Fig4Query::Q6 => AccessPathChoice::ForceIndex,
            // "an index choice for plain PostgreSQL over the LINEITEM
            // table for a 6-way join in Q7 hurts performance".
            Fig4Query::Q7 => AccessPathChoice::ForceIndex,
            // "Both ... start with an index scan as the outer input" — Q14.
            Fig4Query::Q14 => AccessPathChoice::ForceIndex,
        }
    }

    /// Build the plan with the given LINEITEM access path.
    pub fn plan(&self, access: AccessPathChoice) -> LogicalPlan {
        match self {
            Fig4Query::Q1 => q1(access),
            Fig4Query::Q4 => q4(access),
            Fig4Query::Q6 => q6(access),
            Fig4Query::Q7 => q7(access),
            Fig4Query::Q14 => q14(access),
        }
    }
}

fn lineitem_scan(pred: Predicate, access: AccessPathChoice) -> LogicalPlan {
    LogicalPlan::Scan(ScanSpec::new("lineitem", pred).with_access(access))
}

/// TPC-H Q1 (simplified): pricing summary over ~98% of lineitem.
pub fn q1(access: AccessPathChoice) -> LogicalPlan {
    lineitem_scan(Predicate::int_le(l::SHIPDATE, knobs::Q1_SHIPDATE), access).aggregate(
        vec![l::RETURNFLAG, l::LINESTATUS],
        vec![
            AggFunc::Sum(l::QUANTITY),
            AggFunc::Sum(l::EXTENDEDPRICE),
            AggFunc::SumProduct(l::EXTENDEDPRICE, l::DISCOUNT),
            AggFunc::Avg(l::QUANTITY),
            AggFunc::Avg(l::EXTENDEDPRICE),
            AggFunc::Avg(l::DISCOUNT),
            AggFunc::CountStar,
        ],
    )
}

/// TPC-H Q4 (simplified): late lineitems (~65%) joined to their orders in
/// a quarter, counted by priority. PostgreSQL's plan drives from LINEITEM
/// with a PK lookup into ORDERS (Section VI-B).
pub fn q4(access: AccessPathChoice) -> LogicalPlan {
    let late = Predicate::And(vec![
        Predicate::int_half_open(l::SHIPDATE, 0, DATE_MAX + 200),
        Predicate::IntColLt { left: l::COMMITDATE, right: l::RECEIPTDATE },
    ]);
    let orders_in_quarter =
        Predicate::int_half_open(o::ORDERDATE, knobs::Q4_QUARTER.0, knobs::Q4_QUARTER.1);
    lineitem_scan(late, access)
        .join(
            LogicalPlan::Scan(ScanSpec::new("orders", orders_in_quarter)),
            l::ORDERKEY,
            o::ORDERKEY,
            JoinType::Inner,
            JoinStrategy::IndexNestedLoop,
        )
        .aggregate(vec![l::WIDTH + o::ORDERPRIORITY], vec![AggFunc::CountStar])
}

/// TPC-H Q6: one shipdate year × discount band × low quantity (≈ 2%),
/// scalar revenue sum.
pub fn q6(access: AccessPathChoice) -> LogicalPlan {
    let pred = Predicate::And(vec![
        Predicate::int_half_open(l::SHIPDATE, knobs::Q6_YEAR.0, knobs::Q6_YEAR.1),
        Predicate::int_half_open(l::DISCOUNT, 5, 8),
        Predicate::int_lt(l::QUANTITY, 24),
    ]);
    lineitem_scan(pred, access)
        .aggregate(vec![], vec![AggFunc::SumProduct(l::EXTENDEDPRICE, l::DISCOUNT)])
}

/// TPC-H Q7 (simplified): 6-table join — lineitem (2 shipdate years,
/// ≈ 30%) → orders (PK) → customer → supplier → nation×2, FRANCE/GERMANY
/// pairs, revenue by nation pair.
pub fn q7(access: AccessPathChoice) -> LogicalPlan {
    let pred = Predicate::int_half_open(l::SHIPDATE, knobs::Q7_YEARS.0, knobs::Q7_YEARS.1);
    // Column offsets as the join tree concatenates schemas.
    let o_base = l::WIDTH; // orders joined after lineitem
    let c_base = o_base + o::WIDTH;
    let s_base = c_base + super::c::WIDTH;
    let n1_base = s_base + super::s::WIDTH;
    let n2_base = n1_base + super::n::WIDTH;
    let cust_nation = n1_base + super::n::NAME;
    let supp_nation = n2_base + super::n::NAME;
    lineitem_scan(pred, access)
        .join(
            LogicalPlan::Scan(ScanSpec::new("orders", Predicate::True)),
            l::ORDERKEY,
            o::ORDERKEY,
            JoinType::Inner,
            JoinStrategy::IndexNestedLoop,
        )
        .join(
            LogicalPlan::Scan(ScanSpec::new("customer", Predicate::True)),
            o_base + o::CUSTKEY,
            super::c::CUSTKEY,
            JoinType::Inner,
            JoinStrategy::Hash,
        )
        .join(
            LogicalPlan::Scan(ScanSpec::new("supplier", Predicate::True)),
            l::SUPPKEY,
            super::s::SUPPKEY,
            JoinType::Inner,
            JoinStrategy::Hash,
        )
        .join(
            LogicalPlan::Scan(ScanSpec::new("nation", Predicate::True)),
            c_base + super::c::NATIONKEY,
            super::n::NATIONKEY,
            JoinType::Inner,
            JoinStrategy::Hash,
        )
        .join(
            LogicalPlan::Scan(ScanSpec::new("nation", Predicate::True)),
            s_base + super::s::NATIONKEY,
            super::n::NATIONKEY,
            JoinType::Inner,
            JoinStrategy::Hash,
        )
        .filter(Predicate::Or(vec![
            Predicate::And(vec![
                Predicate::StrEq { col: cust_nation, value: "FRANCE".into() },
                Predicate::StrEq { col: supp_nation, value: "GERMANY".into() },
            ]),
            Predicate::And(vec![
                Predicate::StrEq { col: cust_nation, value: "GERMANY".into() },
                Predicate::StrEq { col: supp_nation, value: "FRANCE".into() },
            ]),
        ]))
        .aggregate(
            vec![cust_nation, supp_nation],
            vec![AggFunc::SumProduct(l::EXTENDEDPRICE, l::DISCOUNT)],
        )
}

/// TPC-H Q14 (simplified): one shipdate month (≈ 1.25%) joined to PART by
/// PK, revenue split by promo flag.
pub fn q14(access: AccessPathChoice) -> LogicalPlan {
    let pred = Predicate::int_half_open(l::SHIPDATE, knobs::Q14_MONTH.0, knobs::Q14_MONTH.1);
    lineitem_scan(pred, access)
        .join(
            LogicalPlan::Scan(ScanSpec::new("part", Predicate::True)),
            l::PARTKEY,
            p::PARTKEY,
            JoinType::Inner,
            JoinStrategy::IndexNestedLoop,
        )
        .aggregate(
            vec![l::WIDTH + p::PROMO],
            vec![AggFunc::SumProduct(l::EXTENDEDPRICE, l::DISCOUNT), AggFunc::CountStar],
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::gen::{create_tuning_indexes, install, Scale};
    use smooth_core::SmoothScanConfig;
    use smooth_planner::Database;
    use smooth_storage::StorageConfig;

    fn db() -> Database {
        let mut db = Database::new(StorageConfig::default());
        install(&mut db, Scale::tiny()).unwrap();
        create_tuning_indexes(&mut db).unwrap();
        db
    }

    #[test]
    fn all_queries_run_under_both_disciplines_with_equal_results() {
        let db = db();
        for q in Fig4Query::all() {
            let psql = db.run(&q.plan(q.psql_access())).unwrap();
            let smooth = db
                .run(&q.plan(AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic())))
                .unwrap();
            assert_eq!(psql.rows.len(), smooth.rows.len(), "{}: row counts must match", q.label());
            // Aggregates: compare value multisets (group order may differ).
            let mut a: Vec<String> =
                psql.rows.iter().map(|r| format!("{:?}", r.values())).collect();
            let mut b: Vec<String> =
                smooth.rows.iter().map(|r| format!("{:?}", r.values())).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{}", q.label());
        }
    }

    #[test]
    fn lineitem_selectivities_match_the_paper() {
        let db = db();
        let total = db.table("lineitem").unwrap().heap.tuple_count() as f64;
        let count = |pred: Predicate| {
            let plan = LogicalPlan::Scan(ScanSpec::new("lineitem", pred));
            db.run(&plan).unwrap().rows.len() as f64 / total
        };
        let q1 = count(Predicate::int_le(l::SHIPDATE, knobs::Q1_SHIPDATE));
        assert!(q1 > 0.93, "Q1 ≈ 98%, got {q1}");
        let q6 = count(Predicate::And(vec![
            Predicate::int_half_open(l::SHIPDATE, knobs::Q6_YEAR.0, knobs::Q6_YEAR.1),
            Predicate::int_half_open(l::DISCOUNT, 5, 8),
            Predicate::int_lt(l::QUANTITY, 24),
        ]));
        assert!((0.005..0.05).contains(&q6), "Q6 ≈ 2%, got {q6}");
        let q7 = count(Predicate::int_half_open(l::SHIPDATE, knobs::Q7_YEARS.0, knobs::Q7_YEARS.1));
        assert!((0.2..0.4).contains(&q7), "Q7 ≈ 30%, got {q7}");
        let q14 =
            count(Predicate::int_half_open(l::SHIPDATE, knobs::Q14_MONTH.0, knobs::Q14_MONTH.1));
        assert!((0.004..0.03).contains(&q14), "Q14 ≈ 1%, got {q14}");
    }

    #[test]
    fn q6_index_scan_is_the_paper_pathology() {
        // The index choice for Q6 must cost dramatically more than Smooth
        // Scan — the paper reports a factor of 10 prevented.
        let db = db();
        let slow = db.run(&q6(AccessPathChoice::ForceIndex)).unwrap().stats;
        let smooth =
            db.run(&q6(AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic()))).unwrap().stats;
        assert!(
            slow.clock.total_ns() > 2 * smooth.clock.total_ns(),
            "index {} vs smooth {}",
            slow.secs(),
            smooth.secs()
        );
        assert!(slow.io.io_requests > smooth.io.io_requests);
    }
}
