//! Workload generators and query definitions for the paper's experiments.
//!
//! * [`micro`] — the stress-test table of Section VI-C: integer columns
//!   uniformly drawn from `[0, 10^5)`, a primary-key first column, a
//!   non-clustered index on the second, and the selectivity-sweep query
//!   `SELECT * FROM relation WHERE c2 >= 0 AND c2 < X% [ORDER BY c2]`.
//! * [`skew`] — the skewed table of Section VI-D: a dense head of matching
//!   tuples followed by a sparse sprinkle, total selectivity ≈ 1%.
//! * [`tpch`] — a scaled TPC-H-style database (same schemas, foreign keys
//!   and value distributions shaped after the spec) plus the query plans
//!   used by Fig. 1, Fig. 4 and Table II.
//!
//! All generation is deterministic under an explicit seed.

pub mod micro;
pub mod skew;
pub mod tpch;
