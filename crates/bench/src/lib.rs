//! Experiment harness: regenerates every table and figure of the paper.
//!
//! `cargo run -p smooth-bench --release --bin experiments -- <id|all>`
//! where `<id>` is one of {fig1, fig4 (includes Table II), fig5a, fig5b,
//! fig6, fig7a, fig7b, fig8, fig9, fig10, fig11, table1, costmodel, cr}.
//!
//! Every experiment prints the paper's rows/series to stdout and writes a
//! CSV under `results/`. Scales default to the DESIGN.md values and can be
//! lowered for smoke runs via the environment variables `MICRO_ROWS`,
//! `SKEW_ROWS` and `TPCH_SF`.

pub mod experiments;
pub mod report;
pub mod setup;

pub use report::Report;
