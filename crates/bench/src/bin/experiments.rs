//! Experiment driver: regenerate the paper's tables and figures.
//!
//! ```text
//! experiments <id>...     run the listed experiments
//! experiments all         run everything (DESIGN.md §3 order)
//! experiments --list      show known ids
//! ```

use smooth_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: experiments <id>... | all | --list");
        eprintln!("known ids: {}", experiments::ALL.join(", "));
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--list") {
        for id in experiments::ALL {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let started = std::time::Instant::now();
    for id in ids {
        let t = std::time::Instant::now();
        if !experiments::run(id) {
            eprintln!("unknown experiment id '{id}' (try --list)");
            std::process::exit(2);
        }
        eprintln!("  [{id} took {:.1}s wall]", t.elapsed().as_secs_f64());
    }
    eprintln!("[all done in {:.1}s wall]", started.elapsed().as_secs_f64());
}
