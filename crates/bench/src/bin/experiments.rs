//! Experiment driver: regenerate the paper's tables and figures, and
//! (optionally) emit/gate the machine-readable perf report.
//!
//! ```text
//! experiments <id>...                 run the listed experiments
//! experiments all                     run everything (DESIGN.md §3 order)
//! experiments --list                  show known ids
//! experiments --json PATH <id>...     also write a JSON perf report
//! experiments --check BASE <id>...    fail (exit 1) on a >25% slowdown of
//!                                     any gated metric vs the baseline
//!                                     report BASE, or a missed floor
//! ```
//!
//! The CI `perf-smoke` job runs `--json BENCH_smoke.json --check
//! BENCH_smoke.json batch ...` at smoke scale: the committed file is the
//! baseline, the fresh file is the next trajectory point.

use std::path::PathBuf;
use std::process::exit;

use smooth_bench::report::{json_begin, json_take, JsonReport};
use smooth_bench::{experiments, setup};

fn usage() -> ! {
    eprintln!("usage: experiments [--json PATH] [--check BASELINE] <id>... | all | --list");
    eprintln!("known ids: {}", experiments::ALL.join(", "));
    exit(2);
}

fn main() {
    let mut json_out: Option<PathBuf> = None;
    let mut check: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--list" => list = true,
            "--json" => json_out = Some(args.next().map(PathBuf::from).unwrap_or_else(|| usage())),
            "--check" => check = Some(args.next().map(PathBuf::from).unwrap_or_else(|| usage())),
            other => ids.push(other.to_string()),
        }
    }
    if list {
        for id in experiments::ALL {
            println!("{id}");
        }
        return;
    }
    if ids.is_empty() {
        usage();
    }
    // Load the baseline before running: with `--json` pointing at the same
    // path, the fresh report overwrites the baseline file afterwards.
    let baseline = check.as_ref().map(|path| match JsonReport::load(path) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("cannot read baseline {}: {e}", path.display());
            exit(2);
        }
    });
    if json_out.is_some() || check.is_some() {
        let mut report = JsonReport::new("perf-smoke");
        report.scale("micro_rows", setup::micro_rows() as f64);
        report.scale("skew_rows", setup::skew_rows() as f64);
        report.scale("tpch_sf", setup::tpch_sf());
        json_begin(report);
    }
    let ids: Vec<&str> = if ids.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    let started = std::time::Instant::now();
    for id in ids {
        let t = std::time::Instant::now();
        if !experiments::run(id) {
            eprintln!("unknown experiment id '{id}' (try --list)");
            exit(2);
        }
        let wall = t.elapsed().as_secs_f64();
        smooth_bench::report::json_metric(smooth_bench::report::Metric::info(
            format!("wall.{id}.secs"),
            wall,
            "wall_s",
            false,
        ));
        eprintln!("  [{id} took {wall:.1}s wall]");
    }
    eprintln!("[all done in {:.1}s wall]", started.elapsed().as_secs_f64());
    let report = json_take();
    if let (Some(path), Some(report)) = (&json_out, &report) {
        match report.save(path) {
            Ok(()) => eprintln!("[perf report written to {}]", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                exit(2);
            }
        }
    }
    if let (Some(baseline), Some(report)) = (baseline, report) {
        let failures = report.regressions(&baseline);
        if failures.is_empty() {
            eprintln!("[perf gate passed vs baseline]");
        } else {
            eprintln!("[perf gate FAILED vs baseline]");
            for f in &failures {
                eprintln!("  {f}");
            }
            exit(1);
        }
    }
}
