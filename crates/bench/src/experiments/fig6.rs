//! Fig. 6: sensitivity of the Smooth Scan modes.
//!
//! Compares Full Scan, Index Scan, Smooth Scan capped at Mode 1 ("Entire
//! Page Probe") and full Smooth Scan with Mode 2 ("Flattening Access").
//! Expected shape: Mode-1-only beats Index Scan by ~10× at 100% (repeated
//! accesses removed) but stays ~rand/seq above Full Scan; flattening closes
//! that gap to ~20%.

use smooth_core::SmoothScanConfig;
use smooth_planner::AccessPathChoice;
use smooth_storage::DeviceProfile;
use smooth_workload::micro;

use crate::report::Report;
use crate::setup;

/// Run the mode-sensitivity sweep.
pub fn run() {
    let db = setup::micro_db(DeviceProfile::hdd());
    let mut report = Report::new(
        "fig6",
        "mode sensitivity (exec time, virtual s)",
        &["sel_%", "full_scan", "index_scan", "ss_entire_page_probe", "ss_flattening"],
    );
    for sel in micro::selectivity_grid() {
        let mut cells = vec![format!("{}", sel * 100.0)];
        for access in [
            AccessPathChoice::ForceFull,
            AccessPathChoice::ForceIndex,
            AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic().mode1_only()),
            AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic()),
        ] {
            let plan = micro::query(sel, false, access);
            let stats = db.run(&plan).expect("fig6 query").stats;
            cells.push(Report::secs(stats.secs()));
        }
        report.row(cells);
    }
    report.finish();
}
