//! One module per paper artifact. See DESIGN.md §3 for the experiment
//! index mapping each module to its figure/table, workload and parameters.

pub mod batch;
pub mod columnar;
pub mod costmodel;
pub mod cr;
pub mod faults;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod join;
pub mod parallel;
pub mod serve;
pub mod spill;
pub mod textscan;

/// Known experiment ids, in paper order.
pub const ALL: &[&str] = &[
    "fig1",
    "fig4",
    "fig5a",
    "fig5b",
    "fig6",
    "fig7a",
    "fig7b",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table1",
    "costmodel",
    "cr",
    "batch",
    "columnar",
    "textscan",
    "parallel",
    "join",
    "serve",
    "spill",
    "faults",
];

/// Dispatch one experiment by id. Returns false for unknown ids.
pub fn run(id: &str) -> bool {
    match id {
        "fig1" => fig1::run(),
        "fig4" | "table2" => fig4::run(),
        "fig5a" => fig5::run(true),
        "fig5b" => fig5::run(false),
        "fig6" => fig6::run(),
        "fig7a" => fig7::run_policies(),
        "fig7b" => fig7::run_triggers(),
        "fig8" => fig8::run(),
        "fig9" => fig9::run(),
        "fig10" => fig10::run(),
        "fig11" => fig11::run(),
        "table1" | "costmodel" => costmodel::run(),
        "cr" => cr::run(),
        "batch" => batch::run(),
        "columnar" => columnar::run(),
        "textscan" => textscan::run(),
        "parallel" => parallel::run(),
        "join" => join::run(),
        "serve" => serve::run(),
        "spill" => spill::run(),
        "faults" => faults::run(),
        _ => return false,
    }
    true
}
