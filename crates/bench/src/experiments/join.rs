//! Columnar-native hash join with the parallel partitioned build.
//!
//! Not a paper figure: this experiment records what the join phase of
//! PR 5 buys — the build side of a hash join used to drain serially
//! before any worker started; now it is a parallel phase of its own
//! (per-worker hash-partitioned partials over a shared build source,
//! merged by global build position) and the probe gathers columnar
//! output without materializing a row. The shape is a self-join of the
//! micro table: probe = full scan, build = the 10%-selectivity filtered
//! scan (a partitioned heap source of its own), joined on `c2`, with a
//! scalar aggregate sink so the pipeline stays exact-merge.
//!
//! **Gates.** As everywhere in this repo, only machine-comparable
//! numbers gate (see `report.rs`): the deterministic modeled speedups
//! from the traced virtual-clock ledger ([`ScalingLedger`]) — the
//! whole-pipeline 4-worker speedup and, the headline of this
//! experiment, the modeled speedup of the **blocking build phase**
//! alone ([`ScalingLedger::build_speedup`]), which the serial build by
//! construction held at 1×. A hard equality assert (the
//! `join.virtual.sel10.clock_match` gate) pins rows, virtual CPU/IO
//! clock totals and I/O counters of every N-worker run to the serial
//! columnar driver — the partitioned build must be an
//! execution-strategy change only. Measured wall clock is reported
//! ungated.

use std::time::Instant;

use smooth_executor::{run_pipeline_traced, AggFunc, JoinType, ScalingLedger};
use smooth_planner::{AccessPathChoice, Database, JoinStrategy, LogicalPlan, ScanSpec};
use smooth_storage::DeviceProfile;
use smooth_workload::micro;

use crate::experiments::batch::RUNS;
use crate::report::{json_metric, Metric, Report};
use crate::setup;

/// Modeled 4-worker speedup floor on the whole join pipeline.
pub const MODEL_SPEEDUP_FLOOR: f64 = 1.8;
/// Modeled 4-worker speedup floor on the build phase alone.
pub const BUILD_SPEEDUP_FLOOR: f64 = 1.5;

/// NVMe-like profile: the fast-device regime where the scan and build
/// become CPU-bound and the worker pool matters (same profile as the
/// `parallel` experiment).
fn nvme() -> DeviceProfile {
    DeviceProfile::custom("nvme", 3_000, 6_000)
}

/// Self-join of the micro table on `c2`: full-scan probe side, filtered
/// build side at 10% selectivity, scalar aggregate sink.
fn join_plan() -> LogicalPlan {
    let probe = micro::query(1.0, false, AccessPathChoice::ForceFull);
    let build = LogicalPlan::scan(
        ScanSpec::new(micro::TABLE, micro::predicate(0.1)).with_access(AccessPathChoice::ForceFull),
    );
    probe
        .join(build, micro::C2, micro::C2, JoinType::Inner, JoinStrategy::Hash)
        .aggregate(vec![], vec![AggFunc::CountStar, AggFunc::Sum(0)])
}

/// Cold-run the plan through the traced single-worker pipeline.
fn traced_run(db: &Database, plan: &LogicalPlan) -> (usize, u64, ScalingLedger) {
    let pipeline = db.parallel_pipeline(plan).expect("plan builds").expect("plan parallelizes");
    db.storage().flush_pool();
    let clock0 = db.storage().clock().snapshot();
    let (rows, ledger) = run_pipeline_traced(pipeline).expect("traced run");
    let delta = db.storage().clock().snapshot().since(&clock0);
    (rows.len(), delta.total_ns(), ledger)
}

/// Run the join-scaling experiment and the equality checks.
pub fn run() {
    let mut db = setup::micro_db(nvme());
    let plan = join_plan();
    let mut table = Report::new(
        "join",
        "columnar hash join with the parallel partitioned build at 10% build selectivity \
         (modeled speedups from the virtual-clock ledger; wall speedup is host-dependent \
         and ungated)",
        &["shape", "w2", "w4", "w8", "build_w4", "virtual_ms_1w"],
    );

    // Single-worker reference through the serial columnar driver.
    db.set_workers(1);
    let serial = db.run(&plan).expect("serial run");

    // Traced single-worker pipeline: identical rows and clock, plus the
    // per-morsel ledger (build sections included) the model consumes.
    let (n_traced, traced_ns, ledger) = traced_run(&db, &plan);
    assert_eq!(n_traced as u64, serial.stats.rows, "traced row count");
    assert_eq!(
        traced_ns,
        serial.stats.clock.total_ns(),
        "traced pipeline must charge exactly the serial driver's clock"
    );
    assert!(!ledger.build_src_ns.is_empty(), "build phase must be traced");

    // Hard equality: N-worker runs (partitioned build + parallel probe)
    // charge identical virtual CPU/IO totals and produce identical rows.
    for workers in [2usize, 4, 8] {
        db.set_workers(workers);
        let got = db.run(&plan).expect("parallel run");
        assert_eq!(got.rows, serial.rows, "rows diverge at {workers} workers");
        assert_eq!(
            (got.stats.clock.cpu_ns, got.stats.clock.io_ns),
            (serial.stats.clock.cpu_ns, serial.stats.clock.io_ns),
            "virtual clock totals must be identical at {workers} workers"
        );
        assert_eq!(
            (got.stats.io.io_requests, got.stats.io.pages_read, got.stats.io.buffer_hits),
            (serial.stats.io.io_requests, serial.stats.io.pages_read, serial.stats.io.buffer_hits),
            "I/O counters must be identical at {workers} workers"
        );
    }

    let speedups: Vec<f64> = [2, 4, 8].iter().map(|&w| ledger.speedup(w)).collect();
    let build_w4 = ledger.build_speedup(4);
    table.row(vec![
        "self-join".into(),
        Report::factor(speedups[0]),
        Report::factor(speedups[1]),
        Report::factor(speedups[2]),
        Report::factor(build_w4),
        format!("{:.2}", ledger.total_ns() as f64 / 1e6),
    ]);
    for (w, s) in [(2usize, speedups[0]), (4, speedups[1]), (8, speedups[2])] {
        let metric = if w == 4 {
            Metric::gated(format!("join.virtual.sel10.model_speedup.w{w}"), s, "x", true)
                .with_floor(MODEL_SPEEDUP_FLOOR)
        } else {
            Metric::gated(format!("join.virtual.sel10.model_speedup.w{w}"), s, "x", true)
        };
        json_metric(metric);
    }
    // The headline: the blocking build phase itself now scales (it was
    // pinned at 1× by the serial build).
    json_metric(
        Metric::gated("join.build.sel10.model_speedup.w4", build_w4, "x", true)
            .with_floor(BUILD_SPEEDUP_FLOOR),
    );

    // Measured wall clock, 1 worker vs 4 (host-dependent — never gated).
    let wall = |workers: usize, db: &mut Database| -> f64 {
        db.set_workers(workers);
        let mut best = f64::INFINITY;
        db.run(&plan).expect("warmup");
        for _ in 0..RUNS {
            let t = Instant::now();
            db.run(&plan).expect("timed run");
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    let serial_wall = wall(1, &mut db);
    let parallel_wall = wall(4, &mut db);
    json_metric(Metric::info(
        "join.wall_speedup.w4",
        serial_wall / parallel_wall.max(1e-12),
        "x",
        true,
    ));

    table.finish();

    // Survives to the report only after every equality assert held.
    json_metric(Metric::gated("join.virtual.sel10.clock_match", 1.0, "bool", true).with_floor(1.0));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smoke-scale gate invariants: the modeled build speedup clears
    /// the committed floor with margin, and the N-worker clock totals
    /// equal the serial driver's exactly.
    #[test]
    fn build_speedup_clears_floor_and_clocks_match() {
        let mut db = setup::micro_db(nvme());
        let plan = join_plan();
        db.set_workers(1);
        let serial = db.run(&plan).expect("serial");
        let (n, traced_ns, ledger) = traced_run(&db, &plan);
        assert_eq!(n as u64, serial.stats.rows);
        assert_eq!(traced_ns, serial.stats.clock.total_ns());
        assert!(
            ledger.build_speedup(4) >= BUILD_SPEEDUP_FLOOR,
            "modeled 4-worker build speedup {:.2} under the {BUILD_SPEEDUP_FLOOR} floor",
            ledger.build_speedup(4)
        );
        assert!(
            ledger.speedup(4) >= MODEL_SPEEDUP_FLOOR,
            "modeled 4-worker speedup {:.2} under the {MODEL_SPEEDUP_FLOOR} floor",
            ledger.speedup(4)
        );
        db.set_workers(4);
        let parallel = db.run(&plan).expect("parallel");
        assert_eq!(parallel.rows, serial.rows);
        assert_eq!(parallel.stats.clock, serial.stats.clock);
    }
}
