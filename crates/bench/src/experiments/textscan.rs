//! Zero-copy Text views vs owned decode on the pad-heavy micro table.
//!
//! Not a paper figure: this experiment records what the `TextColumn`
//! view layout (spans into pinned page buffers, see
//! `smooth_types::columns`) buys over the owned decode path it
//! replaced, and pins the invariant that makes the layout shippable —
//! **views change allocation behavior only**. One full scan at 10%
//! selectivity (Int predicate on `c2`, so the probe scratch never
//! touches text) runs twice through the columnar driver: once with
//! views (the default), once with `force_text_views(false)` degrading
//! every decoded text value to owned arena bytes.
//!
//! Reported and gated:
//!
//! * **rows equality** — the two modes return byte-identical rows, and
//!   the `(owned, views)` decode counters prove each mode actually took
//!   its path (gated bool).
//! * **driver equality** — rows and virtual clock are identical across
//!   the Volcano, columnar and parallel drivers with views on (gated
//!   bool): views never shift rows, clock or I/O.
//! * **modeled speedup** — the virtual clock cannot see allocation (by
//!   design: determinism), so the allocation win is modeled on the CPU
//!   lane: `modeled_cpu = cpu_ns + ALLOC_NS × owned_decodes`, pricing
//!   each owned text materialization at [`ALLOC_NS`] (an
//!   allocate-copy-free round-trip, calibrated to the cost model's
//!   `emit_tuple_ns` scale). The
//!   views/owned ratio of modeled CPU time is deterministic and
//!   machine-independent, gated at a ≥[`SPEEDUP_FLOOR`] floor.
//! * **modeled throughput** — scanned krows per modeled-CPU-second with
//!   views, floor-gated as the trajectory number.
//!
//! Wall-clock throughput for both modes is reported informationally
//! (machine-dependent, never gated).

use std::sync::Arc;

use smooth_executor::{collect_batches, collect_rows_volcano, FullTableScan};
use smooth_planner::AccessPathChoice;
use smooth_storage::DeviceProfile;
use smooth_types::{force_text_views, text_decode_counters, ColumnBatch, Row};
use smooth_workload::micro;

use crate::experiments::batch::{best_wall_secs, RUNS};
use crate::report::{json_metric, Metric, Report};
use crate::setup;

/// Modeled CPU cost of one owned text materialization (allocate, copy,
/// eventually free), in virtual nanoseconds. The virtual clock itself
/// charges decode work independent of allocation strategy — that is
/// what keeps rows/clock/IO byte-identical across modes — so the
/// allocation win is priced here, on top of the measured CPU lane.
/// Calibrated to `CpuCosts::emit_tuple_ns` (250 ns, the model's price
/// for materializing one qualifying tuple): a heap-allocation
/// round-trip per text value is work of the same order.
pub const ALLOC_NS: u64 = 250;

/// Floor for the modeled views-vs-owned CPU speedup at 10% selectivity.
pub const SPEEDUP_FLOOR: f64 = 1.3;

/// Floor for modeled scan throughput (krows per modeled CPU second)
/// with views. Deterministic at a given scale; observed ≈15,000 at
/// both smoke and default scale (per-row CPU is scale-invariant), so
/// this holds 1.5× headroom.
pub const KROWS_FLOOR: f64 = 10_000.0;

/// Restore the in-process view latch to what the environment dictates.
fn restore_env_default() {
    force_text_views(std::env::var("SMOOTH_TEXT_VIEWS").map_or(true, |v| v != "0"));
}

/// Run the views-vs-owned comparison and the driver-equality checks.
pub fn run() {
    let db = setup::micro_db(DeviceProfile::hdd());
    let heap = Arc::clone(&db.table(micro::TABLE).expect("micro installed").heap);
    let storage = db.storage().clone();
    let rows_total = heap.tuple_count() as f64;
    let pred = micro::predicate(0.1);

    let mk = || FullTableScan::new(Arc::clone(&heap), storage.clone(), pred.clone());
    let drain = |batches: Vec<ColumnBatch>| -> Vec<Row> {
        batches.into_iter().flat_map(ColumnBatch::into_rows).collect()
    };

    // Mode 1: zero-copy views (the default), cold clock bracketing.
    force_text_views(true);
    db.storage().flush_pool();
    let clock0 = storage.clock().snapshot();
    let (owned0, views0) = text_decode_counters();
    let views_rows = drain(collect_batches(&mut mk()).expect("views scan"));
    let views_clock = storage.clock().snapshot().since(&clock0);
    let (owned1, views1) = text_decode_counters();
    let (views_mode_owned, views_mode_views) = (owned1 - owned0, views1 - views0);

    // Mode 2: every decoded text value degraded to owned arena bytes.
    force_text_views(false);
    db.storage().flush_pool();
    let clock0 = storage.clock().snapshot();
    let owned_rows = drain(collect_batches(&mut mk()).expect("owned scan"));
    let owned_clock = storage.clock().snapshot().since(&clock0);
    let (owned2, _) = text_decode_counters();
    let owned_mode_owned = owned2 - owned1;

    // The modes differ only in where string bytes live.
    assert_eq!(views_rows, owned_rows, "views changed the result rows");
    assert_eq!(
        (views_clock.cpu_ns, views_clock.io_ns),
        (owned_clock.cpu_ns, owned_clock.io_ns),
        "views changed the virtual clock"
    );
    assert_eq!(views_mode_owned, 0, "views mode decoded text owned");
    assert!(views_mode_views > 0, "views mode never took the view path");
    assert_eq!(owned_mode_owned, views_mode_views, "modes decoded different text volumes");
    json_metric(
        Metric::gated("textscan.sel10.views_match_owned", 1.0, "bool", true).with_floor(1.0),
    );

    // Modeled allocation win, on the CPU lane (see module docs).
    let modeled_views_cpu = views_clock.cpu_ns;
    let modeled_owned_cpu = owned_clock.cpu_ns + ALLOC_NS * owned_mode_owned;
    let speedup = modeled_owned_cpu as f64 / modeled_views_cpu.max(1) as f64;
    let modeled_krows = rows_total / (modeled_views_cpu.max(1) as f64 / 1e9) / 1e3;
    json_metric(
        Metric::gated("textscan.sel10.modeled_speedup", speedup, "x", true)
            .with_floor(SPEEDUP_FLOOR),
    );
    json_metric(
        Metric::gated("textscan.sel10.modeled_krows_s", modeled_krows, "krows_per_s", true)
            .with_floor(KROWS_FLOOR),
    );

    // Wall clock for the record (machine-dependent, never gated).
    force_text_views(true);
    let (views_s, n_views) =
        best_wall_secs(|| drain(collect_batches(&mut mk()).expect("views scan")).len());
    force_text_views(false);
    let (owned_s, n_owned) =
        best_wall_secs(|| drain(collect_batches(&mut mk()).expect("owned scan")).len());
    assert_eq!(n_views, n_owned, "modes must agree on the result set");
    json_metric(Metric::info(
        "textscan.sel10.wall_speedup",
        owned_s / views_s.max(1e-12),
        "x",
        true,
    ));

    let mut wall = Report::new(
        "textscan",
        format!("zero-copy text views vs owned decode at 10% selectivity (best of {RUNS})"),
        &["mode", "rows_out", "text_decodes", "wall_krows_s", "modeled_cpu_ms"],
    );
    wall.row(vec![
        "views".into(),
        n_views.to_string(),
        views_mode_views.to_string(),
        format!("{:.0}", rows_total / views_s.max(1e-12) / 1e3),
        format!("{:.3}", modeled_views_cpu as f64 / 1e6),
    ]);
    wall.row(vec![
        "owned".into(),
        n_owned.to_string(),
        owned_mode_owned.to_string(),
        format!("{:.0}", rows_total / owned_s.max(1e-12) / 1e3),
        format!("{:.3}", modeled_owned_cpu as f64 / 1e6),
    ]);
    wall.finish();

    // Driver equality with views on: Volcano, columnar and parallel
    // return identical rows and charge the identical virtual clock.
    force_text_views(true);
    let plan = micro::query(0.1, false, AccessPathChoice::ForceFull);
    let mut op = db.build(&plan).expect("plan builds");
    db.storage().flush_pool();
    let clock0 = db.storage().clock().snapshot();
    let volcano_rows = collect_rows_volcano(op.as_mut()).expect("volcano run");
    let volcano_clock = db.storage().clock().snapshot().since(&clock0);
    for workers in [1usize, 4] {
        let mut dbw = setup::micro_db(DeviceProfile::hdd());
        dbw.set_workers(workers);
        let got = dbw.run(&plan).expect("driver run");
        assert_eq!(got.rows, volcano_rows, "rows diverge at {workers} workers");
        assert_eq!(
            (got.stats.clock.cpu_ns, got.stats.clock.io_ns),
            (volcano_clock.cpu_ns, volcano_clock.io_ns),
            "clock diverges at {workers} workers"
        );
    }
    // Survives to the report only after every assert above held.
    json_metric(Metric::gated("textscan.sel10.driver_match", 1.0, "bool", true).with_floor(1.0));
    restore_env_default();
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_executor::Predicate;
    use smooth_storage::{HeapLoader, Storage};
    use smooth_types::{Column, DataType, Schema, Value};

    /// Views on/off produce byte-identical rows, tick the matching
    /// decode counters, and charge the identical virtual clock.
    ///
    /// Counter assertions are one-sided (`>=`): the counters and the
    /// view latch are process-global, and sibling tests in this binary
    /// decode text concurrently. Exact attribution is pinned where runs
    /// are solo — `smooth-types`' unit tests and [`run`].
    #[test]
    fn view_modes_agree_and_counters_attribute() {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int64),
            Column::new("pad", DataType::Text),
        ])
        .unwrap();
        let mut l = HeapLoader::new_mem("t", schema);
        for i in 0..3000i64 {
            l.push(&Row::new(vec![Value::Int(i % 100), Value::str("x".repeat(60))])).unwrap();
        }
        let heap = Arc::new(l.finish().unwrap());
        let pred = Predicate::int_half_open(0, 0, 10);

        force_text_views(true);
        let s1 = Storage::default_hdd();
        let (o0, v0) = text_decode_counters();
        let mut op = FullTableScan::new(Arc::clone(&heap), s1.clone(), pred.clone());
        let views: Vec<Row> = collect_batches(&mut op)
            .unwrap()
            .into_iter()
            .flat_map(ColumnBatch::into_rows)
            .collect();
        let (o1, v1) = text_decode_counters();
        assert!(o1 >= o0 && v1 - v0 >= views.len() as u64, "views mode never took the view path");

        force_text_views(false);
        let s2 = Storage::default_hdd();
        let mut op = FullTableScan::new(Arc::clone(&heap), s2.clone(), pred);
        let owned: Vec<Row> = collect_batches(&mut op)
            .unwrap()
            .into_iter()
            .flat_map(ColumnBatch::into_rows)
            .collect();
        let (o2, _) = text_decode_counters();
        assert!(o2 - o1 >= owned.len() as u64, "owned mode never decoded owned");

        assert_eq!(views, owned);
        assert!(!views.is_empty());
        assert_eq!(s1.clock().snapshot().cpu_ns, s2.clock().snapshot().cpu_ns);
        assert_eq!(s1.clock().snapshot().io_ns, s2.clock().snapshot().io_ns);
        restore_env_default();
    }
}
