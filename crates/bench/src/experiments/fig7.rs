//! Fig. 7: impact of morphing policies (7a) and triggering points (7b).
//!
//! 7a — Greedy converges to the full scan fastest (over-fetching at low
//! selectivity); Selectivity-Increase and Elastic stay cheaper early and
//! converge by ~5–10%.
//!
//! 7b — Eager vs Optimizer-driven (traditional index until the optimizer's
//! 0.005%-selectivity estimate is violated, then Selectivity-Increase) vs
//! SLA-driven (model-computed switch point for a 2×-full-scan bound, then
//! Greedy). The SLA bound itself is reported as its own column (the orange
//! dotted line of the paper's plot).

use smooth_core::{CostModel, PolicyKind, SmoothScanConfig, TableGeometry, Trigger};
use smooth_planner::AccessPathChoice;
use smooth_storage::DeviceProfile;
use smooth_workload::micro;

use crate::report::Report;
use crate::setup;

/// The paper's fine-grained x-axis: dense around the trigger region, then
/// coarse to 100%.
fn fine_grid() -> Vec<f64> {
    let mut g: Vec<f64> = (0..=10).map(|i| i as f64 * 0.00001).collect(); // 0 .. 0.01%
    g.extend([0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.75, 1.0]);
    g
}

/// Fig. 7a: policies.
pub fn run_policies() {
    let db = setup::micro_db(DeviceProfile::hdd());
    let mut report = Report::new(
        "fig7a",
        "morphing policies (exec time, virtual s)",
        &["sel_%", "greedy", "selectivity_increase", "elastic"],
    );
    for sel in fine_grid() {
        let mut cells = vec![format!("{}", sel * 100.0)];
        for policy in [PolicyKind::Greedy, PolicyKind::SelectivityIncrease, PolicyKind::Elastic] {
            let access =
                AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic().with_policy(policy));
            let stats = db.run(&micro::query(sel, false, access)).expect("fig7a").stats;
            cells.push(Report::secs(stats.secs()));
        }
        report.row(cells);
    }
    report.finish();
}

/// Fig. 7b: triggering points.
pub fn run_triggers() {
    let db = setup::micro_db(DeviceProfile::hdd());
    let rows = setup::micro_rows();
    let heap = &db.table(micro::TABLE).expect("micro").heap;
    let model = CostModel::new(
        TableGeometry::new(heap.schema().estimated_tuple_width(16) as u64, heap.tuple_count()),
        DeviceProfile::hdd(),
    );
    // The optimizer's estimate: 0.005% selectivity (the paper's 15 K of
    // 400 M — cardinality violations start at that point).
    let optimizer_estimate = (rows as f64 * 0.00005) as u64;
    // The SLA: twice the full-scan time.
    let sla_bound_ns = (2.0 * model.fs_cost_ns()) as u64;
    let sla_trigger = model.sla_trigger_cardinality(sla_bound_ns as f64);
    println!(
        "  [optimizer estimate = {optimizer_estimate} tuples; SLA bound = {:.2}s → model \
         switch point = {sla_trigger} tuples]",
        sla_bound_ns as f64 / 1e9
    );
    let mut report = Report::new(
        "fig7b",
        "triggering points (exec time, virtual s)",
        &["sel_%", "eager", "optimizer_driven", "sla_driven", "sla_bound"],
    );
    for sel in fine_grid() {
        let mut cells = vec![format!("{}", sel * 100.0)];
        for trigger in [
            Trigger::Eager,
            Trigger::OptimizerDriven {
                estimated_cardinality: optimizer_estimate,
                policy: PolicyKind::SelectivityIncrease,
            },
            Trigger::SlaDriven { bound_ns: sla_bound_ns },
        ] {
            let access =
                AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic().with_trigger(trigger));
            let stats = db.run(&micro::query(sel, false, access)).expect("fig7b").stats;
            cells.push(Report::secs(stats.secs()));
        }
        cells.push(Report::secs(sla_bound_ns as f64 / 1e9));
        report.row(cells);
    }
    report.finish();
}
