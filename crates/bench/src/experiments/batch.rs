//! Vectorized (row-batch) vs Volcano execution on the micro-benchmark
//! table.
//!
//! Not a paper figure: this experiment records the engine's own execution
//! overhead. It drives the identical `FullTableScan` over the identical
//! data through the row-at-a-time protocol (`collect_rows_volcano`) and
//! the row-major batch protocol (`collect_rows_batch`), reporting
//! wall-clock throughput and the speedup.
//!
//! Historical note: PR 2 gated a ≥1.5× floor on this ratio, back when the
//! Volcano path decoded and filtered tuple-at-a-time. The columnar data
//! plane moved the page fill (encoded-tuple probe + decode into column
//! vectors) *underneath all three protocols*, which made the Volcano
//! driver itself ~1.8× faster and collapsed this ratio toward 1 — the
//! Volcano tax is now paid only at the driver boundary. The ratio stays
//! reported for the record; the enforced wall-clock floor lives in the
//! sibling `columnar` experiment (columnar vs row-batch driver). The
//! deterministic virtual-clock times for the four access paths remain the
//! gated cross-machine trajectory numbers.

use std::sync::Arc;
use std::time::Instant;

use smooth_core::SmoothScanConfig;
use smooth_executor::{collect_rows_batch, collect_rows_volcano, FullTableScan};
use smooth_planner::AccessPathChoice;
use smooth_storage::DeviceProfile;
use smooth_workload::micro;

use crate::report::{json_metric, Metric, Report};
use crate::setup;

/// Timed runs per measurement; the best (minimum) is reported to shave
/// scheduler noise on shared CI runners. Smoke-scale scans take only a
/// few milliseconds each, so the minimum over several runs (plus one
/// untimed warmup) is what keeps the gated speedup ratio stable.
pub(crate) const RUNS: usize = 5;

pub(crate) fn best_wall_secs(mut run: impl FnMut() -> usize) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut rows = run(); // warmup: pool and allocator in steady state
    for _ in 0..RUNS {
        let t = Instant::now();
        rows = run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, rows)
}

/// Run the protocol comparison and record the perf-smoke metrics.
pub fn run() {
    let db = setup::micro_db(DeviceProfile::hdd());
    let heap = Arc::clone(&db.table(micro::TABLE).expect("micro installed").heap);
    let storage = db.storage().clone();
    let rows_total = heap.tuple_count() as f64;

    let mut wall = Report::new(
        "batch",
        format!("Volcano vs row-batch FullTableScan (wall clock, best of {RUNS})"),
        &["sel_pct", "rows_out", "volcano_krows_s", "batch_krows_s", "speedup"],
    );
    for sel in [0.1, 1.0] {
        let pred = micro::predicate(sel);
        let (volcano_s, n_volcano) = best_wall_secs(|| {
            let mut op = FullTableScan::new(Arc::clone(&heap), storage.clone(), pred.clone());
            collect_rows_volcano(&mut op).expect("volcano scan").len()
        });
        let (batch_s, n_batch) = best_wall_secs(|| {
            let mut op = FullTableScan::new(Arc::clone(&heap), storage.clone(), pred.clone());
            collect_rows_batch(&mut op).expect("batch scan").len()
        });
        assert_eq!(n_volcano, n_batch, "protocols must agree on the result set");
        let speedup = volcano_s / batch_s.max(1e-12);
        let tag = format!("sel{}", (sel * 100.0) as u32);
        wall.row(vec![
            format!("{}", sel * 100.0),
            n_batch.to_string(),
            format!("{:.0}", rows_total / volcano_s.max(1e-12) / 1e3),
            format!("{:.0}", rows_total / batch_s.max(1e-12) / 1e3),
            Report::factor(speedup),
        ]);
        // Informational: the shared columnar fill collapsed this ratio
        // toward 1 (see the module docs); the enforced wall-clock floor is
        // the columnar experiment's.
        json_metric(Metric::info(format!("batch.fullscan.{tag}.speedup"), speedup, "x", true));
        json_metric(Metric::info(
            format!("batch.fullscan.{tag}.volcano_krows_s"),
            rows_total / volcano_s.max(1e-12) / 1e3,
            "krows_per_s",
            true,
        ));
        json_metric(Metric::info(
            format!("batch.fullscan.{tag}.batch_krows_s"),
            rows_total / batch_s.max(1e-12) / 1e3,
            "krows_per_s",
            true,
        ));
    }
    wall.finish();

    // Deterministic virtual-clock trajectory: the four access paths on the
    // 10%-selectivity micro query, executed through the default (columnar)
    // pipeline driver. The `columnar` experiment asserts these totals are
    // byte-for-byte identical under the row-batch driver.
    let mut virt = Report::new(
        "batch_virtual",
        "Access paths at 10% selectivity (virtual s, columnar pipeline)",
        &["path", "virtual_s", "cpu_s", "io_s"],
    );
    let paths: [(&str, AccessPathChoice); 4] = [
        ("full", AccessPathChoice::ForceFull),
        ("index", AccessPathChoice::ForceIndex),
        ("sort", AccessPathChoice::ForceSort),
        ("smooth", AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic())),
    ];
    for (name, access) in paths {
        let stats = db.run(&micro::query(0.1, false, access)).expect("micro query").stats;
        virt.row(vec![
            name.to_string(),
            Report::secs(stats.secs()),
            Report::secs(stats.clock.cpu_ns as f64 / 1e9),
            Report::secs(stats.clock.io_ns as f64 / 1e9),
        ]);
        json_metric(Metric::gated(
            format!("virtual.micro.sel10.{name}.secs"),
            stats.secs(),
            "virtual_s",
            false,
        ));
    }
    virt.finish();
}

/// Quick self-check used by the test suite: the two protocols agree on a
/// small table and the batched path is not slower by construction.
#[cfg(test)]
mod tests {
    use super::*;
    use smooth_executor::Predicate;
    use smooth_storage::{HeapLoader, Storage};
    use smooth_types::{Column, DataType, Row, Schema, Value};

    #[test]
    fn protocols_agree_on_micro_shaped_data() {
        let schema = Schema::new(vec![
            Column::new("c1", DataType::Int64),
            Column::new("c2", DataType::Int64),
        ])
        .unwrap();
        let mut l = HeapLoader::new_mem("t", schema);
        for i in 0..5000i64 {
            l.push(&Row::new(vec![Value::Int(i), Value::Int(i % 100)])).unwrap();
        }
        let heap = Arc::new(l.finish().unwrap());
        let s = Storage::default_hdd();
        let pred = Predicate::int_half_open(1, 0, 10);
        let mut a = FullTableScan::new(Arc::clone(&heap), s.clone(), pred.clone());
        let mut b = FullTableScan::new(heap, s, pred);
        assert_eq!(collect_rows_volcano(&mut a).unwrap(), collect_rows_batch(&mut b).unwrap());
    }
}
