//! Fig. 9: auxiliary data structures.
//!
//! 9a — Result-Cache overhead (the extra time the ordered variant pays
//! over the unordered one for the same scan) and hit rate (requests served
//! from the cache). The paper reports ≤ 14% overhead and a hit rate
//! reaching 100% by 1% selectivity.
//!
//! 9b — morphing accuracy: fraction of fetched pages that contained at
//! least one result; reaches 100% by ~2.5% selectivity.

use smooth_core::SmoothScanConfig;
use smooth_executor::Operator;
use smooth_planner::ScanSpec;
use smooth_storage::DeviceProfile;
use smooth_workload::micro;

use crate::report::Report;
use crate::setup;

/// Run both panels from the same sweeps.
pub fn run() {
    let db = setup::micro_db(DeviceProfile::hdd());
    let mut report = Report::new(
        "fig9",
        "result cache overhead/hit rate + morphing accuracy",
        &["sel_%", "cache_overhead_%", "cache_hit_rate_%", "morphing_accuracy_%"],
    );
    for sel in micro::selectivity_grid() {
        // Unordered run: baseline time.
        let spec = ScanSpec::new(micro::TABLE, micro::predicate(sel));
        let mut plain =
            db.build_smooth_scan(&spec, SmoothScanConfig::eager_elastic()).expect("smooth scan");
        let base = db.run_operator(&mut plain).expect("unordered run").stats;
        // Ordered run: result cache engaged.
        let mut ordered = db
            .build_smooth_scan(&spec, SmoothScanConfig::eager_elastic().with_order(true))
            .expect("smooth scan");
        let with_cache = db.run_operator(&mut ordered).expect("ordered run").stats;
        let metrics = ordered.metrics();
        ordered.close().ok();

        let overhead = if base.clock.total_ns() > 0 {
            (with_cache.clock.total_ns() as f64 / base.clock.total_ns() as f64 - 1.0) * 100.0
        } else {
            0.0
        };
        let hit_rate = metrics.cache_hit_rate().map_or(0.0, |r| r * 100.0);
        let accuracy = metrics.morphing_accuracy().map_or(0.0, |a| a * 100.0);
        report.row(vec![
            format!("{}", sel * 100.0),
            format!("{overhead:.1}"),
            format!("{hit_rate:.1}"),
            format!("{accuracy:.1}"),
        ]);
    }
    report.finish();
}
