//! Morsel-driven parallel execution on the micro-benchmark table.
//!
//! Not a paper figure: this experiment records what the parallel
//! pipeline driver (worker pool over columnar morsels, PR 4) buys over
//! the single-worker columnar driver, and proves the two
//! interchangeable. Two shapes at 10% selectivity, both decomposing to
//! the partitioned heap source (per-worker decode of readahead page
//! runs):
//!
//! * **agg** — scalar aggregation above the filtered scan: scan decode
//!   fans out across workers and folds into per-worker partial
//!   aggregates (integer-fed, so the merge is exact). The CI gate holds
//!   a ≥3.0× floor on the 4- and 8-worker *modeled* speedups here.
//! * **scan** — the filtered scan collected as rows (ordered sink
//!   merge), reported informationally.
//!
//! **Why the gated speedup is modeled, not wall-clock.** This repo gates
//! only machine-comparable numbers (see `report.rs`): virtual-clock
//! times and deterministic ratios, never raw wall clock — a wall-clock
//! parallel speedup would be a function of the CI runner's core count
//! (and is physically capped at 1× on a single-core host). The model is
//! the deterministic greedy schedule of the per-morsel virtual-clock
//! ledger the traced single-worker run records
//! ([`smooth_executor::ScalingLedger`]): source sections (page-run I/O)
//! serialize in morsel order — they share one lock and one disk arm —
//! while decode/filter/aggregate sections pack onto workers. It is
//! bit-stable across machines and reruns. Measured wall-clock speedup
//! is still reported, ungated, for the record.
//!
//! The experiment runs on a fast-device profile (NVMe-like, 2.7 GB/s
//! sequential) because that is the regime where parallelism pays: on
//! the paper's HDD the virtual time of a full scan is I/O-bound and the
//! serialized disk caps the speedup near 1 — reported here as the
//! `hdd` metric, a finding straight out of the paper's cost model.
//!
//! It also proves driver interchangeability the hard way: for worker
//! counts {2, 4, 8} the rows must be identical to the single-worker run
//! and the virtual CPU/IO clock totals and I/O counters **exactly
//! equal** — morsel-driven parallelism never changes what work the
//! engine is charged for, only who executes it.

use std::time::Instant;

use smooth_executor::{run_pipeline_traced, AggFunc, ScalingLedger};
use smooth_planner::{AccessPathChoice, Database, LogicalPlan};
use smooth_storage::DeviceProfile;
use smooth_workload::micro;

use crate::experiments::batch::RUNS;
use crate::report::{json_metric, Metric, Report};
use crate::setup;

/// Modeled speedup floor the perf-smoke gate enforces for the
/// aggregate shape at 4 **and** 8 workers. Raised from 1.8 when the
/// per-page hash-lookup CPU moved from the locked source section to
/// the per-worker decode section (where it runs), lifting the modeled
/// source-bound ceiling past 3× at smoke scale.
pub const MODEL_SPEEDUP_FLOOR: f64 = 3.0;

/// NVMe-like profile: ~2.7 GB/s sequential, random 2× — the fast-device
/// regime where the scan becomes CPU-bound and the worker pool matters.
fn nvme() -> DeviceProfile {
    DeviceProfile::custom("nvme", 3_000, 6_000)
}

fn agg_plan() -> LogicalPlan {
    micro::query(0.1, false, AccessPathChoice::ForceFull).aggregate(
        vec![],
        vec![AggFunc::CountStar, AggFunc::Sum(2), AggFunc::Min(0), AggFunc::Max(0)],
    )
}

fn scan_plan() -> LogicalPlan {
    micro::query(0.1, false, AccessPathChoice::ForceFull)
}

/// Cold-run `plan` through the traced single-worker pipeline, returning
/// the rows-count, the clock delta and the scaling ledger.
fn traced_run(db: &Database, plan: &LogicalPlan) -> (usize, u64, ScalingLedger) {
    let pipeline = db.parallel_pipeline(plan).expect("plan builds").expect("plan parallelizes");
    db.storage().flush_pool();
    let clock0 = db.storage().clock().snapshot();
    let (rows, ledger) = run_pipeline_traced(pipeline).expect("traced run");
    let delta = db.storage().clock().snapshot().since(&clock0);
    (rows.len(), delta.total_ns(), ledger)
}

/// Run the parallel-scaling experiment and the equality checks.
pub fn run() {
    let mut db = setup::micro_db(nvme());
    let mut table = Report::new(
        "parallel",
        "morsel-driven parallel pipeline at 10% selectivity (modeled speedup from the \
         virtual-clock ledger; wall speedup is host-dependent and ungated)",
        &["shape", "device", "w2", "w4", "w8", "virtual_ms_1w"],
    );

    for (shape, plan) in [("agg", agg_plan()), ("scan", scan_plan())] {
        // Single-worker reference through the serial columnar driver.
        db.set_workers(1);
        let serial = db.run(&plan).expect("serial run");

        // Traced single-worker pipeline: identical rows and clock, plus
        // the per-morsel ledger the scaling model consumes.
        let (n_traced, traced_ns, ledger) = traced_run(&db, &plan);
        assert_eq!(n_traced as u64, serial.stats.rows, "{shape}: traced row count");
        assert_eq!(
            traced_ns,
            serial.stats.clock.total_ns(),
            "{shape}: traced pipeline must charge exactly the serial driver's clock"
        );

        // Hard equality: N-worker runs charge the identical virtual
        // CPU/IO totals and produce the identical rows.
        for workers in [2usize, 4, 8] {
            db.set_workers(workers);
            let got = db.run(&plan).expect("parallel run");
            assert_eq!(got.rows, serial.rows, "{shape}: rows diverge at {workers} workers");
            assert_eq!(
                (got.stats.clock.cpu_ns, got.stats.clock.io_ns),
                (serial.stats.clock.cpu_ns, serial.stats.clock.io_ns),
                "{shape}: virtual clock totals must be identical at {workers} workers"
            );
            assert_eq!(
                (got.stats.io.io_requests, got.stats.io.pages_read, got.stats.io.buffer_hits),
                (
                    serial.stats.io.io_requests,
                    serial.stats.io.pages_read,
                    serial.stats.io.buffer_hits
                ),
                "{shape}: I/O counters must be identical at {workers} workers"
            );
        }

        // How source-bound the shape is: the modeled time workers spend
        // blocked on the serialized source lock at 4 workers
        // (deterministic, from the ledger), next to the lock wait the
        // 4-worker run actually measured (wall time — host-dependent,
        // informational).
        db.set_workers(4);
        let measured = db.run(&plan).expect("measured run");
        json_metric(Metric::info(
            format!("parallel.{shape}.sel10.model_src_wait_ms.w4"),
            ledger.modeled_src_wait_ns(4) as f64 / 1e6,
            "virtual_ms",
            false,
        ));
        json_metric(Metric::info(
            format!("parallel.{shape}.sel10.measured_lock_wait_ms.w4"),
            measured.scan.lock_wait_ns as f64 / 1e6,
            "wall_ms",
            false,
        ));

        let speedups: Vec<f64> = [2, 4, 8].iter().map(|&w| ledger.speedup(w)).collect();
        table.row(vec![
            shape.into(),
            "nvme".into(),
            Report::factor(speedups[0]),
            Report::factor(speedups[1]),
            Report::factor(speedups[2]),
            format!("{:.2}", ledger.total_ns() as f64 / 1e6),
        ]);
        for (w, s) in [(2usize, speedups[0]), (4, speedups[1]), (8, speedups[2])] {
            let metric = if shape == "agg" && (w == 4 || w == 8) {
                // The headline gates: deterministic, machine-independent,
                // baseline-compared AND floored.
                Metric::gated(format!("parallel.{shape}.sel10.model_speedup.w{w}"), s, "x", true)
                    .with_floor(MODEL_SPEEDUP_FLOOR)
            } else {
                Metric::gated(format!("parallel.{shape}.sel10.model_speedup.w{w}"), s, "x", true)
            };
            json_metric(metric);
        }
    }

    // The paper's HDD: the virtual clock is I/O-bound, the serialized
    // disk arm caps the model — parallelism cannot buy back random I/O.
    let hdd_db = setup::micro_db(DeviceProfile::hdd()).with_workers(1);
    let (_, _, hdd_ledger) = traced_run(&hdd_db, &agg_plan());
    let hdd_speedup = hdd_ledger.speedup(4);
    table.row(vec![
        "agg".into(),
        "hdd".into(),
        Report::factor(hdd_ledger.speedup(2)),
        Report::factor(hdd_speedup),
        Report::factor(hdd_ledger.speedup(8)),
        format!("{:.2}", hdd_ledger.total_ns() as f64 / 1e6),
    ]);
    json_metric(Metric::info("parallel.agg.sel10.model_speedup_hdd.w4", hdd_speedup, "x", true));

    // Measured wall clock, 1 worker vs 4 (host-dependent: tracks the
    // model on multi-core hosts, ~1 on a single core — never gated).
    let wall = |workers: usize, db: &mut Database, plan: &LogicalPlan| -> f64 {
        db.set_workers(workers);
        let mut best = f64::INFINITY;
        db.run(plan).expect("warmup");
        for _ in 0..RUNS {
            let t = Instant::now();
            db.run(plan).expect("timed run");
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    let plan = agg_plan();
    let serial_wall = wall(1, &mut db, &plan);
    let parallel_wall = wall(4, &mut db, &plan);
    json_metric(Metric::info(
        "parallel.agg.sel10.wall_speedup.w4",
        serial_wall / parallel_wall.max(1e-12),
        "x",
        true,
    ));

    table.finish();

    // Survives to the report only after every equality assert held.
    json_metric(
        Metric::gated("parallel.virtual.sel10.clock_match", 1.0, "bool", true).with_floor(1.0),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_executor::run_pipeline;

    /// The smoke-scale gate invariants: the modeled 4-worker speedup on
    /// the NVMe profile clears the committed floor with margin, and the
    /// N-worker clock totals equal the serial driver's exactly.
    #[test]
    fn model_speedup_clears_floor_and_clocks_match() {
        let mut db = setup::micro_db(nvme());
        let plan = agg_plan();
        db.set_workers(1);
        let serial = db.run(&plan).expect("serial");
        let (n, traced_ns, ledger) = traced_run(&db, &plan);
        assert_eq!(n as u64, serial.stats.rows);
        assert_eq!(traced_ns, serial.stats.clock.total_ns());
        assert!(
            ledger.speedup(4) >= MODEL_SPEEDUP_FLOOR,
            "modeled 4-worker speedup {:.2} under the {MODEL_SPEEDUP_FLOOR} floor",
            ledger.speedup(4)
        );
        db.set_workers(4);
        let parallel = db.run(&plan).expect("parallel");
        assert_eq!(parallel.rows, serial.rows);
        assert_eq!(parallel.stats.clock, serial.stats.clock);
        // And the pipeline entry point agrees with the Database wiring.
        let pipeline = db.parallel_pipeline(&plan).unwrap().unwrap();
        db.storage().flush_pool();
        let rows = run_pipeline(pipeline, 4).unwrap();
        assert_eq!(rows, serial.rows);
    }
}
