//! Fig. 1: non-robust performance due to optimization errors.
//!
//! Runs 19 TPC-H queries twice: *original* (PK indexes only → scans and
//! hash joins) and *tuned* (advisor indexes installed, per-query
//! statistics damage modeling the correlation-blind estimates the paper
//! attributes to DBMS-X). Reports normalized execution time
//! (tuned / original), the quantity on Fig. 1's log-scale y-axis.
//!
//! Expected shape: most queries near or below 1 (tuning helps or is
//! neutral), moderate regressions on Q3/Q18/Q21, severe on Q19, and a
//! catastrophic factor (paper: ×400; the magnitude scales with the
//! LINEITEM:pool ratio) on Q12, where the only plan change is the access
//! path / join lookup strategy.

use smooth_stats::StatsQuality;
use smooth_storage::DeviceProfile;
use smooth_workload::tpch::fig1_queries;

use crate::report::Report;
use crate::setup;

/// Run the tuned-vs-original workload comparison.
pub fn run() {
    let (original, mut tuned) = setup::tpch_pair(DeviceProfile::hdd());
    let mut report = Report::new(
        "fig1",
        "tuned vs original TPC-H (normalized exec time, log-scale in the paper)",
        &["query", "original_s", "tuned_s", "normalized"],
    );
    let mut workload_original = 0.0f64;
    let mut workload_tuned = 0.0f64;
    for q in fig1_queries() {
        let plan = (q.build)();
        let base = original.run(&plan).expect("original run").stats;
        for (table, quality) in q.tuned_damage {
            tuned.set_stats_quality(table, *quality).expect("damage");
        }
        let after = tuned.run(&plan).expect("tuned run").stats;
        for (table, _) in q.tuned_damage {
            tuned.set_stats_quality(table, StatsQuality::Accurate).expect("reset");
        }
        workload_original += base.secs();
        workload_tuned += after.secs();
        report.row(vec![
            q.name.to_string(),
            Report::secs(base.secs()),
            Report::secs(after.secs()),
            Report::factor(after.secs() / base.secs().max(1e-9)),
        ]);
    }
    report.finish();
    println!(
        "  [workload total: original {:.1}s, tuned {:.1}s → overall degradation factor {:.1}]",
        workload_original,
        workload_tuned,
        workload_tuned / workload_original.max(1e-9)
    );
}
