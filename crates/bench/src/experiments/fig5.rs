//! Fig. 5: Smooth Scan vs the traditional access paths across the whole
//! selectivity range, with (5a) and without (5b) an ORDER BY clause.
//!
//! Expected shape (paper, Section VI-C): Index Scan degrades by orders of
//! magnitude as selectivity grows; Sort Scan wins below ~1%, loses above
//! ~2.5%; Smooth Scan stays near the best alternative everywhere and wins
//! outright at high selectivity when the order must be preserved (no
//! posterior sort).
//!
//! Under `--json` the whole virtual-clock series (every grid point ×
//! access path) is folded into the perf report as *gated* metrics, so the
//! CI artifact tracks the paper figure point by point and any >25%
//! regression of a single series point fails the perf-smoke job. The
//! virtual clock is deterministic, so these gate cleanly across machines
//! at a fixed scale.

use smooth_core::SmoothScanConfig;
use smooth_planner::AccessPathChoice;
use smooth_storage::DeviceProfile;
use smooth_workload::micro;

use crate::report::{json_metric, sel_tag, Metric, Report};
use crate::setup;

/// Run the sweep; `ordered` selects Fig. 5a (true) or Fig. 5b (false).
pub fn run(ordered: bool) {
    let db = setup::micro_db(DeviceProfile::hdd());
    let id = if ordered { "fig5a" } else { "fig5b" };
    let title = if ordered {
        "selectivity sweep WITH order by (exec time, virtual s)"
    } else {
        "selectivity sweep WITHOUT order by (exec time, virtual s)"
    };
    let mut report =
        Report::new(id, title, &["sel_%", "full_scan", "index_scan", "sort_scan", "smooth_scan"]);
    for sel in micro::selectivity_grid() {
        let mut cells = vec![format!("{}", sel * 100.0)];
        for (name, access) in [
            ("full", AccessPathChoice::ForceFull),
            ("index", AccessPathChoice::ForceIndex),
            ("sort", AccessPathChoice::ForceSort),
            ("smooth", AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic())),
        ] {
            let plan = micro::query(sel, ordered, access);
            let stats = db.run(&plan).expect("fig5 query").stats;
            cells.push(Report::secs(stats.secs()));
            json_metric(Metric::gated(
                format!("virtual.{id}.{}.{name}.secs", sel_tag(sel)),
                stats.secs(),
                "virtual_s",
                false,
            ));
        }
        report.row(cells);
    }
    report.finish();
}
