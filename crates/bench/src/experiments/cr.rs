//! Section V-A: competitive-ratio analysis.
//!
//! For each policy and device, measures Smooth Scan's cost across the
//! selectivity sweep and reports the worst ratio against the best
//! traditional alternative at that selectivity. The paper's results:
//! Elastic's analytical worst case is 5.5 (HDD) / 3 (SSD) with a
//! theoretical bound of ratio+1, and the *empirically observed* CR is ≈ 2.

use smooth_core::{CostModel, PolicyKind, SmoothScanConfig, TableGeometry};
use smooth_planner::AccessPathChoice;
use smooth_storage::DeviceProfile;
use smooth_workload::micro;

use crate::report::Report;
use crate::setup;

/// Run the CR study on both devices.
pub fn run() {
    let mut report = Report::new(
        "cr",
        "competitive ratio vs best traditional alternative",
        &["device", "policy", "empirical_max_CR", "at_sel_%", "analytic_worst", "bound"],
    );
    for device in [DeviceProfile::hdd(), DeviceProfile::ssd()] {
        let db = setup::micro_db(device);
        let heap = &db.table(micro::TABLE).expect("micro").heap;
        let model = CostModel::new(
            TableGeometry::new(heap.schema().estimated_tuple_width(16) as u64, heap.tuple_count()),
            device,
        );
        for policy in [PolicyKind::Greedy, PolicyKind::SelectivityIncrease, PolicyKind::Elastic] {
            let mut worst = 0.0f64;
            let mut worst_sel = 0.0f64;
            for sel in micro::selectivity_grid() {
                if sel == 0.0 {
                    continue; // empty result: every path is a no-op probe
                }
                let best_alt = [
                    AccessPathChoice::ForceFull,
                    AccessPathChoice::ForceIndex,
                    AccessPathChoice::ForceSort,
                ]
                .into_iter()
                .map(|a| db.run(&micro::query(sel, false, a)).expect("alt").stats.secs())
                .fold(f64::INFINITY, f64::min);
                let smooth = db
                    .run(&micro::query(
                        sel,
                        false,
                        AccessPathChoice::Smooth(
                            SmoothScanConfig::eager_elastic().with_policy(policy),
                        ),
                    ))
                    .expect("smooth")
                    .stats
                    .secs();
                let ratio = smooth / best_alt.max(1e-12);
                if ratio > worst {
                    worst = ratio;
                    worst_sel = sel;
                }
            }
            let analytic = if policy == PolicyKind::Elastic {
                Report::factor(model.elastic_worst_case_cr())
            } else {
                "unbounded*".to_string()
            };
            report.row(vec![
                device.name.to_string(),
                format!("{policy:?}"),
                Report::factor(worst),
                format!("{}", worst_sel * 100.0),
                analytic,
                Report::factor(model.cr_theoretical_bound()),
            ]);
        }
    }
    report.finish();
    println!(
        "  [* Greedy/SI CRs grow with table size (soft bounds) — Section V-A; \
         Elastic's analytic worst case assumes the never-morphing alternating pattern]"
    );
}
