//! Larger-than-memory execution: grace hash join and external sort
//! under `SMOOTH_MEM_BYTES`.
//!
//! Not a paper figure: this experiment records what the spilling work
//! buys and pins its two invariants (see `docs/larger_than_memory.md`).
//! The join shape is the `join` experiment's self-join of the micro
//! table (full-scan probe, 10%-selectivity build side on `c2`), run
//! once unbudgeted and once under a budget far below the build side's
//! encoded size, so whole build partitions must spill to charged
//! overflow files and recurse. The sort shape is the same filtered scan
//! topped by an explicit `Sort`, which the budget forces through the
//! external merge sort's spilled runs.
//!
//! **Gates.** Only deterministic modeled numbers gate:
//!
//! * `spill.join.modeled_spill_ms` — the virtual-clock I/O the grace
//!   join charges beyond the unbudgeted run (write + re-partition +
//!   re-read of build and probe overflow files). Floor-gated: the
//!   budget must actually force spilling at smoke scale.
//! * `spill.join.clock_match` — a hard equality bundle: the budgeted
//!   run's rows match the unbudgeted run's byte-for-byte; its CPU lane
//!   and disk-arm I/O counters are untouched (spill charges land on
//!   the I/O lane only); parallel budgeted runs at 2/4/8 workers are
//!   byte-identical to the budgeted serial run in rows, clock and I/O
//!   counters; and a huge (1 GiB) budget charges *exactly* the
//!   unbudgeted clock — the in-memory path's zero-spill assert.
//! * `spill.sort.modeled_spill_ms` — same floor for the external
//!   sort's run files, with the budgeted ordering asserted equal to
//!   the in-memory sort's.

use smooth_executor::sort::SortKey;
use smooth_executor::{AggFunc, JoinType};
use smooth_planner::{AccessPathChoice, Database, JoinStrategy, LogicalPlan, ScanSpec};
use smooth_storage::DeviceProfile;
use smooth_workload::micro;

use crate::report::{json_metric, Metric, Report};
use crate::setup;

/// Memory budget (bytes) used for the spilling legs: far below the
/// smoke-scale build side's encoded size, so partitions must spill.
pub const TIGHT_BUDGET: usize = 16 << 10;
/// Budget for the zero-spill leg: larger than any experiment table.
pub const HUGE_BUDGET: usize = 1 << 30;
/// Floor (ms) on the modeled spill I/O of either budgeted leg.
pub const SPILL_MS_FLOOR: f64 = 0.05;

/// NVMe-like profile (same as the `join` experiment): spill charges
/// must register even on the fastest modeled device.
fn nvme() -> DeviceProfile {
    DeviceProfile::custom("nvme", 3_000, 6_000)
}

/// The `join` experiment's self-join: full-scan probe side, filtered
/// build side at 10% selectivity, scalar aggregate sink.
fn join_plan() -> LogicalPlan {
    let probe = micro::query(1.0, false, AccessPathChoice::ForceFull);
    let build = LogicalPlan::scan(
        ScanSpec::new(micro::TABLE, micro::predicate(0.1)).with_access(AccessPathChoice::ForceFull),
    );
    probe
        .join(build, micro::C2, micro::C2, JoinType::Inner, JoinStrategy::Hash)
        .aggregate(vec![], vec![AggFunc::CountStar, AggFunc::Sum(0)])
}

/// The filtered scan topped by an explicit sort on `c2` (the scan's
/// heap order is by `c0`, so the sort really reorders).
fn sort_plan() -> LogicalPlan {
    micro::query(0.1, false, AccessPathChoice::ForceFull).sort(vec![SortKey::asc(micro::C2)])
}

/// Cold-run `plan` at `workers` under `budget` bytes (0 = unlimited),
/// returning the full result for row and counter comparison.
fn run_budgeted(
    db: &mut Database,
    plan: &LogicalPlan,
    workers: usize,
    budget: usize,
) -> smooth_planner::QueryResult {
    db.set_workers(workers);
    db.set_mem_bytes(budget);
    db.storage().flush_pool();
    db.run(plan).expect("budgeted run")
}

/// The per-run comparable I/O counters (`distinct_pages` is cumulative
/// over the storage's lifetime, so per-run deltas on one db differ).
fn io_key(io: &smooth_storage::IoSnapshot) -> (u64, u64, u64, u64, u64) {
    (io.io_requests, io.pages_read, io.seq_pages, io.rand_pages, io.buffer_hits)
}

/// Run the larger-than-memory experiment and its equality checks.
pub fn run() {
    let mut db = setup::micro_db(nvme());
    let mut table = Report::new(
        "spill",
        "grace hash join and external sort under SMOOTH_MEM_BYTES (modeled spill I/O from \
         the virtual clock; rows are asserted byte-identical to the unbudgeted runs)",
        &["shape", "budget", "spill_ms", "rows"],
    );

    // ---- Grace hash join ------------------------------------------------
    let plan = join_plan();
    let free = run_budgeted(&mut db, &plan, 1, 0);
    let tight = run_budgeted(&mut db, &plan, 1, TIGHT_BUDGET);
    assert_eq!(tight.rows, free.rows, "spilling must not change join rows");
    assert_eq!(
        tight.stats.clock.cpu_ns, free.stats.clock.cpu_ns,
        "spill charges must land on the I/O lane only"
    );
    // (`distinct_pages` is cumulative over the storage's lifetime, so
    // successive runs on one db legitimately differ there.)
    assert_eq!(
        io_key(&tight.stats.io),
        io_key(&free.stats.io),
        "overflow files are modeled transfers — disk-arm counters stay untouched"
    );
    let join_spill_ns = tight.stats.clock.io_ns - free.stats.clock.io_ns;
    assert!(join_spill_ns > 0, "tight budget must charge spill I/O");

    // Budgeted parallel runs must be byte-identical to the budgeted
    // serial run — worker interleavings cannot perturb spill charges.
    for workers in [2usize, 4, 8] {
        let got = run_budgeted(&mut db, &plan, workers, TIGHT_BUDGET);
        assert_eq!(got.rows, tight.rows, "budgeted rows diverge at {workers} workers");
        assert_eq!(
            got.stats.clock, tight.stats.clock,
            "budgeted clock diverges at {workers} workers"
        );
        assert_eq!(
            io_key(&got.stats.io),
            io_key(&tight.stats.io),
            "budgeted I/O diverges at {workers} workers"
        );
    }

    // Zero-spill assert: a budget the build fits charges *exactly* the
    // unbudgeted clock — the in-memory path is untouched.
    let huge = run_budgeted(&mut db, &plan, 1, HUGE_BUDGET);
    assert_eq!(huge.rows, free.rows, "huge-budget rows diverge");
    assert_eq!(huge.stats.clock, free.stats.clock, "a fitting budget must charge nothing");

    let join_ms = join_spill_ns as f64 / 1e6;
    table.row(vec![
        "join".into(),
        format!("{} KiB", TIGHT_BUDGET >> 10),
        format!("{join_ms:.3}"),
        tight.stats.rows.to_string(),
    ]);
    json_metric(
        Metric::gated("spill.join.modeled_spill_ms", join_ms, "ms", false)
            .with_floor(SPILL_MS_FLOOR),
    );

    // ---- External sort --------------------------------------------------
    let plan = sort_plan();
    let free = run_budgeted(&mut db, &plan, 1, 0);
    let tight = run_budgeted(&mut db, &plan, 1, TIGHT_BUDGET);
    assert_eq!(tight.rows, free.rows, "external sort must reproduce the in-memory order");
    // (CPU legitimately differs: per-run sorts plus the k-way merge
    // replace one big n·log n; only the ordering is pinned.)
    let sort_spill_ns = tight.stats.clock.io_ns - free.stats.clock.io_ns;
    assert!(sort_spill_ns > 0, "tight budget must spill sorted runs");
    let sort_ms = sort_spill_ns as f64 / 1e6;
    table.row(vec![
        "sort".into(),
        format!("{} KiB", TIGHT_BUDGET >> 10),
        format!("{sort_ms:.3}"),
        tight.stats.rows.to_string(),
    ]);
    json_metric(
        Metric::gated("spill.sort.modeled_spill_ms", sort_ms, "ms", false)
            .with_floor(SPILL_MS_FLOOR),
    );

    table.finish();

    // Survives to the report only after every equality assert held.
    json_metric(Metric::gated("spill.join.clock_match", 1.0, "bool", true).with_floor(1.0));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smoke-scale gate invariants: the tight budget forces real
    /// modeled spill I/O over the floor, rows stay byte-identical, and
    /// the huge budget charges exactly the unbudgeted clock.
    #[test]
    fn tight_budget_spills_and_huge_budget_is_exact() {
        let mut db = setup::micro_db(nvme());
        let plan = join_plan();
        let free = run_budgeted(&mut db, &plan, 1, 0);
        let tight = run_budgeted(&mut db, &plan, 1, TIGHT_BUDGET);
        assert_eq!(tight.rows, free.rows);
        assert_eq!(tight.stats.clock.cpu_ns, free.stats.clock.cpu_ns);
        let spill_ms = (tight.stats.clock.io_ns - free.stats.clock.io_ns) as f64 / 1e6;
        assert!(
            spill_ms >= SPILL_MS_FLOOR,
            "modeled join spill {spill_ms:.4} ms under the {SPILL_MS_FLOOR} floor"
        );
        let huge = run_budgeted(&mut db, &plan, 1, HUGE_BUDGET);
        assert_eq!(huge.stats.clock, free.stats.clock);
        let plan = sort_plan();
        let free = run_budgeted(&mut db, &plan, 1, 0);
        let tight = run_budgeted(&mut db, &plan, 1, TIGHT_BUDGET);
        assert_eq!(tight.rows, free.rows);
        assert!(tight.stats.clock.io_ns > free.stats.clock.io_ns, "sort must spill runs");
    }
}
