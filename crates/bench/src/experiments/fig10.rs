//! Fig. 10: the Fig. 5 sweep on SSD (rand:seq = 2:1).
//!
//! Expected shape: the narrower random/sequential gap makes index-based
//! paths viable deeper into the selectivity range — Index Scan stays
//! competitive until ~0.1% (vs 0.01% on HDD), Smooth Scan beats Sort Scan
//! above ~0.1% and ends within ~10% of Full Scan at 100%.
//!
//! Under `--json` the virtual-clock series is folded into the perf report
//! as gated metrics, like the Fig. 5 sweeps (see `fig5.rs`).

use smooth_core::SmoothScanConfig;
use smooth_planner::AccessPathChoice;
use smooth_storage::DeviceProfile;
use smooth_workload::micro;

use crate::report::{json_metric, sel_tag, Metric, Report};
use crate::setup;

/// Run the SSD sweep (without ORDER BY, as in the paper's Fig. 10).
pub fn run() {
    let db = setup::micro_db(DeviceProfile::ssd());
    let mut report = Report::new(
        "fig10",
        "selectivity sweep on SSD (exec time, virtual s)",
        &["sel_%", "full_scan", "index_scan", "sort_scan", "smooth_scan"],
    );
    for sel in micro::selectivity_grid() {
        let mut cells = vec![format!("{}", sel * 100.0)];
        for (name, access) in [
            ("full", AccessPathChoice::ForceFull),
            ("index", AccessPathChoice::ForceIndex),
            ("sort", AccessPathChoice::ForceSort),
            ("smooth", AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic())),
        ] {
            let plan = micro::query(sel, false, access);
            let stats = db.run(&plan).expect("fig10 query").stats;
            cells.push(Report::secs(stats.secs()));
            json_metric(Metric::gated(
                format!("virtual.fig10.{}.{name}.secs", sel_tag(sel)),
                stats.secs(),
                "virtual_s",
                false,
            ));
        }
        report.row(cells);
    }
    report.finish();
}
