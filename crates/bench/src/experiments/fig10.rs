//! Fig. 10: the Fig. 5 sweep on SSD (rand:seq = 2:1).
//!
//! Expected shape: the narrower random/sequential gap makes index-based
//! paths viable deeper into the selectivity range — Index Scan stays
//! competitive until ~0.1% (vs 0.01% on HDD), Smooth Scan beats Sort Scan
//! above ~0.1% and ends within ~10% of Full Scan at 100%.

use smooth_core::SmoothScanConfig;
use smooth_planner::AccessPathChoice;
use smooth_storage::DeviceProfile;
use smooth_workload::micro;

use crate::report::Report;
use crate::setup;

/// Run the SSD sweep (without ORDER BY, as in the paper's Fig. 10).
pub fn run() {
    let db = setup::micro_db(DeviceProfile::ssd());
    let mut report = Report::new(
        "fig10",
        "selectivity sweep on SSD (exec time, virtual s)",
        &["sel_%", "full_scan", "index_scan", "sort_scan", "smooth_scan"],
    );
    for sel in micro::selectivity_grid() {
        let mut cells = vec![format!("{}", sel * 100.0)];
        for access in [
            AccessPathChoice::ForceFull,
            AccessPathChoice::ForceIndex,
            AccessPathChoice::ForceSort,
            AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic()),
        ] {
            let plan = micro::query(sel, false, access);
            let stats = db.run(&plan).expect("fig10 query").stats;
            cells.push(Report::secs(stats.secs()));
        }
        report.row(cells);
    }
    report.finish();
}
