//! Concurrent multi-session serving on the shared engine.
//!
//! Not a paper figure: this experiment records what PR 6 buys — one
//! engine-global worker pool serving several sessions at once instead
//! of executing queries one at a time. Four deterministic client
//! sessions each drive one shape of a mixed plan set (filtered scan,
//! scalar aggregate, grouped average, hash join) against a single
//! shared [`Database`] on the NVMe-like profile.
//!
//! **Gates.** As everywhere in this repo, only machine-comparable
//! numbers gate (see `report.rs`). The headline metric is the modeled
//! throughput ratio `serve.mixed.model_qps_ratio.w4`: the deterministic
//! greedy schedule of all four queries' traced virtual-clock ledgers
//! over one shared 4-worker pool
//! ([`smooth_executor::multi_query_makespan_ns`]), compared against
//! running the same four queries one at a time at the same worker
//! count. The ratio is > 1 exactly because cross-query scheduling fills
//! the stalls each query's serialized source chain leaves on the pool
//! with another query's decode work — and it is bit-stable across
//! machines. Wall-clock queries/s is reported ungated.
//!
//! **Correctness leg.** The experiment also runs the four sessions for
//! real on `std::thread` and hard-asserts every session's rows — and
//! per-query [`smooth_planner::QueryResult::scan`] row attribution —
//! are identical to a solo run of the same plan. Rows must be
//! interleaving-invariant; virtual clock and I/O are legitimately *not*
//! (the sessions share one disk arm and one buffer pool), so they stay
//! unasserted here and byte-identical single-session elsewhere.

use std::time::Instant;

use smooth_executor::{
    multi_query_makespan_ns, run_pipeline_traced, AggFunc, JoinType, ScalingLedger,
};
use smooth_planner::{AccessPathChoice, Database, JoinStrategy, LogicalPlan, ScanSpec};
use smooth_storage::DeviceProfile;
use smooth_workload::micro;

use crate::report::{json_metric, Metric, Report};
use crate::setup;

/// Concurrent client sessions (one per mixed-set shape).
pub const SESSIONS: usize = 4;
/// Worker-pool width the gate models and the real leg runs.
pub const WORKERS: usize = 4;
/// Floor on the modeled 4-worker throughput ratio of serving the mixed
/// set concurrently vs one at a time.
pub const MODEL_QPS_RATIO_FLOOR: f64 = 1.05;
/// Times each real session repeats its plan (exercises steady-state
/// admission, not just a single burst).
const REPEATS: usize = 2;

/// NVMe-like profile (same as the `parallel` and `join` experiments):
/// the regime where queries are CPU-bound enough for the pool to matter.
fn nvme() -> DeviceProfile {
    DeviceProfile::custom("nvme", 3_000, 6_000)
}

/// The mixed plan set: one shape per session.
fn plans() -> Vec<(&'static str, LogicalPlan)> {
    let scan = micro::query(0.1, false, AccessPathChoice::ForceFull);
    let agg = micro::query(0.1, false, AccessPathChoice::ForceFull).aggregate(
        vec![],
        vec![AggFunc::CountStar, AggFunc::Sum(2), AggFunc::Min(0), AggFunc::Max(0)],
    );
    let group = micro::query(0.01, false, AccessPathChoice::ForceFull)
        .aggregate(vec![micro::C2], vec![AggFunc::Avg(2), AggFunc::CountStar]);
    let join = micro::query(1.0, false, AccessPathChoice::ForceFull)
        .join(
            LogicalPlan::scan(
                ScanSpec::new(micro::TABLE, micro::predicate(0.1))
                    .with_access(AccessPathChoice::ForceFull),
            ),
            micro::C2,
            micro::C2,
            JoinType::Inner,
            JoinStrategy::Hash,
        )
        .aggregate(vec![], vec![AggFunc::CountStar, AggFunc::Sum(0)]);
    vec![("scan", scan), ("agg", agg), ("group", group), ("join", join)]
}

/// Cold-run the plan through the traced single-worker pipeline.
fn traced_run(db: &Database, plan: &LogicalPlan) -> (usize, ScalingLedger) {
    let pipeline = db.parallel_pipeline(plan).expect("plan builds").expect("plan parallelizes");
    db.storage().flush_pool();
    let (rows, ledger) = run_pipeline_traced(pipeline).expect("traced run");
    (rows.len(), ledger)
}

/// Run the serving experiment: the modeled throughput gate and the real
/// concurrent-session correctness leg.
pub fn run() {
    let mut db = setup::micro_db(nvme());
    let mixed = plans();
    let mut table = Report::new(
        "serve",
        "N concurrent sessions on one shared engine, mixed plan set (modeled qps ratio \
         from the per-query virtual-clock ledgers; wall qps is host-dependent and ungated)",
        &["shape", "rows", "rows_processed", "pages_read", "virtual_ms_1w"],
    );

    // Solo references: per-plan rows + per-query scan statistics through
    // the shared scheduler (one session, nothing else running), and the
    // traced ledgers the multi-query model consumes.
    db.set_workers(WORKERS);
    db.set_max_queries(SESSIONS);
    let solo: Vec<_> = mixed
        .iter()
        .map(|(shape, plan)| {
            let got = db.session().run(plan).expect("solo run");
            let (n_traced, ledger) = traced_run(&db, plan);
            assert_eq!(n_traced, got.rows.len(), "{shape}: traced row count");
            table.row(vec![
                (*shape).into(),
                got.rows.len().to_string(),
                got.scan.rows_processed.to_string(),
                got.scan.pages_read.to_string(),
                format!("{:.2}", ledger.total_ns() as f64 / 1e6),
            ]);
            // Per-query scan statistics, surfaced in the JSON report
            // (deterministic when the query runs alone).
            json_metric(Metric::info(
                format!("serve.{shape}.scan.rows_processed"),
                got.scan.rows_processed as f64,
                "rows",
                true,
            ));
            json_metric(Metric::info(
                format!("serve.{shape}.scan.pages_read"),
                got.scan.pages_read as f64,
                "pages",
                false,
            ));
            json_metric(Metric::info(
                format!("serve.{shape}.scan.mb_read"),
                got.scan.mb_read(),
                "mb",
                false,
            ));
            (got.rows, got.scan, ledger)
        })
        .collect();

    // The deterministic throughput model: four traced queries over one
    // shared pool vs the same four chained one at a time.
    let ledgers: Vec<ScalingLedger> = solo.iter().map(|(_, _, l)| l.clone()).collect();
    let chained: u64 = ledgers.iter().map(|l| l.makespan_ns(WORKERS)).sum();
    let served = multi_query_makespan_ns(&ledgers, WORKERS, SESSIONS);
    let ratio = chained as f64 / served.max(1) as f64;
    let modeled_wait: u64 = ledgers.iter().map(|l| l.modeled_src_wait_ns(WORKERS)).sum();
    json_metric(
        Metric::gated(format!("serve.mixed.model_qps_ratio.w{WORKERS}"), ratio, "x", true)
            .with_floor(MODEL_QPS_RATIO_FLOOR),
    );
    json_metric(Metric::info(
        format!("serve.mixed.model_src_wait_ms.w{WORKERS}"),
        modeled_wait as f64 / 1e6,
        "virtual_ms",
        false,
    ));

    // The real concurrent leg: one thread per session, every run's rows
    // and scan attribution must equal the solo run exactly.
    let wall = Instant::now();
    let lock_wait_ns: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = mixed
            .iter()
            .zip(&solo)
            .map(|((shape, plan), (rows, scan, _))| {
                let db = &db;
                scope.spawn(move || {
                    let session = db.session();
                    let mut wait = 0u64;
                    for _ in 0..REPEATS {
                        let got = session.run(plan).expect("concurrent run");
                        assert_eq!(&got.rows, rows, "{shape}: concurrent rows diverge from solo");
                        assert_eq!(
                            got.scan.rows_processed, scan.rows_processed,
                            "{shape}: per-query row attribution diverges under concurrency"
                        );
                        wait += got.scan.lock_wait_ns;
                    }
                    wait
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("session thread")).sum()
    });
    let elapsed = wall.elapsed().as_secs_f64();
    let queries = (SESSIONS * REPEATS) as f64;
    json_metric(Metric::info("serve.mixed.wall_qps.w4", queries / elapsed.max(1e-12), "qps", true));
    json_metric(Metric::info(
        "serve.mixed.measured_lock_wait_ms",
        lock_wait_ns as f64 / 1e6,
        "wall_ms",
        false,
    ));

    table.finish();
    println!(
        "  [modeled qps ratio {ratio:.3}x over one-at-a-time at {WORKERS} workers; \
         {queries:.0} concurrent queries row-identical to solo]"
    );

    // Survives to the report only after every concurrent-equality assert
    // held (the serve analogue of the clock_match gates).
    json_metric(Metric::gated("serve.mixed.rows_match", 1.0, "bool", true).with_floor(1.0));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smoke-scale gate invariants: the modeled concurrent-serving
    /// ratio clears the committed floor, and real concurrent sessions
    /// return solo-identical rows.
    #[test]
    fn model_ratio_clears_floor_and_concurrent_rows_match() {
        let mut db = setup::micro_db(nvme());
        db.set_workers(WORKERS);
        db.set_max_queries(SESSIONS);
        let mixed = plans();
        let solo: Vec<_> = mixed
            .iter()
            .map(|(_, plan)| {
                let rows = db.session().run(plan).expect("solo").rows;
                let (_, ledger) = traced_run(&db, plan);
                (rows, ledger)
            })
            .collect();
        let ledgers: Vec<ScalingLedger> = solo.iter().map(|(_, l)| l.clone()).collect();
        let chained: u64 = ledgers.iter().map(|l| l.makespan_ns(WORKERS)).sum();
        let served = multi_query_makespan_ns(&ledgers, WORKERS, SESSIONS);
        let ratio = chained as f64 / served.max(1) as f64;
        assert!(
            ratio >= MODEL_QPS_RATIO_FLOOR,
            "modeled serving ratio {ratio:.3} under the {MODEL_QPS_RATIO_FLOOR} floor"
        );
        std::thread::scope(|scope| {
            for ((shape, plan), (rows, _)) in mixed.iter().zip(&solo) {
                let db = &db;
                scope.spawn(move || {
                    let got = db.session().run(plan).expect("concurrent").rows;
                    assert_eq!(&got, rows, "{shape}: concurrent rows diverge");
                });
            }
        });
    }
}
