//! Fig. 4 + Table II: improving TPC-H with Smooth Scan.
//!
//! For each of Q1 (98%), Q4 (65%), Q6 (2%), Q7 (30%) and Q14 (1%): run the
//! plan PostgreSQL 9.2.1 chose (Section VI-B) and the same plan with
//! Smooth Scan as the LINEITEM access path, reporting execution time split
//! into CPU utilization and I/O wait (Fig. 4) plus the number of I/O
//! requests and data read (Table II).
//!
//! Expected shape: large wins where PostgreSQL picked an index scan at
//! non-trivial selectivity (Q6 ~10×, Q7 ~7×, Q14 ~8×), near-parity with a
//! small Smooth overhead where the choice was already optimal (Q1 +14%,
//! Q4 < +1% in the paper).

use smooth_core::SmoothScanConfig;
use smooth_planner::AccessPathChoice;
use smooth_storage::DeviceProfile;
use smooth_workload::tpch::queries::Fig4Query;

use crate::report::Report;
use crate::setup;

/// Run the five queries under both disciplines.
pub fn run() {
    let db = setup::tpch_tuned(DeviceProfile::hdd());
    let mut fig = Report::new(
        "fig4",
        "TPC-H with Smooth Scan (virtual s; pSQL = PostgreSQL's plan)",
        &[
            "query",
            "psql_cpu_s",
            "psql_io_s",
            "psql_total_s",
            "ss_cpu_s",
            "ss_io_s",
            "ss_total_s",
            "speedup",
        ],
    );
    let mut table2 = Report::new(
        "table2",
        "I/O analysis (Table II)",
        &["query", "psql_io_req_K", "ss_io_req_K", "psql_read_MB", "ss_read_MB"],
    );
    for q in Fig4Query::all() {
        let psql = db.run(&q.plan(q.psql_access())).expect("psql plan").stats;
        let smooth = db
            .run(&q.plan(AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic())))
            .expect("smooth plan")
            .stats;
        fig.row(vec![
            q.label().to_string(),
            Report::secs(psql.clock.cpu_ns as f64 / 1e9),
            Report::secs(psql.clock.io_ns as f64 / 1e9),
            Report::secs(psql.secs()),
            Report::secs(smooth.clock.cpu_ns as f64 / 1e9),
            Report::secs(smooth.clock.io_ns as f64 / 1e9),
            Report::secs(smooth.secs()),
            Report::factor(psql.secs() / smooth.secs().max(1e-9)),
        ]);
        table2.row(vec![
            q.label().to_string(),
            format!("{:.1}", psql.io.io_requests as f64 / 1e3),
            format!("{:.1}", smooth.io.io_requests as f64 / 1e3),
            format!("{:.1}", psql.io.mb_read()),
            format!("{:.1}", smooth.io.mb_read()),
        ]);
    }
    fig.finish();
    table2.finish();
}
