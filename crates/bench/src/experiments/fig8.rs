//! Fig. 8: handling skew — execution time (8a) and number of distinct heap
//! pages read (8b) for the `c2 = 0` query over the skewed table.
//!
//! Expected shape: Selectivity-Increase, poisoned by the dense head, keeps
//! huge morphing regions through the sparse tail and fetches a large slice
//! of the table (the paper: 8.8 M of 12.5 M pages, 56× more than Elastic
//! and 5× slower); Elastic shrinks back after the head and lands near the
//! index scan's page count while staying near-optimal in time.

use smooth_core::{PolicyKind, SmoothScanConfig};
use smooth_planner::AccessPathChoice;
use smooth_storage::DeviceProfile;
use smooth_workload::skew;

use crate::report::Report;
use crate::setup;

/// Run the four access paths over the skewed table.
pub fn run() {
    let db = setup::skew_db(DeviceProfile::hdd());
    let heap_file = db.table(skew::TABLE).expect("skew").heap.file_id();
    let mut report = Report::new(
        "fig8",
        "skew: c2 = 0 (sel ≈ 1%, dense head)",
        &["access_path", "exec_time_s", "distinct_pages_read"],
    );
    let runs: Vec<(&str, AccessPathChoice)> = vec![
        ("full_scan", AccessPathChoice::ForceFull),
        ("index_scan", AccessPathChoice::ForceIndex),
        (
            "si_smooth",
            AccessPathChoice::Smooth(
                SmoothScanConfig::eager_elastic().with_policy(PolicyKind::SelectivityIncrease),
            ),
        ),
        (
            "elastic_smooth",
            AccessPathChoice::Smooth(
                SmoothScanConfig::eager_elastic().with_policy(PolicyKind::Elastic),
            ),
        ),
    ];
    for (name, access) in runs {
        // Reset metrics so the distinct-page count is per-run.
        db.storage().reset_metrics();
        let stats = db.run(&skew::query(access)).expect("fig8 query").stats;
        let distinct = db.storage().distinct_pages_for(heap_file);
        report.row(vec![name.to_string(), Report::secs(stats.secs()), distinct.to_string()]);
    }
    report.finish();
}
