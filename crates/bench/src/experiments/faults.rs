//! Fault isolation on the shared engine.
//!
//! Not a paper figure: this experiment records what PR 8 buys — a
//! poisoned session cannot perturb its neighbors, and transient-fault
//! retries cost exactly the modeled backoff. Four deterministic
//! sessions share one engine: three "survivor" shapes from the `serve`
//! mixed set drive the micro table, while the fourth drives a dedicated
//! poison table whose heap file is the scope of a seeded
//! [`FaultConfig`] (see `docs/fault_model.md`).
//!
//! **Prediction.** Fault draws are stateless hashes of (seed, site,
//! file, page, attempt), so the experiment *predicts* the faulted run
//! before making it: replaying [`FaultInjector::page_read`] over every
//! poison page on a scratch [`VirtualClock`] yields the exact backoff
//! the engine must charge. A short seed search picks a config under
//! which every page survives its retry budget but at least one page
//! backs off.
//!
//! **Gates.** `faults.retry.backoff_ms` (floored) is that predicted
//! backoff — emitted only after hard-asserting the measured run matched
//! it bit-for-bit (`faults.retry.backoff_exact`): same rows as the
//! fault-free run, identical CPU lane, I/O lane higher by exactly the
//! prediction. `faults.mixed.rows_match` survives to the report only
//! after both concurrent legs held: beside a *degraded* session
//! (retries succeed) and beside a *failing* one (`io_err=1`,
//! [`Error::Faulted`]), every survivor's rows equal its solo run, and
//! the engine serves the poisoned plan again once faults clear.

use smooth_executor::{AggFunc, JoinType, SpillFile};
use smooth_planner::{AccessPathChoice, JoinStrategy, LogicalPlan, ScanSpec};
use smooth_storage::faults::RETRY_LIMIT;
use smooth_storage::{DeviceProfile, FaultConfig, FaultInjector, FileId, VirtualClock};
use smooth_types::{Column, DataType, Error, Row, Schema, Value};
use smooth_workload::micro;

use crate::report::{json_metric, Metric, Report};
use crate::setup;

/// Concurrent sessions: three survivors plus the poisoned one.
pub const SESSIONS: usize = 4;
/// Worker-pool width both legs run at.
pub const WORKERS: usize = 4;
/// Floor on the modeled retry-backoff overhead of the degraded run.
pub const BACKOFF_MS_FLOOR: f64 = 0.05;

/// The dedicated poison table (faults are scoped to its heap file).
const POISON_TABLE: &str = "poison";
/// Poison-table rows: fixed (not `MICRO_ROWS`) so the fault surface is
/// scale-independent.
const POISON_ROWS: i64 = 20_000;
/// Transient page-read fault probability of the degraded leg.
const IO_ERR: f64 = 0.25;
/// Pads poison tuples to the micro table's ~90-byte geometry.
const PAD: &str = "................................................................";

/// NVMe-like profile (as `serve`): queries are CPU-bound enough for the
/// shared pool to matter, so isolation is actually exercised.
fn nvme() -> DeviceProfile {
    DeviceProfile::custom("nvme", 3_000, 6_000)
}

fn poison_schema() -> Schema {
    Schema::new(vec![
        Column::new("c1", DataType::Int64),
        Column::new("c2", DataType::Int64),
        Column::new("pad", DataType::Text),
    ])
    .expect("static schema")
}

/// Deterministic poison rows (`c1` = tuple order, `c2` ∈ [0, 1000)).
fn poison_rows(count: i64) -> impl Iterator<Item = Row> {
    (0..count).map(|i| {
        Row::new(vec![Value::Int(i), Value::Int(i.wrapping_mul(2_654_435_761) % 1_000), {
            Value::str(PAD)
        }])
    })
}

/// Full-scan + aggregate over `table`: one output row that depends on
/// every input row, so result equality proves the whole scan survived.
fn full_agg_plan(table: &str) -> LogicalPlan {
    LogicalPlan::Scan(
        ScanSpec::new(table, smooth_executor::Predicate::int_half_open(1, 0, 1_000))
            .with_access(AccessPathChoice::ForceFull),
    )
    .aggregate(vec![], vec![AggFunc::CountStar, AggFunc::Sum(0), AggFunc::Min(0), AggFunc::Max(0)])
}

fn poison_plan() -> LogicalPlan {
    full_agg_plan(POISON_TABLE)
}

/// The survivor shapes (a subset of the `serve` mixed set, all on the
/// micro table — disjoint from the poison file's fault scope).
fn survivor_plans() -> Vec<(&'static str, LogicalPlan)> {
    let scan = micro::query(0.1, false, AccessPathChoice::ForceFull);
    let group = micro::query(0.01, false, AccessPathChoice::ForceFull)
        .aggregate(vec![micro::C2], vec![AggFunc::Avg(2), AggFunc::CountStar]);
    let join = micro::query(1.0, false, AccessPathChoice::ForceFull)
        .join(
            LogicalPlan::scan(
                ScanSpec::new(micro::TABLE, micro::predicate(0.1))
                    .with_access(AccessPathChoice::ForceFull),
            ),
            micro::C2,
            micro::C2,
            JoinType::Inner,
            JoinStrategy::Hash,
        )
        .aggregate(vec![], vec![AggFunc::CountStar, AggFunc::Sum(0)]);
    vec![("scan", scan), ("group", group), ("join", join)]
}

/// Replay the injector over every poison page on a scratch clock: the
/// exact backoff a cold full scan will be charged, or `None` if any
/// page exhausts its retry budget. Also counts the pages that retried.
fn predicted_backoff(cfg: FaultConfig, file: FileId, pages: u32) -> Option<(u64, u32)> {
    let inj = FaultInjector::new(cfg);
    let clock = VirtualClock::new();
    let mut retried = 0u32;
    for page in 0..pages {
        let before = clock.snapshot().io_ns;
        inj.page_read(&clock, file, page).ok()?;
        if clock.snapshot().io_ns > before {
            retried += 1;
        }
    }
    Some((clock.snapshot().io_ns, retried))
}

/// Find a seed whose scoped `io_err` config lets every poison page
/// survive its retries while at least one page backs off — a degraded
/// (not failing) run with a non-zero, exactly-predictable overhead.
fn search_seed(file: FileId, pages: u32) -> (FaultConfig, u64, u32) {
    for seed in 1..=10_000u64 {
        let cfg = FaultConfig::new(seed).io_err(IO_ERR).scope_to_file(file);
        if let Some((backoff_ns, retried)) = predicted_backoff(cfg, file, pages) {
            if backoff_ns > 0 {
                return (cfg, backoff_ns, retried);
            }
        }
    }
    panic!("no survivable fault seed among 10k candidates (pages={pages})");
}

/// Run the fault-isolation experiment: the predicted-backoff gate and
/// the two concurrent blast-radius legs.
pub fn run() {
    let live_spills = SpillFile::live_count();
    let mut db = setup::micro_db(nvme());
    db.set_faults(None); // the experiment owns the fault config
    db.load_table(POISON_TABLE, poison_schema(), poison_rows(POISON_ROWS)).expect("poison load");
    db.set_workers(WORKERS);
    db.set_max_queries(SESSIONS);
    let (poison_file, poison_pages) = {
        let entry = db.table(POISON_TABLE).expect("poison table registered");
        (entry.heap.file_id(), entry.heap.page_count())
    };
    let (cfg, predicted_ns, retried_pages) = search_seed(poison_file, poison_pages);

    // Solo fault-free references for every session.
    let survivors = survivor_plans();
    let refs: Vec<Vec<Row>> = survivors
        .iter()
        .map(|(_, plan)| {
            db.storage().flush_pool();
            db.session().run(plan).expect("solo survivor run").rows
        })
        .collect();
    db.storage().flush_pool();
    let before = db.storage().clock().snapshot();
    let clean = db.session().run(&poison_plan()).expect("fault-free poison run");
    let clean_d = db.storage().clock().snapshot().since(&before);

    // The degraded solo run: same rows, same CPU lane, and an I/O lane
    // higher by exactly the replayed prediction.
    db.set_faults(Some(cfg));
    db.storage().flush_pool();
    let before = db.storage().clock().snapshot();
    let degraded = db.session().run(&poison_plan()).expect("degraded run survives its retries");
    let degraded_d = db.storage().clock().snapshot().since(&before);
    db.set_faults(None);
    assert_eq!(degraded.rows, clean.rows, "retried faults changed query results");
    assert_eq!(degraded_d.cpu_ns, clean_d.cpu_ns, "backoff leaked onto the CPU lane");
    assert_eq!(
        degraded_d.io_ns,
        clean_d.io_ns + predicted_ns,
        "measured backoff diverges from the stateless-draw prediction"
    );

    // Leg A — degraded neighbor: all four sessions run concurrently
    // under the survivable config; everyone's rows must equal solo.
    db.set_faults(Some(cfg));
    db.storage().flush_pool();
    std::thread::scope(|scope| {
        for ((shape, plan), rows) in survivors.iter().zip(&refs) {
            let db = &db;
            scope.spawn(move || {
                let got = db.session().run(plan).expect("survivor beside a degraded session");
                assert_eq!(&got.rows, rows, "{shape}: rows diverge beside a degraded session");
            });
        }
        let db = &db;
        let clean_rows = &clean.rows;
        scope.spawn(move || {
            let got = db.session().run(&poison_plan()).expect("degraded run under concurrency");
            assert_eq!(&got.rows, clean_rows, "poison session: retried rows diverge");
        });
    });

    // Leg B — failing neighbor: certain page faults exhaust the retry
    // budget, the poisoned query fails typed, the survivors don't care.
    db.set_faults(Some(cfg.io_err(1.0)));
    db.storage().flush_pool();
    std::thread::scope(|scope| {
        for ((shape, plan), rows) in survivors.iter().zip(&refs) {
            let db = &db;
            scope.spawn(move || {
                let got = db.session().run(plan).expect("survivor beside a failing session");
                assert_eq!(&got.rows, rows, "{shape}: rows diverge beside a failing session");
            });
        }
        let db = &db;
        scope.spawn(move || {
            let err = db.session().run(&poison_plan()).expect_err("certain faults must fail");
            assert_eq!(err, Error::Faulted { attempts: RETRY_LIMIT }, "wrong failure type");
        });
    });
    db.set_faults(None);

    // Recovery: once faults clear the same engine serves the poisoned
    // plan again, and the failed query leaked no spill files.
    db.storage().flush_pool();
    let recovered = db.session().run(&poison_plan()).expect("engine survives the poisoned leg");
    assert_eq!(recovered.rows, clean.rows, "post-fault recovery returned different rows");
    assert_eq!(SpillFile::live_count(), live_spills, "fault legs leaked spill files");

    let mut table = Report::new(
        "faults",
        "4 sessions, one poisoned (faults scoped to the poison heap file): survivor rows \
         vs solo, and the degraded run's exactly-predicted retry backoff",
        &["session", "plan", "rows", "degraded leg", "failing leg"],
    );
    for (i, ((shape, _), rows)) in survivors.iter().zip(&refs).enumerate() {
        table.row(vec![
            format!("s{i}"),
            format!("micro {shape}"),
            rows.len().to_string(),
            "rows = solo".into(),
            "rows = solo".into(),
        ]);
    }
    table.row(vec![
        "s3".into(),
        "poison full+agg".into(),
        clean.rows.len().to_string(),
        format!("ok, +{:.2} virtual_ms backoff", predicted_ns as f64 / 1e6),
        format!("Err(Faulted {{ attempts: {RETRY_LIMIT} }})"),
    ]);

    json_metric(Metric::info("faults.poison.pages", poison_pages as f64, "pages", false));
    json_metric(Metric::info("faults.poison.retried_pages", retried_pages as f64, "pages", false));
    json_metric(Metric::info("faults.seed", cfg.seed as f64, "seed", false));
    // Survive to the report only after the asserts above held.
    json_metric(
        Metric::gated("faults.retry.backoff_ms", predicted_ns as f64 / 1e6, "virtual_ms", true)
            .with_floor(BACKOFF_MS_FLOOR),
    );
    json_metric(Metric::gated("faults.retry.backoff_exact", 1.0, "bool", true).with_floor(1.0));
    json_metric(Metric::gated("faults.mixed.rows_match", 1.0, "bool", true).with_floor(1.0));

    table.finish();
    println!(
        "  [{retried_pages}/{poison_pages} poison pages retried for +{:.2} virtual_ms \
         (seed {}); survivors byte-identical beside degraded and failing sessions]",
        predicted_ns as f64 / 1e6,
        cfg.seed
    );
}

#[cfg(test)]
mod tests {
    use smooth_planner::Database;

    use super::*;

    /// Smoke-scale gate invariants, relation-only (heap file ids are
    /// process-global, so absolute seeds and backoffs depend on test
    /// interleaving): the replayed prediction matches the measured
    /// clock exactly, retried rows equal fault-free rows, and a clean
    /// neighbor is untouched beside a permanently failing session.
    #[test]
    fn predicted_backoff_is_exact_and_neighbors_survive() {
        let mut db = Database::new(setup::storage_config(nvme(), 64));
        db.set_faults(None);
        db.load_table(POISON_TABLE, poison_schema(), poison_rows(4_000)).unwrap();
        db.load_table("clean", poison_schema(), poison_rows(4_000)).unwrap();
        db.set_workers(2);
        db.set_max_queries(2);
        let (file, pages) = {
            let entry = db.table(POISON_TABLE).unwrap();
            (entry.heap.file_id(), entry.heap.page_count())
        };
        let (cfg, predicted_ns, _) = search_seed(file, pages);

        db.storage().flush_pool();
        let clean_ref = db.session().run(&full_agg_plan("clean")).unwrap().rows;
        db.storage().flush_pool();
        let before = db.storage().clock().snapshot();
        let base = db.session().run(&poison_plan()).unwrap();
        let base_d = db.storage().clock().snapshot().since(&before);

        db.set_faults(Some(cfg));
        db.storage().flush_pool();
        let before = db.storage().clock().snapshot();
        let degraded = db.session().run(&poison_plan()).expect("survivable config");
        let degraded_d = db.storage().clock().snapshot().since(&before);
        assert_eq!(degraded.rows, base.rows);
        assert_eq!(degraded_d.cpu_ns, base_d.cpu_ns);
        assert_eq!(degraded_d.io_ns, base_d.io_ns + predicted_ns);

        db.set_faults(Some(cfg.io_err(1.0)));
        db.storage().flush_pool();
        std::thread::scope(|scope| {
            let db = &db;
            let clean_ref = &clean_ref;
            scope.spawn(move || {
                let got = db.session().run(&full_agg_plan("clean")).expect("clean neighbor");
                assert_eq!(&got.rows, clean_ref, "neighbor rows diverge beside a failing session");
            });
            scope.spawn(move || {
                let err = db.session().run(&poison_plan()).expect_err("certain faults fail");
                assert_eq!(err, Error::Faulted { attempts: RETRY_LIMIT });
            });
        });
        db.set_faults(None);
        let recovered = db.session().run(&poison_plan()).unwrap();
        assert_eq!(recovered.rows, base.rows);
    }
}
