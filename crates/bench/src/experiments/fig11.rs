//! Fig. 11: the Switch Scan performance cliff.
//!
//! Switch Scan runs a plain index scan until the optimizer's 32 K-tuple
//! estimate is violated, then restarts as a full scan. Expected shape: a
//! vertical cliff right past the estimate's selectivity (the time jumps by
//! a whole full-scan), then flat full-scan behaviour — versus Smooth
//! Scan's smooth curve through the same region.

use smooth_core::SmoothScanConfig;
use smooth_planner::AccessPathChoice;
use smooth_storage::DeviceProfile;
use smooth_workload::micro;

use crate::report::Report;
use crate::setup;

/// Run the cliff study.
pub fn run() {
    let db = setup::micro_db(DeviceProfile::hdd());
    let rows = setup::micro_rows();
    // The optimizer's estimate: 0.008% selectivity (the paper's 32 K of
    // 400 M tuples); the cliff appears at the next grid point, 0.009%.
    let estimate = (rows as f64 * 0.00008) as u64;
    println!("  [switch scan estimate = {estimate} tuples]");
    let mut report = Report::new(
        "fig11",
        "switch scan cliff (exec time, virtual s)",
        &["sel_%", "full_scan", "switch_scan", "smooth_scan"],
    );
    let grid =
        [0.00001, 0.00005, 0.00007, 0.00008, 0.00009, 0.0001, 0.0005, 0.001, 0.01, 0.10, 0.50, 1.0];
    for sel in grid {
        let mut cells = vec![format!("{}", sel * 100.0)];
        for access in [
            AccessPathChoice::ForceFull,
            AccessPathChoice::Switch { estimate },
            AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic()),
        ] {
            let plan = micro::query(sel, false, access);
            let stats = db.run(&plan).expect("fig11 query").stats;
            cells.push(Report::secs(stats.secs()));
        }
        report.row(cells);
    }
    report.finish();
}
