//! Table I + cost-model validation (Section V; accuracy corroborated in
//! the technical report).
//!
//! First prints Table I's parameters instantiated for the micro table,
//! then compares the model-predicted I/O cost of each access path against
//! the *measured* virtual I/O time across the selectivity sweep.

use smooth_core::{CostModel, SmoothScanConfig, TableGeometry};
use smooth_planner::AccessPathChoice;
use smooth_storage::DeviceProfile;
use smooth_workload::micro;

use crate::report::Report;
use crate::setup;

/// Print Table I and run the validation sweep.
pub fn run() {
    let db = setup::micro_db(DeviceProfile::hdd());
    let heap = &db.table(micro::TABLE).expect("micro").heap;
    let geometry =
        TableGeometry::new(heap.schema().estimated_tuple_width(16) as u64, heap.tuple_count());
    let model = CostModel::new(geometry, DeviceProfile::hdd());

    let mut t1 = Report::new(
        "table1",
        "cost model parameters (micro table instance)",
        &["parameter", "value", "equation"],
    );
    let g = &model.geometry;
    for (name, value, eq) in [
        ("TS (tuple size B)", g.tuple_size.to_string(), "-"),
        ("#T (tuples)", g.tuples.to_string(), "-"),
        ("PS (page size B)", g.page_size.to_string(), "-"),
        ("#TP (tuples/page)", g.tuples_per_page().to_string(), "Eq.3"),
        ("#P (pages)", g.pages().to_string(), "Eq.4"),
        ("fanout", g.fanout().to_string(), "Eq.5"),
        ("#leaves", g.leaves().to_string(), "Eq.6"),
        ("height", g.height().to_string(), "Eq.7"),
        ("randcost (ns/page)", model.device.rand_page_ns.to_string(), "-"),
        ("seqcost (ns/page)", model.device.seq_page_ns.to_string(), "-"),
    ] {
        t1.row(vec![name.to_string(), value, eq.to_string()]);
    }
    t1.finish();

    let mut v = Report::new(
        "costmodel",
        "predicted vs measured I/O time (virtual s)",
        &[
            "sel_%",
            "fs_model",
            "fs_measured",
            "is_model",
            "is_measured",
            "ss_model",
            "ss_measured",
            "ss_err_%",
        ],
    );
    for sel in micro::selectivity_grid() {
        let card = model.geometry.cardinality(sel);
        let fs_meas = measure(&db, sel, AccessPathChoice::ForceFull);
        let is_meas = measure(&db, sel, AccessPathChoice::ForceIndex);
        let ss_meas =
            measure(&db, sel, AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic()));
        let ss_model = model.ss_cost_ns(card) / 1e9;
        let err = if ss_meas > 0.0 { (ss_model / ss_meas - 1.0) * 100.0 } else { 0.0 };
        v.row(vec![
            format!("{}", sel * 100.0),
            Report::secs(model.fs_cost_ns() / 1e9),
            Report::secs(fs_meas),
            Report::secs(model.is_cost_ns(card) / 1e9),
            Report::secs(is_meas),
            Report::secs(ss_model),
            Report::secs(ss_meas),
            format!("{err:+.0}"),
        ]);
    }
    v.finish();
}

fn measure(db: &smooth_planner::Database, sel: f64, access: AccessPathChoice) -> f64 {
    let stats = db.run(&micro::query(sel, false, access)).expect("costmodel run").stats;
    stats.clock.io_ns as f64 / 1e9
}
