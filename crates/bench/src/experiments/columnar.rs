//! Columnar vs row-batch execution on the micro-benchmark table.
//!
//! Not a paper figure: this experiment records what the columnar layer
//! (typed column vectors + selection vectors + vectorized predicate
//! kernels) buys over the row-major batch pipeline it replaced as the
//! default driver. Two shapes at 10% selectivity:
//!
//! * **filter** — `Filter` above an unfiltered `FullTableScan`: the
//!   row-batch path fully decodes every tuple into a `Row` and evaluates
//!   the predicate row-at-a-time; the columnar path decodes pages into
//!   column vectors once, runs the comparison kernel over one typed
//!   vector and drops non-qualifiers via the selection vector without
//!   materializing anything. The CI gate holds a ≥1.3× floor here.
//! * **scan** — the predicate pushed into the scan (both paths probe
//!   encoded tuples): what remains is the columnar decode of qualifiers,
//!   reported informationally.
//!
//! It also proves the drivers interchangeable: for all four access paths
//! the virtual-clock totals (CPU and I/O charges) under the columnar
//! driver must be *identical* to the row-batch driver, byte for byte —
//! the columnar data plane never changes what work the engine is charged
//! for, only how fast the host executes it.

use std::sync::Arc;

use smooth_core::SmoothScanConfig;
use smooth_executor::{collect_rows, collect_rows_batch, Filter, FullTableScan, Predicate};
use smooth_planner::AccessPathChoice;
use smooth_storage::DeviceProfile;
use smooth_workload::micro;

use crate::experiments::batch::{best_wall_secs, RUNS};
use crate::report::{json_metric, Metric, Report};
use crate::setup;

/// Wall-clock speedup floor the perf-smoke gate enforces for the
/// filter-shape comparison at 10% selectivity.
pub const SPEEDUP_FLOOR: f64 = 1.3;

/// Run the columnar-vs-row-batch comparison and the clock-equality check.
pub fn run() {
    let db = setup::micro_db(DeviceProfile::hdd());
    let heap = Arc::clone(&db.table(micro::TABLE).expect("micro installed").heap);
    let storage = db.storage().clone();
    let rows_total = heap.tuple_count() as f64;
    let pred = micro::predicate(0.1);

    let mut wall = Report::new(
        "columnar",
        format!("row-batch vs columnar pipeline at 10% selectivity (wall clock, best of {RUNS})"),
        &["shape", "rows_out", "rowbatch_krows_s", "columnar_krows_s", "speedup"],
    );

    // Shape 1: Filter above an unfiltered scan — the kernel/selection showcase.
    let mk_filter = || {
        Filter::new(
            Box::new(FullTableScan::new(Arc::clone(&heap), storage.clone(), Predicate::True)),
            pred.clone(),
        )
    };
    let (rb_s, n_rb) =
        best_wall_secs(|| collect_rows_batch(&mut mk_filter()).expect("row-batch filter").len());
    let (col_s, n_col) =
        best_wall_secs(|| collect_rows(&mut mk_filter()).expect("columnar filter").len());
    assert_eq!(n_rb, n_col, "drivers must agree on the result set");
    let filter_speedup = rb_s / col_s.max(1e-12);
    wall.row(vec![
        "filter".into(),
        n_col.to_string(),
        format!("{:.0}", rows_total / rb_s.max(1e-12) / 1e3),
        format!("{:.0}", rows_total / col_s.max(1e-12) / 1e3),
        Report::factor(filter_speedup),
    ]);
    // Same-machine ratio, wall-clock-noisy → floor-gated, not
    // baseline-compared (mirrors the batch experiment's speedup metric).
    json_metric(
        Metric::info("columnar.filter.sel10.speedup", filter_speedup, "x", true)
            .with_floor(SPEEDUP_FLOOR),
    );

    // Shape 2: predicate pushed into the scan (informational).
    let mk_scan = || FullTableScan::new(Arc::clone(&heap), storage.clone(), pred.clone());
    let (rb_s, n_rb) =
        best_wall_secs(|| collect_rows_batch(&mut mk_scan()).expect("row-batch scan").len());
    let (col_s, n_col) =
        best_wall_secs(|| collect_rows(&mut mk_scan()).expect("columnar scan").len());
    assert_eq!(n_rb, n_col, "drivers must agree on the result set");
    let scan_speedup = rb_s / col_s.max(1e-12);
    wall.row(vec![
        "scan".into(),
        n_col.to_string(),
        format!("{:.0}", rows_total / rb_s.max(1e-12) / 1e3),
        format!("{:.0}", rows_total / col_s.max(1e-12) / 1e3),
        Report::factor(scan_speedup),
    ]);
    json_metric(Metric::info("columnar.scan.sel10.speedup", scan_speedup, "x", true));
    wall.finish();

    // Driver interchangeability: identical virtual-clock totals (CPU and
    // I/O charges) for every access path under both batch drivers.
    let paths: [(&str, AccessPathChoice); 4] = [
        ("full", AccessPathChoice::ForceFull),
        ("index", AccessPathChoice::ForceIndex),
        ("sort", AccessPathChoice::ForceSort),
        ("smooth", AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic())),
    ];
    for (name, access) in paths {
        let plan = micro::query(0.1, false, access);
        let columnar = db.run(&plan).expect("columnar run").stats;
        // Cold-run the identical plan through the row-batch driver.
        let mut op = db.build(&plan).expect("plan builds");
        db.storage().flush_pool();
        let clock0 = db.storage().clock().snapshot();
        let rows = collect_rows_batch(op.as_mut()).expect("row-batch run");
        let rb_clock = db.storage().clock().snapshot().since(&clock0);
        assert_eq!(rows.len() as u64, columnar.rows, "{name}: row counts diverge");
        assert_eq!(
            (columnar.clock.cpu_ns, columnar.clock.io_ns),
            (rb_clock.cpu_ns, rb_clock.io_ns),
            "{name}: columnar and row-batch virtual-clock totals must be identical"
        );
    }
    // Survives to the report only after every assert above held.
    json_metric(
        Metric::gated("columnar.virtual.sel10.clock_match", 1.0, "bool", true).with_floor(1.0),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_storage::{HeapLoader, Storage};
    use smooth_types::{Column, DataType, Row, Schema, Value};

    /// The two batch drivers agree row-for-row and charge the identical
    /// virtual clock on a filter-above-scan plan.
    #[test]
    fn drivers_agree_and_charge_identically() {
        let schema = Schema::new(vec![
            Column::new("c1", DataType::Int64),
            Column::new("c2", DataType::Int64),
        ])
        .unwrap();
        let mut l = HeapLoader::new_mem("t", schema);
        for i in 0..4000i64 {
            l.push(&Row::new(vec![Value::Int(i), Value::Int(i % 100)])).unwrap();
        }
        let heap = Arc::new(l.finish().unwrap());
        let mk = |s: &Storage| {
            Filter::new(
                Box::new(FullTableScan::new(Arc::clone(&heap), s.clone(), Predicate::True)),
                Predicate::int_half_open(1, 0, 10),
            )
        };
        let s1 = Storage::default_hdd();
        let rb = collect_rows_batch(&mut mk(&s1)).unwrap();
        let s2 = Storage::default_hdd();
        let col = collect_rows(&mut mk(&s2)).unwrap();
        assert_eq!(rb, col);
        assert!(!col.is_empty());
        assert_eq!(s1.clock().snapshot().cpu_ns, s2.clock().snapshot().cpu_ns);
        assert_eq!(s1.clock().snapshot().io_ns, s2.clock().snapshot().io_ns);
    }
}
