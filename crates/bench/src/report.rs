//! Aligned-table printing, CSV emission, and the machine-readable JSON
//! perf report (`BENCH_smoke.json`) that CI records and gates on.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One experiment's tabular output.
pub struct Report {
    id: String,
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Start a report for experiment `id`.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row (stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Format seconds with adaptive precision.
    pub fn secs(v: f64) -> String {
        if v >= 100.0 {
            format!("{v:.0}")
        } else if v >= 1.0 {
            format!("{v:.2}")
        } else {
            format!("{v:.4}")
        }
    }

    /// Format a ratio/factor.
    pub fn factor(v: f64) -> String {
        if v >= 100.0 {
            format!("{v:.0}")
        } else {
            format!("{v:.2}")
        }
    }

    /// Print as an aligned table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        println!("\n== {} — {} ==", self.id, self.title);
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            println!("  {}", parts.join("  "));
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }

    /// Write `results/<id>.csv` relative to the workspace root (or CWD).
    pub fn save_csv(&self) -> std::io::Result<PathBuf> {
        let dir = workspace_results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }

    /// Print and save; panics only on I/O failure writing results.
    pub fn finish(&self) {
        self.print();
        match self.save_csv() {
            Ok(path) => println!("  [written {}]", path.display()),
            Err(e) => eprintln!("  [csv write failed: {e}]"),
        }
    }
}

/// One measured quantity in the perf-smoke JSON report.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable identifier, e.g. `batch.fullscan.sel10.speedup`.
    pub id: String,
    /// Measured value.
    pub value: f64,
    /// Unit label, e.g. `x`, `virtual_s`, `wall_s`, `krows_per_s`.
    pub unit: String,
    /// Direction of goodness.
    pub higher_is_better: bool,
    /// Whether the CI baseline comparison gates on this metric. Gate only
    /// what is comparable across machines: virtual-clock times (fully
    /// deterministic) and same-machine ratios like speedups — never raw
    /// wall-clock numbers.
    pub gate: bool,
    /// Optional absolute floor (higher-is-better metrics): the gate fails
    /// when `value < floor` even if no baseline entry exists.
    pub floor: Option<f64>,
}

impl Metric {
    /// An ungated, informational metric.
    pub fn info(id: impl Into<String>, value: f64, unit: &str, higher_is_better: bool) -> Self {
        Metric {
            id: id.into(),
            value,
            unit: unit.into(),
            higher_is_better,
            gate: false,
            floor: None,
        }
    }

    /// A gated metric compared against the committed baseline.
    pub fn gated(id: impl Into<String>, value: f64, unit: &str, higher_is_better: bool) -> Self {
        Metric { gate: true, ..Metric::info(id, value, unit, higher_is_better) }
    }

    /// Builder: add an absolute floor to a gated metric.
    pub fn with_floor(mut self, floor: f64) -> Self {
        self.floor = Some(floor);
        self
    }
}

/// The machine-readable perf report: the unit CI uploads as an artifact
/// and diffs against the committed `BENCH_smoke.json` trajectory point.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonReport {
    /// Suite label (e.g. `perf-smoke`).
    pub suite: String,
    /// Workload scale knobs the run used (`micro_rows`, `tpch_sf`, …).
    pub scales: Vec<(String, f64)>,
    /// The measurements.
    pub metrics: Vec<Metric>,
}

/// Relative slowdown tolerated by the baseline gate (25%).
pub const GATE_TOLERANCE: f64 = 1.25;

impl JsonReport {
    /// An empty report for `suite`.
    pub fn new(suite: impl Into<String>) -> Self {
        JsonReport { suite: suite.into(), scales: Vec::new(), metrics: Vec::new() }
    }

    /// Record one scale knob.
    pub fn scale(&mut self, key: &str, value: f64) {
        self.scales.push((key.to_string(), value));
    }

    /// Record one metric.
    pub fn push(&mut self, metric: Metric) {
        self.metrics.push(metric);
    }

    /// Serialize. One metric object per line, so the report diffs cleanly
    /// in git and parses with [`JsonReport::load`].
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema_version\": 1,\n");
        out.push_str(&format!("  \"suite\": \"{}\",\n", escape(&self.suite)));
        out.push_str("  \"scales\": {");
        let scales: Vec<String> =
            self.scales.iter().map(|(k, v)| format!("\"{}\": {}", escape(k), num(*v))).collect();
        out.push_str(&scales.join(", "));
        out.push_str("},\n");
        out.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let floor = match m.floor {
                Some(f) => format!(", \"floor\": {}", num(f)),
                None => String::new(),
            };
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"value\": {}, \"unit\": \"{}\", \
                 \"higher_is_better\": {}, \"gate\": {}{}}}{}\n",
                escape(&m.id),
                num(m.value),
                escape(&m.unit),
                m.higher_is_better,
                m.gate,
                floor,
                if i + 1 < self.metrics.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the report to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Parse a report previously written by [`JsonReport::save`] (the
    /// one-metric-per-line shape; not a general JSON parser).
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let body = fs::read_to_string(path)?;
        let mut report = JsonReport::default();
        for line in body.lines() {
            let line = line.trim();
            if let Some(suite) = line.strip_prefix("\"suite\":").map(str::trim) {
                report.suite = unquote(suite.trim_end_matches(','));
            }
            if line.starts_with("\"scales\":") {
                if let (Some(a), Some(b)) = (line.find('{'), line.rfind('}')) {
                    for pair in line[a + 1..b].split(',') {
                        if let Some((k, v)) = pair.split_once(':') {
                            if let Ok(v) = v.trim().parse::<f64>() {
                                report.scales.push((unquote(k.trim()), v));
                            }
                        }
                    }
                }
            }
            if line.starts_with("{\"id\":") {
                let field = |key: &str| -> Option<String> {
                    let tag = format!("\"{key}\":");
                    let start = line.find(&tag)? + tag.len();
                    let rest = line[start..].trim_start();
                    let end = rest.find([',', '}'])?;
                    Some(rest[..end].trim().to_string())
                };
                let (Some(id), Some(value)) = (field("id"), field("value")) else { continue };
                let Ok(value) = value.parse::<f64>() else { continue };
                report.metrics.push(Metric {
                    id: unquote(&id),
                    value,
                    unit: field("unit").map(|u| unquote(&u)).unwrap_or_default(),
                    higher_is_better: field("higher_is_better").as_deref() == Some("true"),
                    gate: field("gate").as_deref() == Some("true"),
                    floor: field("floor").and_then(|f| f.parse().ok()),
                });
            }
        }
        Ok(report)
    }

    /// Compare against a `baseline` report: the workload scales must
    /// match (virtual-clock metrics are only comparable at identical
    /// scale), every gated metric present in both must not regress by
    /// more than [`GATE_TOLERANCE`], every metric with a floor must meet
    /// it, and every gated or floored baseline metric must still be
    /// reported (a vanished metric would otherwise disarm the gate
    /// silently). Gate and floor flags are taken from whichever side
    /// declares them, so neither dropping a metric nor downgrading it to
    /// informational can sneak past the committed baseline. Returns
    /// human-readable failures (empty = pass).
    pub fn regressions(&self, baseline: &JsonReport) -> Vec<String> {
        let mut failures = Vec::new();
        for (key, base_value) in &baseline.scales {
            match self.scales.iter().find(|(k, _)| k == key) {
                Some((_, v)) if v == base_value => {}
                Some((_, v)) => failures.push(format!(
                    "scale mismatch: {key} = {v} here vs {base_value} in the baseline — \
                     set the baseline's env knobs (or regenerate the baseline) before gating"
                )),
                None => {
                    failures.push(format!("scale mismatch: {key} missing from this run's report"))
                }
            }
        }
        if !failures.is_empty() {
            // Metric comparisons across different scales are meaningless;
            // report only the mismatch.
            return failures;
        }
        for base in &baseline.metrics {
            if (base.gate || base.floor.is_some()) && !self.metrics.iter().any(|m| m.id == base.id)
            {
                failures.push(format!(
                    "{}: gated/floored baseline metric missing from this run (rename it in \
                     the baseline too, or the gate is disarmed)",
                    base.id
                ));
            }
        }
        for m in &self.metrics {
            let base = baseline.metrics.iter().find(|b| b.id == m.id);
            // Gate and floor flags are honored from *either* side: a code
            // change that downgrades a metric to informational cannot
            // disarm the committed baseline's gate.
            let floor = match (m.floor, base.and_then(|b| b.floor)) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
            if let Some(floor) = floor {
                if m.value < floor {
                    failures.push(format!(
                        "{}: {:.4} {} is below the required floor {:.4}",
                        m.id, m.value, m.unit, floor
                    ));
                }
            }
            let Some(base) = base else { continue };
            if !m.gate && !base.gate {
                continue;
            }
            let ok = if base.higher_is_better {
                m.value >= base.value / GATE_TOLERANCE
            } else {
                m.value <= base.value * GATE_TOLERANCE
            };
            if !ok {
                failures.push(format!(
                    "{}: {:.4} {} regressed >{}% vs baseline {:.4}",
                    m.id,
                    m.value,
                    m.unit,
                    ((GATE_TOLERANCE - 1.0) * 100.0).round(),
                    base.value
                ));
            }
        }
        failures
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unquote(s: &str) -> String {
    s.trim().trim_matches('"').to_string()
}

/// JSON-safe number formatting (f64 `Display` round-trips; non-finite
/// values are not valid JSON and collapse to 0).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// A selectivity expressed as a metric-id-safe percent tag: `0.001` →
/// `sel0p1`, `1.0` → `sel100` (decimal points become `p`, which keeps the
/// one-metric-per-line JSON grep-friendly). Rounded to 4 decimals of a
/// percent so float noise never changes a metric id.
pub fn sel_tag(selectivity: f64) -> String {
    let pct = format!("{:.4}", selectivity * 100.0);
    let pct = pct.trim_end_matches('0').trim_end_matches('.');
    format!("sel{}", pct.replace('.', "p"))
}

/// Process-wide sink the experiments contribute metrics to while the
/// driver runs with `--json`.
static JSON_SINK: Mutex<Option<JsonReport>> = Mutex::new(None);

/// Start collecting metrics into a fresh report.
pub fn json_begin(report: JsonReport) {
    *JSON_SINK.lock().unwrap() = Some(report);
}

/// Record a metric if a collection is active (no-op otherwise, so
/// experiments behave identically when run without `--json`).
pub fn json_metric(metric: Metric) {
    if let Some(report) = JSON_SINK.lock().unwrap().as_mut() {
        report.push(metric);
    }
}

/// Finish collecting and take the report.
pub fn json_take() -> Option<JsonReport> {
    JSON_SINK.lock().unwrap().take()
}

/// `results/` under the workspace root when detectable, else under CWD.
fn workspace_results_dir() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    // Walk up while a Cargo.toml with [workspace] is visible above.
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(body) = fs::read_to_string(&manifest) {
                if body.contains("[workspace]") {
                    return dir.join("results");
                }
            }
        }
        if !dir.pop() {
            return PathBuf::from("results");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JsonReport {
        let mut r = JsonReport::new("perf-smoke");
        r.scale("micro_rows", 40000.0);
        r.scale("tpch_sf", 0.005);
        r.push(Metric::gated("batch.speedup", 3.25, "x", true).with_floor(1.5));
        r.push(Metric::gated("virtual.full.secs", 12.5, "virtual_s", false));
        r.push(Metric::info("wall.batch.secs", 0.8, "wall_s", false));
        r
    }

    #[test]
    fn json_report_roundtrips() {
        let r = sample();
        let dir = std::env::temp_dir().join("smoothscan_report_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        r.save(&path).unwrap();
        let loaded = JsonReport::load(&path).unwrap();
        assert_eq!(loaded, r);
    }

    #[test]
    fn gate_tolerates_small_regressions_and_flags_big_ones() {
        let base = sample();
        let mut ok = sample();
        ok.metrics[1].value = 12.5 * 1.2; // +20% virtual time: inside tolerance
        ok.metrics[0].value = 3.25 / 1.2;
        assert!(ok.regressions(&base).is_empty(), "{:?}", ok.regressions(&base));
        let mut slow = sample();
        slow.metrics[1].value = 12.5 * 1.3; // +30%: fails
        assert_eq!(slow.regressions(&base).len(), 1);
        let mut slower_ratio = sample();
        slower_ratio.metrics[0].value = 3.25 / 1.4; // speedup collapsed: fails
        assert_eq!(slower_ratio.regressions(&base).len(), 1);
        // floor applies even without a matching baseline entry
        let mut floored = JsonReport::new("perf-smoke");
        floored.push(Metric::gated("batch.speedup", 1.2, "x", true).with_floor(1.5));
        assert_eq!(floored.regressions(&JsonReport::new("empty")).len(), 1);
        // ungated wall metrics never fail the gate
        let mut wall = sample();
        wall.metrics[2].value = 100.0;
        assert!(wall.regressions(&base).is_empty());
        // a gated baseline metric that vanished from the fresh run fails
        let mut dropped = sample();
        dropped.metrics.remove(1);
        assert_eq!(dropped.regressions(&base).len(), 1);
        // a floored (even if ungated) baseline metric that vanished fails too
        let mut base_floored = sample();
        base_floored.metrics[0].gate = false;
        let mut dropped_floor = base_floored.clone();
        dropped_floor.metrics.remove(0);
        assert_eq!(dropped_floor.regressions(&base_floored).len(), 1);
        // but dropping an ungated, unfloored metric is fine
        let mut dropped_info = sample();
        dropped_info.metrics.remove(2);
        assert!(dropped_info.regressions(&base).is_empty());
        // downgrading a gated/floored metric to informational in code
        // does not disarm the baseline's gate or floor
        let mut downgraded = sample();
        downgraded.metrics[0].gate = false;
        downgraded.metrics[0].floor = None;
        downgraded.metrics[0].value = 1.2; // below the baseline's 1.5 floor
        downgraded.metrics[1].gate = false;
        downgraded.metrics[1].value = 12.5 * 1.3; // >25% virtual regression
                                                  // metric 0 fails its floor AND the baseline's relative gate;
                                                  // metric 1 fails the baseline's relative gate: three failures.
        assert_eq!(downgraded.regressions(&base).len(), 3);
    }

    #[test]
    fn gate_refuses_cross_scale_comparison() {
        let base = sample();
        let mut other_scale = sample();
        other_scale.scales[0].1 = 480000.0; // paper scale vs smoke baseline
        let failures = other_scale.regressions(&base);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("scale mismatch"));
        let mut missing_scale = sample();
        missing_scale.scales.clear();
        assert_eq!(missing_scale.regressions(&base).len(), 2);
    }

    #[test]
    fn json_sink_collects_only_when_active() {
        json_metric(Metric::info("dropped", 1.0, "x", true));
        assert!(json_take().is_none());
        json_begin(JsonReport::new("s"));
        json_metric(Metric::info("kept", 1.0, "x", true));
        let got = json_take().unwrap();
        assert_eq!(got.metrics.len(), 1);
        assert_eq!(got.metrics[0].id, "kept");
    }

    #[test]
    fn sel_tags_are_stable_and_id_safe() {
        assert_eq!(sel_tag(0.0), "sel0");
        assert_eq!(sel_tag(0.00001), "sel0p001");
        assert_eq!(sel_tag(0.001), "sel0p1");
        assert_eq!(sel_tag(0.05), "sel5");
        assert_eq!(sel_tag(0.1), "sel10");
        assert_eq!(sel_tag(0.75), "sel75");
        assert_eq!(sel_tag(1.0), "sel100");
    }

    #[test]
    fn report_accumulates_and_formats() {
        let mut r = Report::new("test", "demo", &["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        assert_eq!(Report::secs(0.12345), "0.1235");
        assert_eq!(Report::secs(12.345), "12.35");
        assert_eq!(Report::secs(1234.5), "1234");
        assert_eq!(Report::factor(399.6), "400");
        r.print(); // must not panic
    }
}
