//! Aligned-table printing and CSV emission for experiment results.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// One experiment's tabular output.
pub struct Report {
    id: String,
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Start a report for experiment `id`.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row (stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Format seconds with adaptive precision.
    pub fn secs(v: f64) -> String {
        if v >= 100.0 {
            format!("{v:.0}")
        } else if v >= 1.0 {
            format!("{v:.2}")
        } else {
            format!("{v:.4}")
        }
    }

    /// Format a ratio/factor.
    pub fn factor(v: f64) -> String {
        if v >= 100.0 {
            format!("{v:.0}")
        } else {
            format!("{v:.2}")
        }
    }

    /// Print as an aligned table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        println!("\n== {} — {} ==", self.id, self.title);
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            println!("  {}", parts.join("  "));
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }

    /// Write `results/<id>.csv` relative to the workspace root (or CWD).
    pub fn save_csv(&self) -> std::io::Result<PathBuf> {
        let dir = workspace_results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }

    /// Print and save; panics only on I/O failure writing results.
    pub fn finish(&self) {
        self.print();
        match self.save_csv() {
            Ok(path) => println!("  [written {}]", path.display()),
            Err(e) => eprintln!("  [csv write failed: {e}]"),
        }
    }
}

/// `results/` under the workspace root when detectable, else under CWD.
fn workspace_results_dir() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    // Walk up while a Cargo.toml with [workspace] is visible above.
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(body) = fs::read_to_string(&manifest) {
                if body.contains("[workspace]") {
                    return dir.join("results");
                }
            }
        }
        if !dir.pop() {
            return PathBuf::from("results");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_and_formats() {
        let mut r = Report::new("test", "demo", &["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        assert_eq!(Report::secs(0.12345), "0.1235");
        assert_eq!(Report::secs(12.345), "12.35");
        assert_eq!(Report::secs(1234.5), "1234");
        assert_eq!(Report::factor(399.6), "400");
        r.print(); // must not panic
    }
}
