//! Shared experiment setup: databases at the DESIGN.md scales.

use smooth_planner::Database;
use smooth_storage::{CpuCosts, DeviceProfile, StorageConfig};
use smooth_workload::tpch::{self, Scale};
use smooth_workload::{micro, skew};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Micro-benchmark rows (override: `MICRO_ROWS`).
pub fn micro_rows() -> u64 {
    env_u64("MICRO_ROWS", micro::DEFAULT_ROWS)
}

/// Skew-table rows (override: `SKEW_ROWS`).
pub fn skew_rows() -> u64 {
    env_u64("SKEW_ROWS", skew::DEFAULT_ROWS)
}

/// TPC-H scale factor (override: `TPCH_SF`).
pub fn tpch_sf() -> f64 {
    env_f64("TPCH_SF", 0.02)
}

/// Storage config for a table of `pages` pages: the pool holds 1/16 of the
/// heap (cold-run regime, DESIGN.md §6).
pub fn storage_config(device: DeviceProfile, pages: u64) -> StorageConfig {
    StorageConfig {
        device,
        cpu: CpuCosts::default(),
        pool_pages: ((pages / 16) as usize).clamp(64, 8192),
    }
}

/// A database holding the micro table, indexed on `c2`.
pub fn micro_db(device: DeviceProfile) -> Database {
    let rows = micro_rows();
    let pages = rows / 90; // ≈ 90 tuples/page
    let mut db = Database::new(storage_config(device, pages));
    micro::install(&mut db, rows, 0xC2).expect("micro install");
    db
}

/// A database holding the skewed table, indexed on `c2`.
pub fn skew_db(device: DeviceProfile) -> Database {
    let rows = skew_rows();
    let pages = rows / 90;
    let mut db = Database::new(storage_config(device, pages));
    skew::install(&mut db, rows, 0x5E).expect("skew install");
    db
}

/// The Fig. 1 pair: `(original, tuned)` TPC-H databases. `original` has
/// only PK indexes; `tuned` adds the advisor's secondary indexes.
pub fn tpch_pair(device: DeviceProfile) -> (Database, Database) {
    let scale = Scale { sf: tpch_sf(), seed: 2015 };
    let lineitem_pages = (scale.orders() * 4) / 70;
    let cfg = storage_config(device, lineitem_pages);
    let mut original = Database::new(cfg);
    tpch::install(&mut original, scale).expect("tpch install");
    let mut tuned = Database::new(cfg);
    tpch::install(&mut tuned, scale).expect("tpch install");
    tpch::gen::create_tuning_indexes(&mut tuned).expect("tuning indexes");
    (original, tuned)
}

/// The tuned TPC-H database alone (Fig. 4 / Table II run on the indexed
/// configuration, mirroring the paper: "we create the set of indices
/// proposed by the commercial system").
pub fn tpch_tuned(device: DeviceProfile) -> Database {
    tpch_pair(device).1
}
