//! Wall-clock benchmark of the four access paths across selectivities
//! (the Criterion companion to the fig5 virtual-time experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smooth_core::SmoothScanConfig;
use smooth_planner::{AccessPathChoice, Database};
use smooth_storage::StorageConfig;
use smooth_workload::micro;

fn db() -> Database {
    let mut db = Database::new(StorageConfig::default());
    micro::install(&mut db, 20_000, 1).expect("install");
    db
}

fn bench(c: &mut Criterion) {
    let db = db();
    let mut group = c.benchmark_group("access_paths");
    group.sample_size(10);
    for sel in [0.001f64, 0.05, 0.5] {
        for (name, access) in [
            ("full", AccessPathChoice::ForceFull),
            ("index", AccessPathChoice::ForceIndex),
            ("sort", AccessPathChoice::ForceSort),
            ("smooth", AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic())),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("sel_{sel}")),
                &sel,
                |b, &sel| {
                    let plan = micro::query(sel, false, access.clone());
                    b.iter(|| db.run(&plan).expect("query").rows.len());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
