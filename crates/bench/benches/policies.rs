//! Policy ablation: Greedy vs Selectivity-Increase vs Elastic at the two
//! regimes where they differ (sparse uniform, skewed head).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smooth_core::{PolicyKind, SmoothScanConfig};
use smooth_planner::{AccessPathChoice, Database};
use smooth_storage::StorageConfig;
use smooth_workload::{micro, skew};

fn bench(c: &mut Criterion) {
    let mut uniform = Database::new(StorageConfig::default());
    micro::install(&mut uniform, 20_000, 2).expect("install");
    let mut skewed = Database::new(StorageConfig::default());
    skew::install(&mut skewed, 20_000, 2).expect("install");

    let mut group = c.benchmark_group("policies");
    group.sample_size(10);
    for policy in [PolicyKind::Greedy, PolicyKind::SelectivityIncrease, PolicyKind::Elastic] {
        let access =
            AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic().with_policy(policy));
        group.bench_with_input(
            BenchmarkId::new("uniform_low_sel", format!("{policy:?}")),
            &access,
            |b, access| {
                let plan = micro::query(0.001, false, access.clone());
                b.iter(|| uniform.run(&plan).expect("query").rows.len());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("skewed_head", format!("{policy:?}")),
            &access,
            |b, access| {
                let plan = skew::query(access.clone());
                b.iter(|| skewed.run(&plan).expect("query").rows.len());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
