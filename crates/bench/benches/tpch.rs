//! Wall-clock benchmark of the Fig. 4 TPC-H queries: PostgreSQL's plan vs
//! the Smooth Scan plan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smooth_core::SmoothScanConfig;
use smooth_planner::{AccessPathChoice, Database};
use smooth_storage::StorageConfig;
use smooth_workload::tpch::{self, queries::Fig4Query, Scale};

fn bench(c: &mut Criterion) {
    let mut db = Database::new(StorageConfig::default());
    tpch::install(&mut db, Scale { sf: 0.005, seed: 2015 }).expect("install");
    tpch::gen::create_tuning_indexes(&mut db).expect("indexes");
    let mut group = c.benchmark_group("tpch_fig4");
    group.sample_size(10);
    for q in [Fig4Query::Q1, Fig4Query::Q6, Fig4Query::Q14] {
        group.bench_with_input(BenchmarkId::new("psql", q.label()), &q, |b, q| {
            let plan = q.plan(q.psql_access());
            b.iter(|| db.run(&plan).expect("query").rows.len());
        });
        group.bench_with_input(BenchmarkId::new("smooth", q.label()), &q, |b, q| {
            let plan = q.plan(AccessPathChoice::Smooth(SmoothScanConfig::eager_elastic()));
            b.iter(|| db.run(&plan).expect("query").rows.len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
