//! Ablation of the maximum morphing-region size (the paper settles on
//! 2 K pages = 16 MB after a sensitivity analysis, Section VI-D).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smooth_core::SmoothScanConfig;
use smooth_planner::{AccessPathChoice, Database};
use smooth_storage::StorageConfig;
use smooth_workload::micro;

fn bench(c: &mut Criterion) {
    let mut db = Database::new(StorageConfig::default());
    micro::install(&mut db, 20_000, 3).expect("install");
    let mut group = c.benchmark_group("region_cap");
    group.sample_size(10);
    for cap in [1u32, 8, 128, 2048] {
        let mut config = SmoothScanConfig::eager_elastic();
        config.max_region_pages = cap;
        group.bench_with_input(BenchmarkId::new("sel_50pct", cap), &config, |b, config| {
            let plan = micro::query(0.5, false, AccessPathChoice::Smooth(*config));
            b.iter(|| db.run(&plan).expect("query").rows.len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
