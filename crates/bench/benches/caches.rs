//! Auxiliary-structure benchmarks: Result-Cache partition counts for the
//! ordered Smooth Scan, and raw bitmap-cache operation costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smooth_core::{PageIdCache, SmoothScanConfig, TupleIdCache};
use smooth_planner::{AccessPathChoice, Database};
use smooth_storage::StorageConfig;
use smooth_types::{PageId, Tid};
use smooth_workload::micro;

fn bench_partitions(c: &mut Criterion) {
    let mut db = Database::new(StorageConfig::default());
    micro::install(&mut db, 20_000, 4).expect("install");
    let mut group = c.benchmark_group("result_cache_partitions");
    group.sample_size(10);
    for parts in [1usize, 4, 16, 64] {
        let mut config = SmoothScanConfig::eager_elastic().with_order(true);
        config.result_cache_partitions = parts;
        group.bench_with_input(
            BenchmarkId::new("ordered_sel_5pct", parts),
            &config,
            |b, config| {
                let plan = micro::query(0.05, true, AccessPathChoice::Smooth(*config));
                b.iter(|| db.run(&plan).expect("query").rows.len());
            },
        );
    }
    group.finish();
}

fn bench_bitmaps(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmap_caches");
    group.bench_function("page_id_cache_insert_contains", |b| {
        let mut cache = PageIdCache::new(1_000_000);
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 7919) % 1_000_000;
            cache.insert(PageId(i));
            cache.contains(PageId(i))
        });
    });
    group.bench_function("tuple_id_cache_insert_contains", |b| {
        let mut cache = TupleIdCache::new(10_000, 128);
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            let tid = Tid::new(i, (i % 128) as u16);
            cache.insert(tid);
            cache.contains(tid)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_partitions, bench_bitmaps);
criterion_main!(benches);
