//! Volcano-style query executor with the traditional access paths.
//!
//! Implements the PostgreSQL operator repertoire the paper measures against
//! (Section II and VI):
//!
//! * **Full Table Scan** — sequential page runs with readahead;
//! * **Index Scan** — B+-tree range cursor driving random heap fetches,
//!   preserving key order;
//! * **Sort Scan** (a.k.a. Bitmap Heap Scan) — drain the index, sort TIDs in
//!   page order, fetch nearly sequentially; blocking, order-destroying;
//! * Filter / Project / Sort;
//! * Nested-Loop, Index-Nested-Loop, Hash and Merge joins;
//! * hash and scalar aggregation.
//!
//! Every operator charges CPU per tuple touched and performs all I/O
//! through [`smooth_storage::Storage`], so the virtual clock and I/O
//! counters measure real executed access patterns. The Smooth Scan operator
//! itself lives in `smooth-core` and plugs into the same [`Operator`]
//! protocol.
//!
//! Operators speak two interchangeable protocols: the classic Volcano
//! `next()` and the vectorized `next_batch()` ([`smooth_types::RowBatch`]
//! per call). The batched scans additionally push predicate evaluation
//! down onto the encoded tuples via [`ScanFilter`], skipping the full
//! decode of non-qualifying rows. [`collect_rows`] drives plans through
//! the batch protocol; [`collect_rows_volcano`] is the row-at-a-time
//! reference driver.

pub mod agg;
pub mod expr;
pub mod filter;
pub mod join;
pub mod operator;
pub mod scan;
pub mod sort;

pub use agg::{AggFunc, HashAggregate};
pub use expr::{Predicate, ScanFilter};
pub use filter::{Filter, Project};
pub use join::{HashJoin, IndexNestedLoopJoin, JoinType, MergeJoin, NestedLoopJoin};
pub use operator::{batch_size, collect_rows, collect_rows_volcano, BoxedOperator, Operator};
pub use scan::{FullTableScan, IndexScan, SortScan};
pub use sort::Sort;
