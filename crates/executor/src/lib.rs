//! Volcano-style query executor with the traditional access paths.
//!
//! Implements the PostgreSQL operator repertoire the paper measures against
//! (Section II and VI):
//!
//! * **Full Table Scan** — sequential page runs with readahead;
//! * **Index Scan** — B+-tree range cursor driving random heap fetches,
//!   preserving key order;
//! * **Sort Scan** (a.k.a. Bitmap Heap Scan) — drain the index, sort TIDs in
//!   page order, fetch nearly sequentially; blocking, order-destroying;
//! * Filter / Project / Sort;
//! * Nested-Loop, Index-Nested-Loop, Hash and Merge joins;
//! * hash and scalar aggregation.
//!
//! Every operator charges CPU per tuple touched and performs all I/O
//! through [`smooth_storage::Storage`], so the virtual clock and I/O
//! counters measure real executed access patterns. The Smooth Scan operator
//! itself lives in `smooth-core` and plugs into the same [`Operator`]
//! protocol.
//!
//! Operators speak three interchangeable protocols: the classic Volcano
//! `next()`, the row-major `next_batch()` ([`smooth_types::RowBatch`] per
//! call) and the columnar `next_columns()`
//! ([`smooth_types::ColumnBatch`]: typed column vectors plus a selection
//! vector). The vectorized scans push predicate evaluation down onto the
//! encoded tuples via [`ScanFilter`] — probing only predicate columns
//! into reused typed vectors, evaluating range/comparison predicates as
//! branch-light kernels, and decoding qualifiers straight into column
//! vectors with no per-row allocation. [`collect_batches`] drives plans
//! through the columnar protocol end to end and keeps the result
//! columnar; [`collect_rows`] is its row-materializing convenience, and
//! [`collect_rows_batch`] and
//! [`collect_rows_volcano`] keep the row-batch and row-at-a-time
//! reference drivers — the Volcano driver is retained permanently as
//! the semantics oracle the property suites pin every other driver
//! against, not as a performance baseline.
//!
//! The [`parallel`] module adds morsel-driven parallel pipeline
//! execution (HyPer-style worker pool over [`smooth_types::ColumnBatch`]
//! morsels) that is byte-identical to [`collect_rows`] and charges the
//! exact same virtual clock totals.
//!
//! The [`spill`] module owns larger-than-memory execution's accounting:
//! the per-operator memory budget (`SMOOTH_MEM_BYTES`) and the one
//! charged overflow-file I/O formula behind the grace hash join's
//! partition spills ([`JoinBuildTable`]), the external merge sort
//! ([`extsort`]) and the Smooth Scan Result Cache in `smooth-core`. See
//! `docs/larger_than_memory.md`.

pub mod agg;
pub mod expr;
pub mod extsort;
pub mod filter;
pub mod join;
pub mod operator;
pub mod parallel;
pub mod scan;
pub mod schedule;
pub mod sort;
pub mod spill;

pub use agg::{AggFunc, HashAggregate};
pub use expr::{Predicate, ScanFilter};
pub use extsort::ExternalSorter;
pub use filter::{Filter, Project};
pub use join::{
    BuildRef, HashJoin, IndexNestedLoopJoin, JoinBuildPartial, JoinBuildTable, JoinType, MergeJoin,
    NestedLoopJoin, BUILD_PARTITIONS,
};
pub use operator::{
    batch_size, collect_batches, collect_rows, collect_rows_batch, collect_rows_volcano,
    BoxedOperator, Operator,
};
pub use parallel::{
    multi_query_makespan_ns, run_pipeline, run_pipeline_traced, BuildSpec, Morsel,
    ParallelPipeline, ParallelSource, ScalingLedger, SinkSpec, StageSpec,
};
pub use scan::{FullTableScan, IndexScan, SortScan};
pub use schedule::{
    default_claim_morsels, default_query_timeout_ms, QueryHandle, QueryOutput, Scheduler,
};
pub use sort::Sort;
pub use spill::{
    charge_spill_io, mem_budget_bytes, spill_io_ns, spill_partitions, spill_write, SpillFile,
};
