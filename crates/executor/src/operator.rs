//! The iterator protocol: row-at-a-time and batched.
//!
//! `open → next* → close`, the pipeline model whose preservation is one of
//! Smooth Scan's selling points over Sort Scan ("Smooth Scan adheres to the
//! pipelining model, which is important since the access path operators are
//! executed first and can stall the rest of the stack", Section VI-C).
//!
//! On top of the classic Volcano `next()` the trait offers two vectorized
//! protocols: [`Operator::next_batch`] (a row-major [`RowBatch`] of up to
//! `max` rows per virtual call) and [`Operator::next_columns`] (a
//! column-major [`ColumnBatch`] with typed vectors and a selection
//! vector). Defaults bridge each protocol down — `next_batch` loops
//! `next()`, `next_columns` converts a `next_batch` result — so every
//! operator keeps working unchanged; hot operators override them to
//! amortize dynamic dispatch, per-tuple `Result`/`Option` traffic and
//! virtual-clock charges across a whole page or batch, and (columnar) to
//! skip per-row `Vec<Value>` materialization entirely. All three
//! protocols may be interleaved freely on the same operator — they
//! consume the same underlying stream and together produce the exact row
//! sequence any one of them would alone.

use std::sync::OnceLock;

use smooth_types::{ColumnBatch, Result, Row, RowBatch, Schema, DEFAULT_BATCH_SIZE};

/// A physical operator producing rows.
pub trait Operator {
    /// Output schema.
    fn schema(&self) -> &Schema;

    /// Prepare for production. Must be called before `next`.
    fn open(&mut self) -> Result<()>;

    /// Produce the next row, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Row>>;

    /// Produce up to `max` rows in one call, or `None` when exhausted.
    ///
    /// Contract: a returned batch is non-empty and holds at most `max`
    /// rows; short batches do *not* signal exhaustion (operators emit at
    /// natural morsel boundaries such as a heap page run), only `None`
    /// does. The row sequence across calls is identical to what repeated
    /// `next()` calls would produce.
    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let max = max.max(1);
        let mut batch = RowBatch::with_capacity(max.min(DEFAULT_BATCH_SIZE));
        while batch.len() < max {
            match self.next()? {
                Some(row) => batch.push(row),
                None => break,
            }
        }
        Ok((!batch.is_empty()).then_some(batch))
    }

    /// Produce up to `max` rows as a columnar batch, or `None` when
    /// exhausted.
    ///
    /// Same contract as [`Operator::next_batch`] — non-empty, at most
    /// `max` live rows, short batches do not signal exhaustion, and the
    /// live-row sequence across calls is identical to what `next()` would
    /// produce. The three protocols may be interleaved freely on one
    /// operator.
    ///
    /// The default implementation bridges through `next_batch` (one
    /// row→column conversion), so every operator works unchanged; hot
    /// operators override it to decode straight into column vectors and
    /// to filter via selection vectors instead of moving rows.
    fn next_columns(&mut self, max: usize) -> Result<Option<ColumnBatch>> {
        let Some(batch) = self.next_batch(max)? else { return Ok(None) };
        Ok(Some(ColumnBatch::from_rows(self.schema(), batch.rows())?))
    }

    /// Release resources. Idempotent.
    fn close(&mut self) -> Result<()>;

    /// Short label for plan explanation.
    fn label(&self) -> String;
}

/// Owned operator trees. The `Send` bound is what lets the parallel
/// pipeline driver hand an operator (a shared morsel source, a hash-join
/// build input) to a worker pool; every operator in the workspace is a
/// plain owned data structure, so the bound costs nothing.
pub type BoxedOperator = Box<dyn Operator + Send>;

/// Rows per `next_batch` request used by the pipeline drivers: the
/// `SMOOTH_BATCH_ROWS` environment variable when set (minimum 1), else
/// [`DEFAULT_BATCH_SIZE`]. The variable is read **once per process** and
/// latched; changing it after the first query has run has no effect
/// (callers sweeping batch sizes should pass `max` to `next_batch`
/// directly instead).
pub fn batch_size() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| {
        std::env::var("SMOOTH_BATCH_ROWS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.max(1))
            .unwrap_or(DEFAULT_BATCH_SIZE)
    })
}

/// Run an operator to completion through the *columnar* protocol and
/// collect its output as rows. This is the row-materializing convenience
/// over [`collect_batches`]: morsels cross operator boundaries as
/// [`ColumnBatch`]es and rows materialize only here, at the sink.
pub fn collect_rows(op: &mut dyn Operator) -> Result<Vec<Row>> {
    Ok(collect_batches(op)?.into_iter().flat_map(ColumnBatch::into_rows).collect())
}

/// Run an operator to completion through the columnar protocol and keep
/// the output *columnar* — no `Row` ever materializes. This is the
/// late-materialization pipeline driver (`Database::run` and the
/// experiment harness consume these batches and convert to rows only at
/// the final user-facing boundary, if at all).
pub fn collect_batches(op: &mut dyn Operator) -> Result<Vec<ColumnBatch>> {
    op.open()?;
    let mut batches = Vec::new();
    let max = batch_size();
    while let Some(batch) = op.next_columns(max)? {
        batches.push(batch);
    }
    op.close()?;
    Ok(batches)
}

/// Run an operator to completion through the row-major batch protocol.
/// Kept as the row-batch baseline the `columnar` perf-smoke experiment
/// measures the columnar driver against.
pub fn collect_rows_batch(op: &mut dyn Operator) -> Result<Vec<Row>> {
    op.open()?;
    let mut rows = Vec::new();
    let max = batch_size();
    while let Some(batch) = op.next_batch(max)? {
        rows.extend(batch.into_rows());
    }
    op.close()?;
    Ok(rows)
}

/// Run an operator to completion through the row-at-a-time protocol.
/// Kept as the Volcano reference driver (and the baseline the `batch`
/// perf-smoke experiment measures the row-batch path against).
pub fn collect_rows_volcano(op: &mut dyn Operator) -> Result<Vec<Row>> {
    op.open()?;
    let mut rows = Vec::new();
    while let Some(row) = op.next()? {
        rows.push(row);
    }
    op.close()?;
    Ok(rows)
}

/// A fixed-row operator, useful for tests and as a join build side.
pub struct ValuesOp {
    schema: Schema,
    rows: Vec<Row>,
    pos: usize,
    opened: bool,
}

impl ValuesOp {
    /// Wrap a batch of rows with their schema.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        ValuesOp { schema, rows, pos: 0, opened: false }
    }
}

impl Operator for ValuesOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.pos = 0;
        self.opened = true;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        debug_assert!(self.opened, "next() before open()");
        if self.pos < self.rows.len() {
            let r = self.rows[self.pos].clone();
            self.pos += 1;
            Ok(Some(r))
        } else {
            Ok(None)
        }
    }

    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        debug_assert!(self.opened, "next_batch() before open()");
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let end = (self.pos + max.max(1)).min(self.rows.len());
        let batch = RowBatch::from_rows(self.rows[self.pos..end].to_vec());
        self.pos = end;
        Ok(Some(batch))
    }

    fn close(&mut self) -> Result<()> {
        self.opened = false;
        Ok(())
    }

    fn label(&self) -> String {
        format!("Values({} rows)", self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_types::{Column, DataType, Value};

    #[test]
    fn values_op_roundtrip() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int64)]).unwrap();
        let rows: Vec<Row> = (0..5).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let mut op = ValuesOp::new(schema, rows.clone());
        assert_eq!(collect_rows(&mut op).unwrap(), rows);
        // reopening restarts
        assert_eq!(collect_rows(&mut op).unwrap(), rows);
        assert!(op.label().contains("5 rows"));
    }

    #[test]
    fn volcano_and_batch_drivers_agree() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int64)]).unwrap();
        let rows: Vec<Row> = (0..17).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let mut op = ValuesOp::new(schema, rows.clone());
        assert_eq!(collect_rows_volcano(&mut op).unwrap(), rows);
        assert_eq!(collect_rows(&mut op).unwrap(), rows);
    }

    #[test]
    fn batches_respect_max_and_signal_exhaustion() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int64)]).unwrap();
        let rows: Vec<Row> = (0..7).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let mut op = ValuesOp::new(schema, rows.clone());
        op.open().unwrap();
        let mut seen = Vec::new();
        while let Some(b) = op.next_batch(3).unwrap() {
            assert!(!b.is_empty() && b.len() <= 3);
            seen.extend(b.into_rows());
        }
        assert_eq!(seen, rows);
        assert!(op.next_batch(3).unwrap().is_none());
        op.close().unwrap();
    }

    #[test]
    fn protocols_interleave_on_one_stream() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int64)]).unwrap();
        let rows: Vec<Row> = (0..10).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let mut op = ValuesOp::new(schema, rows.clone());
        op.open().unwrap();
        let mut seen = Vec::new();
        seen.push(op.next().unwrap().unwrap());
        seen.extend(op.next_batch(4).unwrap().unwrap().into_rows());
        seen.push(op.next().unwrap().unwrap());
        while let Some(b) = op.next_batch(4).unwrap() {
            seen.extend(b.into_rows());
        }
        assert_eq!(seen, rows);
        op.close().unwrap();
    }

    #[test]
    fn batch_size_knob_defaults() {
        assert!(batch_size() >= 1);
    }

    #[test]
    fn columnar_driver_and_default_bridge_agree() {
        let schema =
            Schema::new(vec![Column::new("x", DataType::Int64), Column::new("s", DataType::Text)])
                .unwrap();
        let rows: Vec<Row> =
            (0..23).map(|i| Row::new(vec![Value::Int(i), Value::str(format!("r{i}"))])).collect();
        let mut op = ValuesOp::new(schema, rows.clone());
        assert_eq!(collect_rows(&mut op).unwrap(), rows, "columnar driver");
        assert_eq!(collect_rows_batch(&mut op).unwrap(), rows, "row-batch driver");
        // all three protocols interleave on one stream
        op.open().unwrap();
        let mut seen = Vec::new();
        seen.push(op.next().unwrap().unwrap());
        seen.extend(op.next_columns(4).unwrap().unwrap().into_rows());
        seen.extend(op.next_batch(4).unwrap().unwrap().into_rows());
        while let Some(b) = op.next_columns(5).unwrap() {
            assert!(!b.is_empty() && b.len() <= 5);
            seen.extend(b.into_rows());
        }
        assert_eq!(seen, rows);
        assert!(op.next_columns(5).unwrap().is_none());
        op.close().unwrap();
    }
}
