//! The Volcano iterator protocol.
//!
//! `open → next* → close`, one row at a time — the pipeline model whose
//! preservation is one of Smooth Scan's selling points over Sort Scan
//! ("Smooth Scan adheres to the pipelining model, which is important since
//! the access path operators are executed first and can stall the rest of
//! the stack", Section VI-C).

use smooth_types::{Result, Row, Schema};

/// A physical operator producing rows.
pub trait Operator {
    /// Output schema.
    fn schema(&self) -> &Schema;

    /// Prepare for production. Must be called before `next`.
    fn open(&mut self) -> Result<()>;

    /// Produce the next row, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Row>>;

    /// Release resources. Idempotent.
    fn close(&mut self) -> Result<()>;

    /// Short label for plan explanation.
    fn label(&self) -> String;
}

/// Owned operator trees.
pub type BoxedOperator = Box<dyn Operator>;

/// Run an operator to completion and collect its output.
pub fn collect_rows(op: &mut dyn Operator) -> Result<Vec<Row>> {
    op.open()?;
    let mut rows = Vec::new();
    while let Some(r) = op.next()? {
        rows.push(r);
    }
    op.close()?;
    Ok(rows)
}

/// A fixed-row operator, useful for tests and as a join build side.
pub struct ValuesOp {
    schema: Schema,
    rows: Vec<Row>,
    pos: usize,
    opened: bool,
}

impl ValuesOp {
    /// Wrap a batch of rows with their schema.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        ValuesOp { schema, rows, pos: 0, opened: false }
    }
}

impl Operator for ValuesOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.pos = 0;
        self.opened = true;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        debug_assert!(self.opened, "next() before open()");
        if self.pos < self.rows.len() {
            let r = self.rows[self.pos].clone();
            self.pos += 1;
            Ok(Some(r))
        } else {
            Ok(None)
        }
    }

    fn close(&mut self) -> Result<()> {
        self.opened = false;
        Ok(())
    }

    fn label(&self) -> String {
        format!("Values({} rows)", self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_types::{Column, DataType, Value};

    #[test]
    fn values_op_roundtrip() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int64)]).unwrap();
        let rows: Vec<Row> = (0..5).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let mut op = ValuesOp::new(schema, rows.clone());
        assert_eq!(collect_rows(&mut op).unwrap(), rows);
        // reopening restarts
        assert_eq!(collect_rows(&mut op).unwrap(), rows);
        assert!(op.label().contains("5 rows"));
    }
}
