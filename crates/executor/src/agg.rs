//! Aggregation: hash-grouped and scalar.
//!
//! Covers the aggregate shapes of the TPC-H-style workload (Q1's grouped
//! sums/averages, Q6's scalar revenue sum, Q4's grouped counts).

use std::collections::HashMap;

use smooth_types::{Column, ColumnBatch, DataType, Result, Row, RowBatch, Schema, Value};

use crate::operator::{batch_size, BoxedOperator, Operator};

/// Supported aggregate functions over one child column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`.
    CountStar,
    /// `COUNT(col)` — non-null values.
    Count(usize),
    /// `SUM(col)` as a float.
    Sum(usize),
    /// `SUM(a * b)` as a float (TPC-H revenue expressions like
    /// `l_extendedprice * l_discount`).
    SumProduct(usize, usize),
    /// `AVG(col)`.
    Avg(usize),
    /// `MIN(col)`.
    Min(usize),
    /// `MAX(col)`.
    Max(usize),
}

impl AggFunc {
    /// Whether per-worker partial accumulation followed by a merge is
    /// *exactly* equal to a single sequential fold over the input.
    ///
    /// Counts and MIN/MAX are order-independent. Sums (and averages)
    /// accumulate in `f64`, where addition only reorders exactly when
    /// every addend is integer-valued — so sums over integer-typed
    /// columns merge exactly (up to 2^53, far past the workloads here)
    /// while sums over `Float64` columns must instead fold in input
    /// order to stay byte-identical to the single-threaded driver.
    pub fn merge_exact(&self, child: &Schema) -> bool {
        let int_typed = |c: usize| {
            matches!(child.column(c).ty, DataType::Int32 | DataType::Int64 | DataType::Date)
        };
        match self {
            AggFunc::CountStar | AggFunc::Count(_) | AggFunc::Min(_) | AggFunc::Max(_) => true,
            AggFunc::Sum(c) | AggFunc::Avg(c) => int_typed(*c),
            AggFunc::SumProduct(a, b) => int_typed(*a) && int_typed(*b),
        }
    }

    fn output_column(&self, child: &Schema, ordinal: usize) -> Column {
        let name = |f: &str, c: usize| format!("{f}_{}", child.column(c).name);
        match self {
            AggFunc::CountStar => Column::new(format!("count_{ordinal}"), DataType::Int64),
            AggFunc::Count(c) => Column::new(name("count", *c), DataType::Int64),
            AggFunc::Sum(c) => Column::new(name("sum", *c), DataType::Float64),
            AggFunc::SumProduct(a, b) => Column::new(
                format!("sum_{}_x_{}", child.column(*a).name, child.column(*b).name),
                DataType::Float64,
            ),
            AggFunc::Avg(c) => Column::new(name("avg", *c), DataType::Float64),
            AggFunc::Min(c) => Column::nullable(name("min", *c), child.column(*c).ty),
            AggFunc::Max(c) => Column::nullable(name("max", *c), child.column(*c).ty),
        }
    }
}

/// Accumulator state per aggregate per group. `pub(crate)` so the
/// parallel driver's partial aggregates reuse the exact accumulator
/// semantics of the serial operator.
#[derive(Debug, Clone)]
pub(crate) enum Acc {
    Count(u64),
    Sum(f64),
    Avg { sum: f64, n: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

/// `Float64` view of a value, widening integers — the row-side twin of
/// [`smooth_types::ColumnVector::float`].
fn value_as_float(v: &Value) -> Result<f64> {
    match v {
        Value::Float(x) => Ok(*x),
        Value::Int(x) => Ok(*x as f64),
        Value::Null => Err(smooth_types::Error::exec("expected float, got NULL")),
        Value::Str(_) => Err(smooth_types::Error::exec("expected float column")),
    }
}

impl Acc {
    pub(crate) fn new(f: &AggFunc) -> Acc {
        match f {
            AggFunc::CountStar | AggFunc::Count(_) => Acc::Count(0),
            AggFunc::Sum(_) | AggFunc::SumProduct(..) => Acc::Sum(0.0),
            AggFunc::Avg(_) => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min(_) => Acc::Min(None),
            AggFunc::Max(_) => Acc::Max(None),
        }
    }

    /// Read the physical row `phys` straight off the typed column
    /// vectors — no `Row` and no `Value` materialize unless a MIN/MAX
    /// extremum actually improves.
    pub(crate) fn update_columns(
        &mut self,
        f: &AggFunc,
        batch: &ColumnBatch,
        phys: usize,
    ) -> Result<()> {
        match (self, f) {
            (Acc::Count(n), AggFunc::CountStar) => *n += 1,
            (Acc::Count(n), AggFunc::Count(c)) => {
                if !batch.column(*c).is_null(phys) {
                    *n += 1;
                }
            }
            (Acc::Sum(s), AggFunc::Sum(c)) => {
                if !batch.column(*c).is_null(phys) {
                    *s += batch.column(*c).float(phys)?;
                }
            }
            (Acc::Sum(s), AggFunc::SumProduct(a, b)) => {
                if !batch.column(*a).is_null(phys) && !batch.column(*b).is_null(phys) {
                    *s += batch.column(*a).float(phys)? * batch.column(*b).float(phys)?;
                }
            }
            (Acc::Avg { sum, n }, AggFunc::Avg(c)) => {
                if !batch.column(*c).is_null(phys) {
                    *sum += batch.column(*c).float(phys)?;
                    *n += 1;
                }
            }
            (Acc::Min(m), AggFunc::Min(c)) => {
                let col = batch.column(*c);
                if !col.is_null(phys)
                    && m.as_ref().is_none_or(|cur| col.cmp_value(phys, cur).is_lt())
                {
                    *m = Some(col.value(phys));
                }
            }
            (Acc::Max(m), AggFunc::Max(c)) => {
                let col = batch.column(*c);
                if !col.is_null(phys)
                    && m.as_ref().is_none_or(|cur| col.cmp_value(phys, cur).is_gt())
                {
                    *m = Some(col.value(phys));
                }
            }
            _ => unreachable!("accumulator/function mismatch"),
        }
        Ok(())
    }

    /// Fold one materialized row in — the value-slice twin of
    /// [`Acc::update_columns`], for morsels that already carry rows
    /// (e.g. downstream of a parallel hash-join probe). Semantics match
    /// exactly: NULL inputs are skipped, integers widen for sums.
    pub(crate) fn update_values(&mut self, f: &AggFunc, values: &[Value]) -> Result<()> {
        match (self, f) {
            (Acc::Count(n), AggFunc::CountStar) => *n += 1,
            (Acc::Count(n), AggFunc::Count(c)) => {
                if !values[*c].is_null() {
                    *n += 1;
                }
            }
            (Acc::Sum(s), AggFunc::Sum(c)) => {
                if !values[*c].is_null() {
                    *s += value_as_float(&values[*c])?;
                }
            }
            (Acc::Sum(s), AggFunc::SumProduct(a, b)) => {
                if !values[*a].is_null() && !values[*b].is_null() {
                    *s += value_as_float(&values[*a])? * value_as_float(&values[*b])?;
                }
            }
            (Acc::Avg { sum, n }, AggFunc::Avg(c)) => {
                if !values[*c].is_null() {
                    *sum += value_as_float(&values[*c])?;
                    *n += 1;
                }
            }
            (Acc::Min(m), AggFunc::Min(c)) => {
                let v = &values[*c];
                if !v.is_null() && m.as_ref().is_none_or(|cur| v.total_cmp(cur).is_lt()) {
                    *m = Some(v.clone());
                }
            }
            (Acc::Max(m), AggFunc::Max(c)) => {
                let v = &values[*c];
                if !v.is_null() && m.as_ref().is_none_or(|cur| v.total_cmp(cur).is_gt()) {
                    *m = Some(v.clone());
                }
            }
            _ => unreachable!("accumulator/function mismatch"),
        }
        Ok(())
    }

    /// Combine a partial accumulator in. Exact for counts and MIN/MAX;
    /// for sums it is exact precisely when [`AggFunc::merge_exact`]
    /// holds, which is the precondition for the parallel driver using
    /// per-worker partials at all.
    pub(crate) fn merge(&mut self, other: Acc) {
        match (self, other) {
            (Acc::Count(n), Acc::Count(m)) => *n += m,
            (Acc::Sum(s), Acc::Sum(t)) => *s += t,
            (Acc::Avg { sum, n }, Acc::Avg { sum: s2, n: n2 }) => {
                *sum += s2;
                *n += n2;
            }
            (Acc::Min(m), Acc::Min(o)) => {
                if let Some(v) = o {
                    if m.as_ref().is_none_or(|cur| v.total_cmp(cur).is_lt()) {
                        *m = Some(v);
                    }
                }
            }
            (Acc::Max(m), Acc::Max(o)) => {
                if let Some(v) = o {
                    if m.as_ref().is_none_or(|cur| v.total_cmp(cur).is_gt()) {
                        *m = Some(v);
                    }
                }
            }
            _ => unreachable!("merging mismatched accumulators"),
        }
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(n as i64),
            Acc::Sum(s) => Value::Float(s),
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// The output schema of an aggregation over `child`: the group columns
/// followed by one column per aggregate. Shared by [`HashAggregate::new`]
/// and the planner's parallel-pipeline decomposition so both validate
/// (and fail) identically.
pub fn output_schema(child: &Schema, group_cols: &[usize], aggs: &[AggFunc]) -> Result<Schema> {
    let mut cols = Vec::with_capacity(group_cols.len() + aggs.len());
    for &g in group_cols {
        if g >= child.len() {
            return Err(smooth_types::Error::schema(format!("group column {g} out of range")));
        }
        cols.push(child.column(g).clone());
    }
    for (i, a) in aggs.iter().enumerate() {
        cols.push(a.output_column(child, i));
    }
    Schema::new(cols)
}

/// Hash aggregation over optional group-by columns. With no group columns
/// it degenerates to a scalar aggregate producing exactly one row.
pub struct HashAggregate {
    child: BoxedOperator,
    group_cols: Vec<usize>,
    aggs: Vec<AggFunc>,
    storage: smooth_storage::Storage,
    schema: Schema,
    output: Option<std::vec::IntoIter<Row>>,
}

impl HashAggregate {
    /// Group child rows by `group_cols` and compute `aggs` per group.
    pub fn new(
        child: BoxedOperator,
        group_cols: Vec<usize>,
        aggs: Vec<AggFunc>,
        storage: smooth_storage::Storage,
    ) -> Result<Self> {
        let schema = output_schema(child.schema(), &group_cols, &aggs)?;
        Ok(HashAggregate { child, group_cols, aggs, storage, schema, output: None })
    }
}

impl Operator for HashAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.child.open()?;
        let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
        // Stable output: remember first-seen order of groups.
        let mut order: Vec<Vec<Value>> = Vec::new();
        let cpu = *self.storage.cpu();
        // Drain the input through the columnar protocol: one virtual call
        // and one clock charge per batch rather than per tuple, group keys
        // and aggregate inputs read vector-at-a-time off the typed column
        // vectors (no row ever materializes on the way in).
        while let Some(batch) = self.child.next_columns(batch_size())? {
            self.storage.clock().charge_cpu(
                (cpu.hash_op_ns + cpu.agg_update_ns * self.aggs.len() as u64) * batch.len() as u64,
            );
            for phys in batch.live_rows() {
                let key: Vec<Value> =
                    self.group_cols.iter().map(|&c| batch.column(c).value(phys)).collect();
                let accs = groups.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    self.aggs.iter().map(Acc::new).collect()
                });
                for (acc, f) in accs.iter_mut().zip(&self.aggs) {
                    acc.update_columns(f, &batch, phys)?;
                }
            }
        }
        self.child.close()?;
        if self.group_cols.is_empty() && groups.is_empty() {
            // Scalar aggregate over the empty input still yields one row.
            groups.insert(Vec::new(), self.aggs.iter().map(Acc::new).collect());
            order.push(Vec::new());
        }
        let mut rows = Vec::with_capacity(order.len());
        for key in order {
            let accs = groups.remove(&key).expect("group recorded");
            let mut values = key;
            values.extend(accs.into_iter().map(Acc::finish));
            rows.push(Row::new(values));
        }
        self.output = Some(rows.into_iter());
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        Ok(self.output.as_mut().and_then(|it| it.next()))
    }

    /// Emit the aggregated groups in chunks of `max`.
    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let Some(it) = self.output.as_mut() else { return Ok(None) };
        let rows: Vec<Row> = it.take(max.max(1)).collect();
        Ok((!rows.is_empty()).then(|| RowBatch::from_rows(rows)))
    }

    fn close(&mut self) -> Result<()> {
        self.output = None;
        Ok(())
    }

    fn label(&self) -> String {
        format!("HashAggregate(groups={:?}) → {}", self.group_cols, self.child.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{collect_rows, ValuesOp};

    fn input(rows: Vec<(i64, i64)>) -> BoxedOperator {
        let schema =
            Schema::new(vec![Column::new("g", DataType::Int64), Column::new("v", DataType::Int64)])
                .unwrap();
        Box::new(ValuesOp::new(
            schema,
            rows.into_iter().map(|(g, v)| Row::new(vec![Value::Int(g), Value::Int(v)])).collect(),
        ))
    }

    fn storage() -> smooth_storage::Storage {
        smooth_storage::Storage::default_hdd()
    }

    #[test]
    fn grouped_aggregates() {
        let mut agg = HashAggregate::new(
            input(vec![(1, 10), (2, 5), (1, 20), (2, 7), (1, 30)]),
            vec![0],
            vec![
                AggFunc::CountStar,
                AggFunc::Sum(1),
                AggFunc::Avg(1),
                AggFunc::Min(1),
                AggFunc::Max(1),
            ],
            storage(),
        )
        .unwrap();
        let rows = collect_rows(&mut agg).unwrap();
        assert_eq!(rows.len(), 2);
        let g1 = rows.iter().find(|r| r.int(0).unwrap() == 1).unwrap();
        assert_eq!(g1.int(1).unwrap(), 3);
        assert_eq!(g1.float(2).unwrap(), 60.0);
        assert_eq!(g1.float(3).unwrap(), 20.0);
        assert_eq!(g1.int(4).unwrap(), 10);
        assert_eq!(g1.int(5).unwrap(), 30);
        // first-seen group order is preserved
        assert_eq!(rows[0].int(0).unwrap(), 1);
        assert_eq!(rows[1].int(0).unwrap(), 2);
    }

    #[test]
    fn scalar_aggregate_on_empty_input_yields_one_row() {
        let mut agg = HashAggregate::new(
            input(vec![]),
            vec![],
            vec![AggFunc::CountStar, AggFunc::Sum(1), AggFunc::Avg(1), AggFunc::Min(1)],
            storage(),
        )
        .unwrap();
        let rows = collect_rows(&mut agg).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].int(0).unwrap(), 0);
        assert_eq!(rows[0].float(1).unwrap(), 0.0);
        assert!(rows[0].get(2).is_null());
        assert!(rows[0].get(3).is_null());
    }

    #[test]
    fn grouped_aggregate_on_empty_input_yields_no_rows() {
        let mut agg =
            HashAggregate::new(input(vec![]), vec![0], vec![AggFunc::CountStar], storage())
                .unwrap();
        assert!(collect_rows(&mut agg).unwrap().is_empty());
    }

    #[test]
    fn count_skips_nulls() {
        let schema = Schema::new(vec![Column::nullable("v", DataType::Int64)]).unwrap();
        let rows = vec![
            Row::new(vec![Value::Int(1)]),
            Row::new(vec![Value::Null]),
            Row::new(vec![Value::Int(3)]),
        ];
        let child = Box::new(ValuesOp::new(schema, rows));
        let mut agg = HashAggregate::new(
            child,
            vec![],
            vec![AggFunc::CountStar, AggFunc::Count(0), AggFunc::Sum(0)],
            storage(),
        )
        .unwrap();
        let out = collect_rows(&mut agg).unwrap();
        assert_eq!(out[0].int(0).unwrap(), 3);
        assert_eq!(out[0].int(1).unwrap(), 2);
        assert_eq!(out[0].float(2).unwrap(), 4.0);
    }

    #[test]
    fn rejects_out_of_range_group_column() {
        assert!(HashAggregate::new(input(vec![]), vec![9], vec![], storage()).is_err());
    }

    #[test]
    fn output_schema_names_and_types() {
        let agg = HashAggregate::new(
            input(vec![]),
            vec![0],
            vec![AggFunc::Sum(1), AggFunc::CountStar],
            storage(),
        )
        .unwrap();
        let s = agg.schema();
        assert_eq!(s.column(0).name, "g");
        assert_eq!(s.column(1).name, "sum_v");
        assert_eq!(s.column(1).ty, DataType::Float64);
        assert_eq!(s.column(2).ty, DataType::Int64);
    }
}
