//! Predicates evaluated over rows.
//!
//! A small, concrete predicate language — range and equality tests
//! composable with AND/OR/NOT — rather than a general expression tree:
//! every query in the paper (micro-benchmark Q1, the skew query, and the
//! TPC-H-style workload) is a conjunction of column ranges and string
//! equalities. NULL comparisons evaluate to false, the practical
//! two-valued simplification of SQL's three-valued logic for filters.

use std::ops::Bound;

use smooth_types::columns::decode_columns_append;
use smooth_types::{ColumnBatch, ColumnValues, ColumnVector, Result, Row, Schema, Value};

/// The rows a vectorized kernel evaluates: every physical row of the
/// batch (dense, no index indirection — the auto-vectorizable shape) or
/// an explicit list of physical indices (a selection vector).
#[derive(Clone, Copy)]
enum RowSet<'a> {
    /// Rows `0..n`.
    Dense(usize),
    /// The listed physical rows, in order.
    Sparse(&'a [u32]),
}

impl RowSet<'_> {
    fn len(&self) -> usize {
        match self {
            RowSet::Dense(n) => *n,
            RowSet::Sparse(idx) => idx.len(),
        }
    }
}

/// A boolean predicate over one row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (scan without filter).
    True,
    /// `lo <= col <= hi` with configurable open/closed ends, on an
    /// integer-like column.
    IntRange {
        /// Column ordinal.
        col: usize,
        /// Lower bound.
        lo: Bound<i64>,
        /// Upper bound.
        hi: Bound<i64>,
    },
    /// `col = value` on a text column.
    StrEq {
        /// Column ordinal.
        col: usize,
        /// Comparand.
        value: String,
    },
    /// `col IN (values)` on a text column.
    StrIn {
        /// Column ordinal.
        col: usize,
        /// Accepted values.
        values: Vec<String>,
    },
    /// `left < right` across two integer columns of the same row
    /// (TPC-H Q4/Q12: `l_commitdate < l_receiptdate`).
    IntColLt {
        /// Left column ordinal.
        left: usize,
        /// Right column ordinal.
        right: usize,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `col = key` on an integer column.
    pub fn int_eq(col: usize, key: i64) -> Self {
        Predicate::IntRange { col, lo: Bound::Included(key), hi: Bound::Included(key) }
    }

    /// `lo <= col < hi` — the micro-benchmark's shape.
    pub fn int_half_open(col: usize, lo: i64, hi: i64) -> Self {
        Predicate::IntRange { col, lo: Bound::Included(lo), hi: Bound::Excluded(hi) }
    }

    /// `col >= lo`.
    pub fn int_ge(col: usize, lo: i64) -> Self {
        Predicate::IntRange { col, lo: Bound::Included(lo), hi: Bound::Unbounded }
    }

    /// `col < hi`.
    pub fn int_lt(col: usize, hi: i64) -> Self {
        Predicate::IntRange { col, lo: Bound::Unbounded, hi: Bound::Excluded(hi) }
    }

    /// `col <= hi`.
    pub fn int_le(col: usize, hi: i64) -> Self {
        Predicate::IntRange { col, lo: Bound::Unbounded, hi: Bound::Included(hi) }
    }

    /// Conjunction that collapses trivial cases.
    pub fn and(preds: Vec<Predicate>) -> Self {
        let mut flat: Vec<Predicate> =
            preds.into_iter().filter(|p| !matches!(p, Predicate::True)).collect();
        match flat.len() {
            0 => Predicate::True,
            1 => flat.pop().unwrap(),
            _ => Predicate::And(flat),
        }
    }

    /// Evaluate against a row. Comparisons against NULL are false.
    #[inline]
    pub fn eval(&self, row: &Row) -> Result<bool> {
        self.eval_values(row.values())
    }

    /// Evaluate against a value slice indexed by column ordinal. Only the
    /// ordinals the predicate references are read, so a scan may pass a
    /// scratch slice where unreferenced slots hold stale placeholders
    /// (see [`Row::decode_columns_into`]).
    pub fn eval_values(&self, values: &[Value]) -> Result<bool> {
        Ok(match self {
            Predicate::True => true,
            Predicate::IntRange { col, lo, hi } => match &values[*col] {
                Value::Int(v) => {
                    (match lo {
                        Bound::Unbounded => true,
                        Bound::Included(l) => *v >= *l,
                        Bound::Excluded(l) => *v > *l,
                    }) && (match hi {
                        Bound::Unbounded => true,
                        Bound::Included(h) => *v <= *h,
                        Bound::Excluded(h) => *v < *h,
                    })
                }
                Value::Null => false,
                other => {
                    return Err(smooth_types::Error::exec(format!(
                        "int predicate on non-int value {other}"
                    )))
                }
            },
            Predicate::StrEq { col, value } => match &values[*col] {
                Value::Str(s) => s == value,
                Value::Null => false,
                other => {
                    return Err(smooth_types::Error::exec(format!(
                        "string predicate on non-string value {other}"
                    )))
                }
            },
            Predicate::StrIn { col, values: accepted } => match &values[*col] {
                Value::Str(s) => accepted.iter().any(|v| v == s),
                Value::Null => false,
                other => {
                    return Err(smooth_types::Error::exec(format!(
                        "string predicate on non-string value {other}"
                    )))
                }
            },
            Predicate::IntColLt { left, right } => match (&values[*left], &values[*right]) {
                (Value::Int(a), Value::Int(b)) => a < b,
                (Value::Null, _) | (_, Value::Null) => false,
                (a, b) => {
                    return Err(smooth_types::Error::exec(format!(
                        "column comparison on non-ints: {a} vs {b}"
                    )))
                }
            },
            Predicate::And(ps) => {
                for p in ps {
                    if !p.eval_values(values)? {
                        return Ok(false);
                    }
                }
                true
            }
            Predicate::Or(ps) => {
                for p in ps {
                    if p.eval_values(values)? {
                        return Ok(true);
                    }
                }
                false
            }
            Predicate::Not(p) => !p.eval_values(values)?,
        })
    }

    /// Vectorized evaluation: compute the boolean outcome for each row of
    /// `rows` into `out` (`out[k]` answers the `k`-th listed row), reading
    /// column vectors through `col`. Kernels are tight, branch-light loops
    /// over a single typed vector; the dense case iterates the vectors
    /// directly (no index indirection), the auto-vectorizable shape the
    /// columnar layout exists for. NULL comparisons are false, as in the
    /// row path.
    ///
    /// Type errors surface per *column* here (a vector is uniformly
    /// typed), where the row path surfaces them per value; on well-typed
    /// plans the two agree exactly.
    fn eval_mask<'a, F>(&self, col: &F, rows: RowSet<'_>, out: &mut Vec<bool>) -> Result<()>
    where
        F: Fn(usize) -> Result<&'a ColumnVector>,
    {
        out.clear();
        /// Expand one kernel body for both row-set shapes.
        macro_rules! fill {
            (|$i:ident| $body:expr) => {
                match rows {
                    RowSet::Dense(n) => out.extend((0..n).map(|$i| $body)),
                    RowSet::Sparse(idx) => out.extend(idx.iter().map(|&x| {
                        let $i = x as usize;
                        $body
                    })),
                }
            };
        }
        match self {
            Predicate::True => out.resize(rows.len(), true),
            Predicate::IntRange { col: c, lo, hi } => {
                let v = col(*c)?;
                let ColumnValues::Int(ints) = v.values() else {
                    return Err(smooth_types::Error::exec("int predicate on non-int column"));
                };
                let nulls = v.nulls();
                // Normalize the bounds once; an overflowing exclusive
                // bound can match nothing.
                let lo_v = match lo {
                    Bound::Unbounded => Some(i64::MIN),
                    Bound::Included(l) => Some(*l),
                    Bound::Excluded(l) => l.checked_add(1),
                };
                let hi_v = match hi {
                    Bound::Unbounded => Some(i64::MAX),
                    Bound::Included(h) => Some(*h),
                    Bound::Excluded(h) => h.checked_sub(1),
                };
                let (Some(lo_v), Some(hi_v)) = (lo_v, hi_v) else {
                    out.resize(rows.len(), false);
                    return Ok(());
                };
                fill!(|i| !nulls[i] && ints[i] >= lo_v && ints[i] <= hi_v);
            }
            Predicate::StrEq { col: c, value } => {
                let v = col(*c)?;
                let ColumnValues::Str(strs) = v.values() else {
                    return Err(smooth_types::Error::exec("string predicate on non-text column"));
                };
                let nulls = v.nulls();
                fill!(|i| !nulls[i] && strs.get(i) == value.as_str());
            }
            Predicate::StrIn { col: c, values } => {
                let v = col(*c)?;
                let ColumnValues::Str(strs) = v.values() else {
                    return Err(smooth_types::Error::exec("string predicate on non-text column"));
                };
                let nulls = v.nulls();
                fill!(|i| !nulls[i] && values.iter().any(|a| a == strs.get(i)));
            }
            Predicate::IntColLt { left, right } => {
                let (l, r) = (col(*left)?, col(*right)?);
                let (ColumnValues::Int(lv), ColumnValues::Int(rv)) = (l.values(), r.values())
                else {
                    return Err(smooth_types::Error::exec("column comparison on non-ints"));
                };
                let (ln, rn) = (l.nulls(), r.nulls());
                fill!(|i| !ln[i] && !rn[i] && lv[i] < rv[i]);
            }
            Predicate::And(ps) => {
                out.resize(rows.len(), true);
                let mut tmp = Vec::with_capacity(rows.len());
                for p in ps {
                    p.eval_mask(col, rows, &mut tmp)?;
                    for (o, t) in out.iter_mut().zip(&tmp) {
                        *o &= *t;
                    }
                }
            }
            Predicate::Or(ps) => {
                out.resize(rows.len(), false);
                let mut tmp = Vec::with_capacity(rows.len());
                for p in ps {
                    p.eval_mask(col, rows, &mut tmp)?;
                    for (o, t) in out.iter_mut().zip(&tmp) {
                        *o |= *t;
                    }
                }
            }
            Predicate::Not(p) => {
                p.eval_mask(col, rows, out)?;
                for o in out.iter_mut() {
                    *o = !*o;
                }
            }
        }
        Ok(())
    }

    /// Row-wise evaluation against column vectors: the single-tuple twin
    /// of [`Predicate::eval_mask`], short-circuiting like
    /// [`Predicate::eval_values`] and allocating nothing. Used by the
    /// high-match-rate scan path, which decides tuple by tuple.
    fn eval_columns_at<'a, F>(&self, col: &F, i: usize) -> Result<bool>
    where
        F: Fn(usize) -> Result<&'a ColumnVector>,
    {
        Ok(match self {
            Predicate::True => true,
            Predicate::IntRange { col: c, lo, hi } => {
                let v = col(*c)?;
                let ColumnValues::Int(ints) = v.values() else {
                    return Err(smooth_types::Error::exec("int predicate on non-int column"));
                };
                if v.is_null(i) {
                    return Ok(false);
                }
                let x = ints[i];
                (match lo {
                    Bound::Unbounded => true,
                    Bound::Included(l) => x >= *l,
                    Bound::Excluded(l) => x > *l,
                }) && (match hi {
                    Bound::Unbounded => true,
                    Bound::Included(h) => x <= *h,
                    Bound::Excluded(h) => x < *h,
                })
            }
            Predicate::StrEq { col: c, value } => {
                let v = col(*c)?;
                let ColumnValues::Str(strs) = v.values() else {
                    return Err(smooth_types::Error::exec("string predicate on non-text column"));
                };
                !v.is_null(i) && strs.get(i) == value.as_str()
            }
            Predicate::StrIn { col: c, values } => {
                let v = col(*c)?;
                let ColumnValues::Str(strs) = v.values() else {
                    return Err(smooth_types::Error::exec("string predicate on non-text column"));
                };
                !v.is_null(i) && values.iter().any(|a| a == strs.get(i))
            }
            Predicate::IntColLt { left, right } => {
                let (l, r) = (col(*left)?, col(*right)?);
                let (ColumnValues::Int(lv), ColumnValues::Int(rv)) = (l.values(), r.values())
                else {
                    return Err(smooth_types::Error::exec("column comparison on non-ints"));
                };
                !l.is_null(i) && !r.is_null(i) && lv[i] < rv[i]
            }
            Predicate::And(ps) => {
                for p in ps {
                    if !p.eval_columns_at(col, i)? {
                        return Ok(false);
                    }
                }
                true
            }
            Predicate::Or(ps) => {
                for p in ps {
                    if p.eval_columns_at(col, i)? {
                        return Ok(true);
                    }
                }
                false
            }
            Predicate::Not(p) => !p.eval_columns_at(col, i)?,
        })
    }

    /// Refine a batch's selection: evaluate the predicate over the live
    /// rows and return the surviving physical indices, in order. No row is
    /// materialized or moved — non-qualifiers simply drop out of the
    /// selection vector.
    pub fn filter_batch(&self, batch: &ColumnBatch) -> Result<Vec<u32>> {
        let col = |c: usize| batch.column_checked(c);
        match batch.selection() {
            Some(sel) => {
                let mut mask = Vec::with_capacity(sel.len());
                self.eval_mask(&col, RowSet::Sparse(sel), &mut mask)?;
                Ok(sel.iter().zip(&mask).filter(|(_, &m)| m).map(|(&i, _)| i).collect())
            }
            None => {
                let n = batch.physical_rows();
                let mut mask = Vec::with_capacity(n);
                self.eval_mask(&col, RowSet::Dense(n), &mut mask)?;
                Ok((0u32..).zip(&mask).filter(|(_, &m)| m).map(|(i, _)| i).collect())
            }
        }
    }

    /// Collect the column ordinals this predicate reads, ascending and
    /// deduplicated.
    pub fn referenced_columns(&self) -> Vec<usize> {
        fn walk(p: &Predicate, out: &mut Vec<usize>) {
            match p {
                Predicate::True => {}
                Predicate::IntRange { col, .. }
                | Predicate::StrEq { col, .. }
                | Predicate::StrIn { col, .. } => out.push(*col),
                Predicate::IntColLt { left, right } => {
                    out.push(*left);
                    out.push(*right);
                }
                Predicate::And(ps) | Predicate::Or(ps) => ps.iter().for_each(|p| walk(p, out)),
                Predicate::Not(p) => walk(p, out),
            }
        }
        let mut cols = Vec::new();
        walk(self, &mut cols);
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// If this predicate constrains exactly one integer column with a range
    /// usable to drive an index (possibly with residual work left over),
    /// return `(col, lo, hi, residual)`. Conjunctions pick the first
    /// matching conjunct; everything else becomes residual.
    pub fn split_index_range(&self) -> Option<(usize, Bound<i64>, Bound<i64>, Predicate)> {
        match self {
            Predicate::IntRange { col, lo, hi } => Some((*col, *lo, *hi, Predicate::True)),
            Predicate::And(ps) => {
                let idx = ps.iter().position(|p| matches!(p, Predicate::IntRange { .. }))?;
                if let Predicate::IntRange { col, lo, hi } = &ps[idx] {
                    let rest: Vec<Predicate> = ps
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != idx)
                        .map(|(_, p)| p.clone())
                        .collect();
                    Some((*col, *lo, *hi, Predicate::and(rest)))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

/// A predicate compiled against one scan schema, able to filter *encoded*
/// tuples by decoding only the columns the predicate reads.
///
/// This is the vectorized scan's selection pushdown: for non-qualifying
/// tuples the full [`Row::decode`] (one `Vec<Value>` plus a string
/// allocation per text field) is skipped — the probe walks the tuple
/// without materializing anything, so corrupt tuples still error exactly
/// as under a full decode. Because a qualifying tuple is parsed twice
/// under probing (probe, then decode), the filter is *adaptive*: it
/// tracks the observed match rate, statistics-oblivious style, and
/// switches to single-pass full decode once most tuples qualify. Probing
/// is also skipped when the predicate reads every column.
pub struct ScanFilter {
    predicate: Predicate,
    /// Referenced ordinals (ascending); probing is possible when this is
    /// a strict subset of the schema.
    cols: Vec<usize>,
    probe_possible: bool,
    scratch: Vec<Value>,
    /// Columnar probe scratch: one typed vector per referenced ordinal
    /// (reused across pages — no steady-state allocation).
    col_scratch: Vec<ColumnVector>,
    /// Schema ordinal → index into `cols`/`col_scratch`.
    col_map: Vec<Option<usize>>,
    /// Mask scratch for the columnar kernels.
    mask: Vec<bool>,
    probed: u64,
    matched: u64,
}

/// Tuples examined before the match-rate heuristic may disable probing.
const PROBE_WARMUP: u64 = 256;

impl ScanFilter {
    /// Compile `predicate` for tuples of `schema`.
    pub fn new(predicate: Predicate, schema: &Schema) -> Self {
        let cols = predicate.referenced_columns();
        let probe_possible = cols.len() < schema.len();
        let scratch = vec![Value::Null; schema.len()];
        let col_scratch =
            cols.iter().map(|&c| ColumnVector::for_type(schema.column(c).ty)).collect();
        let mut col_map = vec![None; schema.len()];
        for (k, &c) in cols.iter().enumerate() {
            col_map[c] = Some(k);
        }
        ScanFilter {
            predicate,
            cols,
            probe_possible,
            scratch,
            col_scratch,
            col_map,
            mask: Vec::new(),
            probed: 0,
            matched: 0,
        }
    }

    /// The compiled predicate.
    pub fn predicate(&self) -> &Predicate {
        &self.predicate
    }

    /// Probe-first pays off while fewer than half the tuples qualify;
    /// past that, double-parsing qualifiers costs more than it saves.
    fn probe_pays(&self) -> bool {
        self.probe_possible && (self.probed < PROBE_WARMUP || self.matched * 2 < self.probed)
    }

    /// Decode the encoded tuple `bytes` if it qualifies; `None` otherwise.
    pub fn filter_decode(&mut self, schema: &Schema, bytes: &[u8]) -> Result<Option<Row>> {
        if matches!(self.predicate, Predicate::True) {
            smooth_storage::tap_rows(1, 1);
            return Ok(Some(Row::decode(schema, bytes)?));
        }
        let matched = if self.probe_pays() {
            Row::decode_columns_into(schema, bytes, &self.cols, &mut self.scratch)?;
            let matched = self.predicate.eval_values(&self.scratch)?;
            self.probed += 1;
            self.matched += u64::from(matched);
            matched.then(|| Row::decode(schema, bytes)).transpose()?
        } else {
            let row = Row::decode(schema, bytes)?;
            let matched = self.predicate.eval(&row)?;
            self.probed += 1;
            self.matched += u64::from(matched);
            matched.then_some(row)
        };
        smooth_storage::tap_rows(1, u64::from(matched.is_some()));
        Ok(matched)
    }

    /// Columnar fill: append the qualifying tuples among `tuples` to
    /// `out`, densely, in input order. Returns `(inspected, emitted)` for
    /// the caller's clock accounting — `inspected` is always
    /// `tuples.len()`, so bulk per-page charges stay byte-for-byte
    /// identical to the per-tuple row path.
    ///
    /// Strategy mirrors [`ScanFilter::filter_decode`]'s adaptivity: while
    /// probing pays, predicate columns are decoded into reused typed
    /// vectors, the kernel produces a match mask, and only qualifiers are
    /// fully decoded (no `Row`, no `Vec<Value>` — straight into `out`'s
    /// column vectors). Once most tuples match, tuples are decoded in a
    /// single pass and the rare non-qualifier is truncated back off.
    ///
    /// When `backing` names the shared buffer the `tuples` slices live in
    /// (the pinned page), qualifying text fields decode as zero-copy
    /// views pinning that buffer (see [`smooth_types::TextColumn`]) —
    /// allocation behavior only; emitted rows, charges and I/O are
    /// byte-identical with or without it.
    pub fn fill_columns(
        &mut self,
        schema: &Schema,
        tuples: &[&[u8]],
        backing: Option<&smooth_types::SharedBytes>,
        out: &mut ColumnBatch,
    ) -> Result<(u64, u64)> {
        let inspected = tuples.len() as u64;
        if matches!(self.predicate, Predicate::True) {
            for t in tuples {
                out.push_tuple_backed(schema, t, backing)?;
            }
            smooth_storage::tap_rows(inspected, inspected);
            return Ok((inspected, inspected));
        }
        let mut emitted = 0u64;
        if self.probe_pays() {
            for v in &mut self.col_scratch {
                v.clear();
            }
            // Probe vectors are predicate scratch, never emitted — decode
            // them owned so they don't pin pages past the probe.
            for t in tuples {
                decode_columns_append(schema, t, &self.cols, &mut self.col_scratch, None)?;
            }
            let scratch = &self.col_scratch;
            let col_map = &self.col_map;
            let lookup =
                |c: usize| -> Result<&ColumnVector> {
                    col_map.get(c).copied().flatten().map(|k| &scratch[k]).ok_or_else(|| {
                        smooth_types::Error::exec(format!("column {c} out of range"))
                    })
                };
            let mut mask = std::mem::take(&mut self.mask);
            self.predicate.eval_mask(&lookup, RowSet::Dense(tuples.len()), &mut mask)?;
            for (t, &m) in tuples.iter().zip(&mask) {
                if m {
                    out.push_tuple_backed(schema, t, backing)?;
                    emitted += 1;
                }
            }
            self.mask = mask;
        } else {
            for t in tuples {
                out.push_tuple_backed(schema, t, backing)?;
                let last = out.physical_rows() - 1;
                if self.predicate.eval_columns_at(&|c| out.column_checked(c), last)? {
                    emitted += 1;
                } else {
                    out.truncate_rows(last);
                }
            }
        }
        self.probed += inspected;
        self.matched += emitted;
        smooth_storage::tap_rows(inspected, emitted);
        Ok((inspected, emitted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: i64, s: &str) -> Row {
        Row::new(vec![Value::Int(v), Value::str(s)])
    }

    #[test]
    fn ranges() {
        let p = Predicate::int_half_open(0, 10, 20);
        assert!(p.eval(&row(10, "")).unwrap());
        assert!(p.eval(&row(19, "")).unwrap());
        assert!(!p.eval(&row(20, "")).unwrap());
        assert!(!p.eval(&row(9, "")).unwrap());
        assert!(Predicate::int_eq(0, 5).eval(&row(5, "")).unwrap());
        assert!(Predicate::int_ge(0, 5).eval(&row(5, "")).unwrap());
        assert!(Predicate::int_lt(0, 5).eval(&row(4, "")).unwrap());
        assert!(Predicate::int_le(0, 5).eval(&row(5, "")).unwrap());
    }

    #[test]
    fn strings_and_composites() {
        let p = Predicate::And(vec![
            Predicate::int_ge(0, 0),
            Predicate::StrEq { col: 1, value: "ok".into() },
        ]);
        assert!(p.eval(&row(1, "ok")).unwrap());
        assert!(!p.eval(&row(1, "no")).unwrap());
        assert!(!p.eval(&row(-1, "ok")).unwrap());
        let q = Predicate::Or(vec![
            Predicate::StrIn { col: 1, values: vec!["a".into(), "b".into()] },
            Predicate::int_eq(0, 7),
        ]);
        assert!(q.eval(&row(0, "b")).unwrap());
        assert!(q.eval(&row(7, "z")).unwrap());
        assert!(!q.eval(&row(0, "z")).unwrap());
        let n = Predicate::Not(Box::new(Predicate::True));
        assert!(!n.eval(&row(0, "")).unwrap());
    }

    #[test]
    fn nulls_never_match() {
        let r = Row::new(vec![Value::Null, Value::Null]);
        assert!(!Predicate::int_eq(0, 0).eval(&r).unwrap());
        assert!(!Predicate::StrEq { col: 1, value: String::new() }.eval(&r).unwrap());
        // but NOT(null-compare) is true under two-valued semantics
        assert!(Predicate::Not(Box::new(Predicate::int_eq(0, 0))).eval(&r).unwrap());
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(Predicate::int_eq(1, 0).eval(&row(0, "x")).is_err());
        assert!(Predicate::StrEq { col: 0, value: "x".into() }.eval(&row(0, "x")).is_err());
    }

    #[test]
    fn column_comparison() {
        let p = Predicate::IntColLt { left: 0, right: 1 };
        let two_ints = Row::new(vec![Value::Int(3), Value::Int(5)]);
        assert!(p.eval(&two_ints).unwrap());
        let eq = Row::new(vec![Value::Int(5), Value::Int(5)]);
        assert!(!p.eval(&eq).unwrap());
        let with_null = Row::new(vec![Value::Null, Value::Int(5)]);
        assert!(!p.eval(&with_null).unwrap());
        assert!(p.eval(&row(0, "x")).is_err());
    }

    #[test]
    fn and_collapses() {
        assert_eq!(Predicate::and(vec![]), Predicate::True);
        assert_eq!(Predicate::and(vec![Predicate::True]), Predicate::True);
        let p = Predicate::int_eq(0, 1);
        assert_eq!(Predicate::and(vec![Predicate::True, p.clone()]), p);
    }

    #[test]
    fn referenced_columns_are_sorted_and_deduped() {
        let p = Predicate::And(vec![
            Predicate::StrEq { col: 3, value: "x".into() },
            Predicate::Or(vec![Predicate::int_eq(1, 5), Predicate::IntColLt { left: 3, right: 0 }]),
        ]);
        assert_eq!(p.referenced_columns(), vec![0, 1, 3]);
        assert!(Predicate::True.referenced_columns().is_empty());
        assert_eq!(Predicate::Not(Box::new(Predicate::int_eq(2, 0))).referenced_columns(), vec![2]);
    }

    #[test]
    fn scan_filter_agrees_with_row_eval() {
        use smooth_types::{Column, DataType};
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int64),
            Column::nullable("b", DataType::Int64),
            Column::new("s", DataType::Text),
        ])
        .unwrap();
        let rows = [
            Row::new(vec![Value::Int(1), Value::Int(10), Value::str("x")]),
            Row::new(vec![Value::Int(2), Value::Null, Value::str("y")]),
            Row::new(vec![Value::Int(3), Value::Int(-4), Value::str("x")]),
        ];
        let preds = [
            Predicate::True,
            Predicate::int_ge(1, 0),
            Predicate::And(vec![
                Predicate::int_lt(0, 3),
                Predicate::StrEq { col: 2, value: "x".into() },
            ]),
            // references every column → full-decode fallback
            Predicate::And(vec![
                Predicate::int_ge(0, 0),
                Predicate::int_ge(1, -100),
                Predicate::StrIn { col: 2, values: vec!["x".into(), "y".into()] },
            ]),
        ];
        for pred in preds {
            let mut filter = ScanFilter::new(pred.clone(), &schema);
            for r in &rows {
                let bytes = r.encode(&schema).unwrap();
                let got = filter.filter_decode(&schema, &bytes).unwrap();
                assert_eq!(got.is_some(), pred.eval(r).unwrap(), "{pred:?} on {r:?}");
                if let Some(decoded) = got {
                    assert_eq!(&decoded, r);
                }
            }
        }
    }

    #[test]
    fn columnar_kernels_agree_with_row_eval() {
        use smooth_types::{Column, DataType};
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int64),
            Column::nullable("b", DataType::Int64),
            Column::nullable("s", DataType::Text),
        ])
        .unwrap();
        let rows = [
            Row::new(vec![Value::Int(1), Value::Int(10), Value::str("x")]),
            Row::new(vec![Value::Int(2), Value::Null, Value::str("y")]),
            Row::new(vec![Value::Int(3), Value::Int(-4), Value::Null]),
            Row::new(vec![Value::Int(4), Value::Int(2), Value::str("x")]),
        ];
        let preds = [
            Predicate::True,
            Predicate::int_half_open(0, 2, 4),
            Predicate::int_ge(1, 0),
            Predicate::IntRange { col: 0, lo: Bound::Excluded(i64::MAX), hi: Bound::Unbounded },
            Predicate::StrEq { col: 2, value: "x".into() },
            Predicate::StrIn { col: 2, values: vec!["y".into(), "z".into()] },
            Predicate::IntColLt { left: 0, right: 1 },
            Predicate::And(vec![
                Predicate::int_ge(0, 2),
                Predicate::Or(vec![
                    Predicate::StrEq { col: 2, value: "x".into() },
                    Predicate::int_lt(1, 0),
                ]),
            ]),
            Predicate::Not(Box::new(Predicate::int_eq(0, 2))),
        ];
        let batch = ColumnBatch::from_rows(&schema, &rows).unwrap();
        for pred in &preds {
            let sel = pred.filter_batch(&batch).unwrap();
            let expected: Vec<u32> = rows
                .iter()
                .enumerate()
                .filter(|(_, r)| pred.eval(r).unwrap())
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(sel, expected, "{pred:?}");
        }
        // refinement composes with an existing selection vector
        let mut narrowed = batch.clone();
        narrowed.set_selection(vec![3, 1, 0]);
        let sel = Predicate::int_ge(0, 2).filter_batch(&narrowed).unwrap();
        assert_eq!(sel, vec![3, 1], "selection order survives refinement");
    }

    #[test]
    fn fill_columns_matches_filter_decode() {
        use smooth_types::{Column, DataType};
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int64),
            Column::nullable("b", DataType::Int64),
            Column::new("s", DataType::Text),
        ])
        .unwrap();
        let rows: Vec<Row> = (0..600)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    if i % 7 == 0 { Value::Null } else { Value::Int(i % 50) },
                    Value::str(if i % 3 == 0 { "x" } else { "y" }),
                ])
            })
            .collect();
        let encoded: Vec<Vec<u8>> = rows.iter().map(|r| r.encode(&schema).unwrap()).collect();
        let tuples: Vec<&[u8]> = encoded.iter().map(Vec::as_slice).collect();
        let preds = [
            Predicate::True,
            Predicate::int_lt(1, 5), // low match rate → probe path
            Predicate::int_ge(1, 0), // high match rate → single-pass path after warmup
            Predicate::And(vec![
                Predicate::int_ge(0, 100),
                Predicate::StrEq { col: 2, value: "x".into() },
            ]),
        ];
        for pred in preds {
            let mut row_filter = ScanFilter::new(pred.clone(), &schema);
            let mut col_filter = ScanFilter::new(pred.clone(), &schema);
            let mut expected = Vec::new();
            for t in &tuples {
                if let Some(r) = row_filter.filter_decode(&schema, t).unwrap() {
                    expected.push(r);
                }
            }
            let mut out = ColumnBatch::for_schema(&schema);
            let mut emitted_total = 0;
            // feed in page-sized chunks so the adaptive heuristic flips
            for chunk in tuples.chunks(90) {
                let (inspected, emitted) =
                    col_filter.fill_columns(&schema, chunk, None, &mut out).unwrap();
                assert_eq!(inspected as usize, chunk.len());
                emitted_total += emitted as usize;
            }
            assert_eq!(emitted_total, expected.len(), "{pred:?}");
            assert_eq!(out.into_rows(), expected, "{pred:?}");
        }
    }

    #[test]
    fn split_extracts_index_range() {
        let p = Predicate::And(vec![
            Predicate::StrEq { col: 1, value: "x".into() },
            Predicate::int_half_open(0, 3, 9),
        ]);
        let (col, lo, hi, residual) = p.split_index_range().unwrap();
        assert_eq!(col, 0);
        assert_eq!(lo, Bound::Included(3));
        assert_eq!(hi, Bound::Excluded(9));
        assert_eq!(residual, Predicate::StrEq { col: 1, value: "x".into() });
        assert!(Predicate::True.split_index_range().is_none());
        let lone = Predicate::int_eq(2, 5);
        let (col, _, _, residual) = lone.split_index_range().unwrap();
        assert_eq!(col, 2);
        assert_eq!(residual, Predicate::True);
    }
}
