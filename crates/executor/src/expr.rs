//! Predicates evaluated over rows.
//!
//! A small, concrete predicate language — range and equality tests
//! composable with AND/OR/NOT — rather than a general expression tree:
//! every query in the paper (micro-benchmark Q1, the skew query, and the
//! TPC-H-style workload) is a conjunction of column ranges and string
//! equalities. NULL comparisons evaluate to false, the practical
//! two-valued simplification of SQL's three-valued logic for filters.

use std::ops::Bound;

use smooth_types::{Result, Row, Value};

/// A boolean predicate over one row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (scan without filter).
    True,
    /// `lo <= col <= hi` with configurable open/closed ends, on an
    /// integer-like column.
    IntRange {
        /// Column ordinal.
        col: usize,
        /// Lower bound.
        lo: Bound<i64>,
        /// Upper bound.
        hi: Bound<i64>,
    },
    /// `col = value` on a text column.
    StrEq {
        /// Column ordinal.
        col: usize,
        /// Comparand.
        value: String,
    },
    /// `col IN (values)` on a text column.
    StrIn {
        /// Column ordinal.
        col: usize,
        /// Accepted values.
        values: Vec<String>,
    },
    /// `left < right` across two integer columns of the same row
    /// (TPC-H Q4/Q12: `l_commitdate < l_receiptdate`).
    IntColLt {
        /// Left column ordinal.
        left: usize,
        /// Right column ordinal.
        right: usize,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `col = key` on an integer column.
    pub fn int_eq(col: usize, key: i64) -> Self {
        Predicate::IntRange { col, lo: Bound::Included(key), hi: Bound::Included(key) }
    }

    /// `lo <= col < hi` — the micro-benchmark's shape.
    pub fn int_half_open(col: usize, lo: i64, hi: i64) -> Self {
        Predicate::IntRange { col, lo: Bound::Included(lo), hi: Bound::Excluded(hi) }
    }

    /// `col >= lo`.
    pub fn int_ge(col: usize, lo: i64) -> Self {
        Predicate::IntRange { col, lo: Bound::Included(lo), hi: Bound::Unbounded }
    }

    /// `col < hi`.
    pub fn int_lt(col: usize, hi: i64) -> Self {
        Predicate::IntRange { col, lo: Bound::Unbounded, hi: Bound::Excluded(hi) }
    }

    /// `col <= hi`.
    pub fn int_le(col: usize, hi: i64) -> Self {
        Predicate::IntRange { col, lo: Bound::Unbounded, hi: Bound::Included(hi) }
    }

    /// Conjunction that collapses trivial cases.
    pub fn and(preds: Vec<Predicate>) -> Self {
        let mut flat: Vec<Predicate> =
            preds.into_iter().filter(|p| !matches!(p, Predicate::True)).collect();
        match flat.len() {
            0 => Predicate::True,
            1 => flat.pop().unwrap(),
            _ => Predicate::And(flat),
        }
    }

    /// Evaluate against a row. Comparisons against NULL are false.
    pub fn eval(&self, row: &Row) -> Result<bool> {
        Ok(match self {
            Predicate::True => true,
            Predicate::IntRange { col, lo, hi } => match row.get(*col) {
                Value::Int(v) => {
                    (match lo {
                        Bound::Unbounded => true,
                        Bound::Included(l) => *v >= *l,
                        Bound::Excluded(l) => *v > *l,
                    }) && (match hi {
                        Bound::Unbounded => true,
                        Bound::Included(h) => *v <= *h,
                        Bound::Excluded(h) => *v < *h,
                    })
                }
                Value::Null => false,
                other => {
                    return Err(smooth_types::Error::exec(format!(
                        "int predicate on non-int value {other}"
                    )))
                }
            },
            Predicate::StrEq { col, value } => match row.get(*col) {
                Value::Str(s) => s == value,
                Value::Null => false,
                other => {
                    return Err(smooth_types::Error::exec(format!(
                        "string predicate on non-string value {other}"
                    )))
                }
            },
            Predicate::StrIn { col, values } => match row.get(*col) {
                Value::Str(s) => values.iter().any(|v| v == s),
                Value::Null => false,
                other => {
                    return Err(smooth_types::Error::exec(format!(
                        "string predicate on non-string value {other}"
                    )))
                }
            },
            Predicate::IntColLt { left, right } => match (row.get(*left), row.get(*right)) {
                (Value::Int(a), Value::Int(b)) => a < b,
                (Value::Null, _) | (_, Value::Null) => false,
                (a, b) => {
                    return Err(smooth_types::Error::exec(format!(
                        "column comparison on non-ints: {a} vs {b}"
                    )))
                }
            },
            Predicate::And(ps) => {
                for p in ps {
                    if !p.eval(row)? {
                        return Ok(false);
                    }
                }
                true
            }
            Predicate::Or(ps) => {
                for p in ps {
                    if p.eval(row)? {
                        return Ok(true);
                    }
                }
                false
            }
            Predicate::Not(p) => !p.eval(row)?,
        })
    }

    /// If this predicate constrains exactly one integer column with a range
    /// usable to drive an index (possibly with residual work left over),
    /// return `(col, lo, hi, residual)`. Conjunctions pick the first
    /// matching conjunct; everything else becomes residual.
    pub fn split_index_range(&self) -> Option<(usize, Bound<i64>, Bound<i64>, Predicate)> {
        match self {
            Predicate::IntRange { col, lo, hi } => Some((*col, *lo, *hi, Predicate::True)),
            Predicate::And(ps) => {
                let idx = ps.iter().position(|p| matches!(p, Predicate::IntRange { .. }))?;
                if let Predicate::IntRange { col, lo, hi } = &ps[idx] {
                    let rest: Vec<Predicate> = ps
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != idx)
                        .map(|(_, p)| p.clone())
                        .collect();
                    Some((*col, *lo, *hi, Predicate::and(rest)))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: i64, s: &str) -> Row {
        Row::new(vec![Value::Int(v), Value::str(s)])
    }

    #[test]
    fn ranges() {
        let p = Predicate::int_half_open(0, 10, 20);
        assert!(p.eval(&row(10, "")).unwrap());
        assert!(p.eval(&row(19, "")).unwrap());
        assert!(!p.eval(&row(20, "")).unwrap());
        assert!(!p.eval(&row(9, "")).unwrap());
        assert!(Predicate::int_eq(0, 5).eval(&row(5, "")).unwrap());
        assert!(Predicate::int_ge(0, 5).eval(&row(5, "")).unwrap());
        assert!(Predicate::int_lt(0, 5).eval(&row(4, "")).unwrap());
        assert!(Predicate::int_le(0, 5).eval(&row(5, "")).unwrap());
    }

    #[test]
    fn strings_and_composites() {
        let p = Predicate::And(vec![
            Predicate::int_ge(0, 0),
            Predicate::StrEq { col: 1, value: "ok".into() },
        ]);
        assert!(p.eval(&row(1, "ok")).unwrap());
        assert!(!p.eval(&row(1, "no")).unwrap());
        assert!(!p.eval(&row(-1, "ok")).unwrap());
        let q = Predicate::Or(vec![
            Predicate::StrIn { col: 1, values: vec!["a".into(), "b".into()] },
            Predicate::int_eq(0, 7),
        ]);
        assert!(q.eval(&row(0, "b")).unwrap());
        assert!(q.eval(&row(7, "z")).unwrap());
        assert!(!q.eval(&row(0, "z")).unwrap());
        let n = Predicate::Not(Box::new(Predicate::True));
        assert!(!n.eval(&row(0, "")).unwrap());
    }

    #[test]
    fn nulls_never_match() {
        let r = Row::new(vec![Value::Null, Value::Null]);
        assert!(!Predicate::int_eq(0, 0).eval(&r).unwrap());
        assert!(!Predicate::StrEq { col: 1, value: String::new() }.eval(&r).unwrap());
        // but NOT(null-compare) is true under two-valued semantics
        assert!(Predicate::Not(Box::new(Predicate::int_eq(0, 0))).eval(&r).unwrap());
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(Predicate::int_eq(1, 0).eval(&row(0, "x")).is_err());
        assert!(Predicate::StrEq { col: 0, value: "x".into() }.eval(&row(0, "x")).is_err());
    }

    #[test]
    fn column_comparison() {
        let p = Predicate::IntColLt { left: 0, right: 1 };
        let two_ints = Row::new(vec![Value::Int(3), Value::Int(5)]);
        assert!(p.eval(&two_ints).unwrap());
        let eq = Row::new(vec![Value::Int(5), Value::Int(5)]);
        assert!(!p.eval(&eq).unwrap());
        let with_null = Row::new(vec![Value::Null, Value::Int(5)]);
        assert!(!p.eval(&with_null).unwrap());
        assert!(p.eval(&row(0, "x")).is_err());
    }

    #[test]
    fn and_collapses() {
        assert_eq!(Predicate::and(vec![]), Predicate::True);
        assert_eq!(Predicate::and(vec![Predicate::True]), Predicate::True);
        let p = Predicate::int_eq(0, 1);
        assert_eq!(Predicate::and(vec![Predicate::True, p.clone()]), p);
    }

    #[test]
    fn split_extracts_index_range() {
        let p = Predicate::And(vec![
            Predicate::StrEq { col: 1, value: "x".into() },
            Predicate::int_half_open(0, 3, 9),
        ]);
        let (col, lo, hi, residual) = p.split_index_range().unwrap();
        assert_eq!(col, 0);
        assert_eq!(lo, Bound::Included(3));
        assert_eq!(hi, Bound::Excluded(9));
        assert_eq!(residual, Predicate::StrEq { col: 1, value: "x".into() });
        assert!(Predicate::True.split_index_range().is_none());
        let lone = Predicate::int_eq(2, 5);
        let (col, _, _, residual) = lone.split_index_range().unwrap();
        assert_eq!(col, 2);
        assert_eq!(residual, Predicate::True);
    }
}
