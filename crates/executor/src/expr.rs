//! Predicates evaluated over rows.
//!
//! A small, concrete predicate language — range and equality tests
//! composable with AND/OR/NOT — rather than a general expression tree:
//! every query in the paper (micro-benchmark Q1, the skew query, and the
//! TPC-H-style workload) is a conjunction of column ranges and string
//! equalities. NULL comparisons evaluate to false, the practical
//! two-valued simplification of SQL's three-valued logic for filters.

use std::ops::Bound;

use smooth_types::{Result, Row, Schema, Value};

/// A boolean predicate over one row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (scan without filter).
    True,
    /// `lo <= col <= hi` with configurable open/closed ends, on an
    /// integer-like column.
    IntRange {
        /// Column ordinal.
        col: usize,
        /// Lower bound.
        lo: Bound<i64>,
        /// Upper bound.
        hi: Bound<i64>,
    },
    /// `col = value` on a text column.
    StrEq {
        /// Column ordinal.
        col: usize,
        /// Comparand.
        value: String,
    },
    /// `col IN (values)` on a text column.
    StrIn {
        /// Column ordinal.
        col: usize,
        /// Accepted values.
        values: Vec<String>,
    },
    /// `left < right` across two integer columns of the same row
    /// (TPC-H Q4/Q12: `l_commitdate < l_receiptdate`).
    IntColLt {
        /// Left column ordinal.
        left: usize,
        /// Right column ordinal.
        right: usize,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `col = key` on an integer column.
    pub fn int_eq(col: usize, key: i64) -> Self {
        Predicate::IntRange { col, lo: Bound::Included(key), hi: Bound::Included(key) }
    }

    /// `lo <= col < hi` — the micro-benchmark's shape.
    pub fn int_half_open(col: usize, lo: i64, hi: i64) -> Self {
        Predicate::IntRange { col, lo: Bound::Included(lo), hi: Bound::Excluded(hi) }
    }

    /// `col >= lo`.
    pub fn int_ge(col: usize, lo: i64) -> Self {
        Predicate::IntRange { col, lo: Bound::Included(lo), hi: Bound::Unbounded }
    }

    /// `col < hi`.
    pub fn int_lt(col: usize, hi: i64) -> Self {
        Predicate::IntRange { col, lo: Bound::Unbounded, hi: Bound::Excluded(hi) }
    }

    /// `col <= hi`.
    pub fn int_le(col: usize, hi: i64) -> Self {
        Predicate::IntRange { col, lo: Bound::Unbounded, hi: Bound::Included(hi) }
    }

    /// Conjunction that collapses trivial cases.
    pub fn and(preds: Vec<Predicate>) -> Self {
        let mut flat: Vec<Predicate> =
            preds.into_iter().filter(|p| !matches!(p, Predicate::True)).collect();
        match flat.len() {
            0 => Predicate::True,
            1 => flat.pop().unwrap(),
            _ => Predicate::And(flat),
        }
    }

    /// Evaluate against a row. Comparisons against NULL are false.
    #[inline]
    pub fn eval(&self, row: &Row) -> Result<bool> {
        self.eval_values(row.values())
    }

    /// Evaluate against a value slice indexed by column ordinal. Only the
    /// ordinals the predicate references are read, so a scan may pass a
    /// scratch slice where unreferenced slots hold stale placeholders
    /// (see [`Row::decode_columns_into`]).
    pub fn eval_values(&self, values: &[Value]) -> Result<bool> {
        Ok(match self {
            Predicate::True => true,
            Predicate::IntRange { col, lo, hi } => match &values[*col] {
                Value::Int(v) => {
                    (match lo {
                        Bound::Unbounded => true,
                        Bound::Included(l) => *v >= *l,
                        Bound::Excluded(l) => *v > *l,
                    }) && (match hi {
                        Bound::Unbounded => true,
                        Bound::Included(h) => *v <= *h,
                        Bound::Excluded(h) => *v < *h,
                    })
                }
                Value::Null => false,
                other => {
                    return Err(smooth_types::Error::exec(format!(
                        "int predicate on non-int value {other}"
                    )))
                }
            },
            Predicate::StrEq { col, value } => match &values[*col] {
                Value::Str(s) => s == value,
                Value::Null => false,
                other => {
                    return Err(smooth_types::Error::exec(format!(
                        "string predicate on non-string value {other}"
                    )))
                }
            },
            Predicate::StrIn { col, values: accepted } => match &values[*col] {
                Value::Str(s) => accepted.iter().any(|v| v == s),
                Value::Null => false,
                other => {
                    return Err(smooth_types::Error::exec(format!(
                        "string predicate on non-string value {other}"
                    )))
                }
            },
            Predicate::IntColLt { left, right } => match (&values[*left], &values[*right]) {
                (Value::Int(a), Value::Int(b)) => a < b,
                (Value::Null, _) | (_, Value::Null) => false,
                (a, b) => {
                    return Err(smooth_types::Error::exec(format!(
                        "column comparison on non-ints: {a} vs {b}"
                    )))
                }
            },
            Predicate::And(ps) => {
                for p in ps {
                    if !p.eval_values(values)? {
                        return Ok(false);
                    }
                }
                true
            }
            Predicate::Or(ps) => {
                for p in ps {
                    if p.eval_values(values)? {
                        return Ok(true);
                    }
                }
                false
            }
            Predicate::Not(p) => !p.eval_values(values)?,
        })
    }

    /// Collect the column ordinals this predicate reads, ascending and
    /// deduplicated.
    pub fn referenced_columns(&self) -> Vec<usize> {
        fn walk(p: &Predicate, out: &mut Vec<usize>) {
            match p {
                Predicate::True => {}
                Predicate::IntRange { col, .. }
                | Predicate::StrEq { col, .. }
                | Predicate::StrIn { col, .. } => out.push(*col),
                Predicate::IntColLt { left, right } => {
                    out.push(*left);
                    out.push(*right);
                }
                Predicate::And(ps) | Predicate::Or(ps) => ps.iter().for_each(|p| walk(p, out)),
                Predicate::Not(p) => walk(p, out),
            }
        }
        let mut cols = Vec::new();
        walk(self, &mut cols);
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// If this predicate constrains exactly one integer column with a range
    /// usable to drive an index (possibly with residual work left over),
    /// return `(col, lo, hi, residual)`. Conjunctions pick the first
    /// matching conjunct; everything else becomes residual.
    pub fn split_index_range(&self) -> Option<(usize, Bound<i64>, Bound<i64>, Predicate)> {
        match self {
            Predicate::IntRange { col, lo, hi } => Some((*col, *lo, *hi, Predicate::True)),
            Predicate::And(ps) => {
                let idx = ps.iter().position(|p| matches!(p, Predicate::IntRange { .. }))?;
                if let Predicate::IntRange { col, lo, hi } = &ps[idx] {
                    let rest: Vec<Predicate> = ps
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != idx)
                        .map(|(_, p)| p.clone())
                        .collect();
                    Some((*col, *lo, *hi, Predicate::and(rest)))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

/// A predicate compiled against one scan schema, able to filter *encoded*
/// tuples by decoding only the columns the predicate reads.
///
/// This is the vectorized scan's selection pushdown: for non-qualifying
/// tuples the full [`Row::decode`] (one `Vec<Value>` plus a string
/// allocation per text field) is skipped — the probe walks the tuple
/// without materializing anything, so corrupt tuples still error exactly
/// as under a full decode. Because a qualifying tuple is parsed twice
/// under probing (probe, then decode), the filter is *adaptive*: it
/// tracks the observed match rate, statistics-oblivious style, and
/// switches to single-pass full decode once most tuples qualify. Probing
/// is also skipped when the predicate reads every column.
pub struct ScanFilter {
    predicate: Predicate,
    /// Referenced ordinals (ascending); probing is possible when this is
    /// a strict subset of the schema.
    cols: Vec<usize>,
    probe_possible: bool,
    scratch: Vec<Value>,
    probed: u64,
    matched: u64,
}

/// Tuples examined before the match-rate heuristic may disable probing.
const PROBE_WARMUP: u64 = 256;

impl ScanFilter {
    /// Compile `predicate` for tuples of `schema`.
    pub fn new(predicate: Predicate, schema: &Schema) -> Self {
        let cols = predicate.referenced_columns();
        let probe_possible = cols.len() < schema.len();
        let scratch = vec![Value::Null; schema.len()];
        ScanFilter { predicate, cols, probe_possible, scratch, probed: 0, matched: 0 }
    }

    /// The compiled predicate.
    pub fn predicate(&self) -> &Predicate {
        &self.predicate
    }

    /// Probe-first pays off while fewer than half the tuples qualify;
    /// past that, double-parsing qualifiers costs more than it saves.
    fn probe_pays(&self) -> bool {
        self.probe_possible && (self.probed < PROBE_WARMUP || self.matched * 2 < self.probed)
    }

    /// Decode the encoded tuple `bytes` if it qualifies; `None` otherwise.
    pub fn filter_decode(&mut self, schema: &Schema, bytes: &[u8]) -> Result<Option<Row>> {
        if matches!(self.predicate, Predicate::True) {
            return Ok(Some(Row::decode(schema, bytes)?));
        }
        let matched = if self.probe_pays() {
            Row::decode_columns_into(schema, bytes, &self.cols, &mut self.scratch)?;
            let matched = self.predicate.eval_values(&self.scratch)?;
            self.probed += 1;
            self.matched += u64::from(matched);
            matched.then(|| Row::decode(schema, bytes)).transpose()?
        } else {
            let row = Row::decode(schema, bytes)?;
            let matched = self.predicate.eval(&row)?;
            self.probed += 1;
            self.matched += u64::from(matched);
            matched.then_some(row)
        };
        Ok(matched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: i64, s: &str) -> Row {
        Row::new(vec![Value::Int(v), Value::str(s)])
    }

    #[test]
    fn ranges() {
        let p = Predicate::int_half_open(0, 10, 20);
        assert!(p.eval(&row(10, "")).unwrap());
        assert!(p.eval(&row(19, "")).unwrap());
        assert!(!p.eval(&row(20, "")).unwrap());
        assert!(!p.eval(&row(9, "")).unwrap());
        assert!(Predicate::int_eq(0, 5).eval(&row(5, "")).unwrap());
        assert!(Predicate::int_ge(0, 5).eval(&row(5, "")).unwrap());
        assert!(Predicate::int_lt(0, 5).eval(&row(4, "")).unwrap());
        assert!(Predicate::int_le(0, 5).eval(&row(5, "")).unwrap());
    }

    #[test]
    fn strings_and_composites() {
        let p = Predicate::And(vec![
            Predicate::int_ge(0, 0),
            Predicate::StrEq { col: 1, value: "ok".into() },
        ]);
        assert!(p.eval(&row(1, "ok")).unwrap());
        assert!(!p.eval(&row(1, "no")).unwrap());
        assert!(!p.eval(&row(-1, "ok")).unwrap());
        let q = Predicate::Or(vec![
            Predicate::StrIn { col: 1, values: vec!["a".into(), "b".into()] },
            Predicate::int_eq(0, 7),
        ]);
        assert!(q.eval(&row(0, "b")).unwrap());
        assert!(q.eval(&row(7, "z")).unwrap());
        assert!(!q.eval(&row(0, "z")).unwrap());
        let n = Predicate::Not(Box::new(Predicate::True));
        assert!(!n.eval(&row(0, "")).unwrap());
    }

    #[test]
    fn nulls_never_match() {
        let r = Row::new(vec![Value::Null, Value::Null]);
        assert!(!Predicate::int_eq(0, 0).eval(&r).unwrap());
        assert!(!Predicate::StrEq { col: 1, value: String::new() }.eval(&r).unwrap());
        // but NOT(null-compare) is true under two-valued semantics
        assert!(Predicate::Not(Box::new(Predicate::int_eq(0, 0))).eval(&r).unwrap());
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(Predicate::int_eq(1, 0).eval(&row(0, "x")).is_err());
        assert!(Predicate::StrEq { col: 0, value: "x".into() }.eval(&row(0, "x")).is_err());
    }

    #[test]
    fn column_comparison() {
        let p = Predicate::IntColLt { left: 0, right: 1 };
        let two_ints = Row::new(vec![Value::Int(3), Value::Int(5)]);
        assert!(p.eval(&two_ints).unwrap());
        let eq = Row::new(vec![Value::Int(5), Value::Int(5)]);
        assert!(!p.eval(&eq).unwrap());
        let with_null = Row::new(vec![Value::Null, Value::Int(5)]);
        assert!(!p.eval(&with_null).unwrap());
        assert!(p.eval(&row(0, "x")).is_err());
    }

    #[test]
    fn and_collapses() {
        assert_eq!(Predicate::and(vec![]), Predicate::True);
        assert_eq!(Predicate::and(vec![Predicate::True]), Predicate::True);
        let p = Predicate::int_eq(0, 1);
        assert_eq!(Predicate::and(vec![Predicate::True, p.clone()]), p);
    }

    #[test]
    fn referenced_columns_are_sorted_and_deduped() {
        let p = Predicate::And(vec![
            Predicate::StrEq { col: 3, value: "x".into() },
            Predicate::Or(vec![Predicate::int_eq(1, 5), Predicate::IntColLt { left: 3, right: 0 }]),
        ]);
        assert_eq!(p.referenced_columns(), vec![0, 1, 3]);
        assert!(Predicate::True.referenced_columns().is_empty());
        assert_eq!(Predicate::Not(Box::new(Predicate::int_eq(2, 0))).referenced_columns(), vec![2]);
    }

    #[test]
    fn scan_filter_agrees_with_row_eval() {
        use smooth_types::{Column, DataType};
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int64),
            Column::nullable("b", DataType::Int64),
            Column::new("s", DataType::Text),
        ])
        .unwrap();
        let rows = [
            Row::new(vec![Value::Int(1), Value::Int(10), Value::str("x")]),
            Row::new(vec![Value::Int(2), Value::Null, Value::str("y")]),
            Row::new(vec![Value::Int(3), Value::Int(-4), Value::str("x")]),
        ];
        let preds = [
            Predicate::True,
            Predicate::int_ge(1, 0),
            Predicate::And(vec![
                Predicate::int_lt(0, 3),
                Predicate::StrEq { col: 2, value: "x".into() },
            ]),
            // references every column → full-decode fallback
            Predicate::And(vec![
                Predicate::int_ge(0, 0),
                Predicate::int_ge(1, -100),
                Predicate::StrIn { col: 2, values: vec!["x".into(), "y".into()] },
            ]),
        ];
        for pred in preds {
            let mut filter = ScanFilter::new(pred.clone(), &schema);
            for r in &rows {
                let bytes = r.encode(&schema).unwrap();
                let got = filter.filter_decode(&schema, &bytes).unwrap();
                assert_eq!(got.is_some(), pred.eval(r).unwrap(), "{pred:?} on {r:?}");
                if let Some(decoded) = got {
                    assert_eq!(&decoded, r);
                }
            }
        }
    }

    #[test]
    fn split_extracts_index_range() {
        let p = Predicate::And(vec![
            Predicate::StrEq { col: 1, value: "x".into() },
            Predicate::int_half_open(0, 3, 9),
        ]);
        let (col, lo, hi, residual) = p.split_index_range().unwrap();
        assert_eq!(col, 0);
        assert_eq!(lo, Bound::Included(3));
        assert_eq!(hi, Bound::Excluded(9));
        assert_eq!(residual, Predicate::StrEq { col: 1, value: "x".into() });
        assert!(Predicate::True.split_index_range().is_none());
        let lone = Predicate::int_eq(2, 5);
        let (col, _, _, residual) = lone.split_index_range().unwrap();
        assert_eq!(col, 2);
        assert_eq!(residual, Predicate::True);
    }
}
