//! Blocking sort: in-memory under the operator budget, external beyond.
//!
//! Restores "interesting orders" (Section II): plans that need key order on
//! top of Full Scan or Sort Scan place this operator above the access path
//! — the posterior-sorting overhead that Smooth Scan avoids in Fig. 5a.
//!
//! With a memory budget set ([`Sort::with_mem_budget`] /
//! `SMOOTH_MEM_BYTES`), the sort runs through the external merge sort in
//! [`crate::extsort`]: sorted runs cut at the budget boundary spill to
//! charged overflow files and k-way-merge back, emitting exactly the
//! rows — in exactly the order — the unbudgeted in-memory sort emits.

use std::cmp::Ordering;

use smooth_types::{Result, Row, RowBatch, Schema};

use crate::extsort::ExternalSorter;
use crate::operator::{batch_size, BoxedOperator, Operator};

/// One sort key: column ordinal and direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    /// Column ordinal in the child schema.
    pub column: usize,
    /// Ascending when true.
    pub ascending: bool,
}

impl SortKey {
    /// Ascending key on `column`.
    pub fn asc(column: usize) -> Self {
        SortKey { column, ascending: true }
    }

    /// Descending key on `column`.
    pub fn desc(column: usize) -> Self {
        SortKey { column, ascending: false }
    }
}

/// Lexicographic row comparison under `keys` ([`Value::total_cmp`] per
/// column, descending keys reversed) — the one ordering the in-memory
/// sort, the external runs and the k-way merge all share.
pub(crate) fn compare_rows(a: &Row, b: &Row, keys: &[SortKey]) -> Ordering {
    for k in keys {
        let ord = a.get(k.column).total_cmp(b.get(k.column));
        let ord = if k.ascending { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sort `rows` by `keys` with the operator's exact clock charges: under
/// a memory budget the rows stream through the external merge sort
/// (spilled runs charge overflow I/O); otherwise the in-memory path
/// charges the closed-form `sort_cmp_ns · n · log2(n)` comparison cost
/// and sorts stably. This is the one sort-with-accounting routine —
/// [`Sort::open`] and the parallel ordered-scan sink
/// ([`crate::SinkSpec::Sort`]) both call it, so their charges are
/// byte-identical by construction.
pub(crate) fn sort_rows_charged(
    storage: &smooth_storage::Storage,
    rows: &mut Vec<Row>,
    keys: &[SortKey],
    mem_bytes: usize,
) -> Result<()> {
    if mem_bytes > 0 {
        let mut sorter = ExternalSorter::new(storage.clone(), keys.to_vec(), mem_bytes);
        for row in rows.drain(..) {
            sorter.push(row)?;
        }
        *rows = sorter.finish()?;
    } else {
        let n = rows.len() as u64;
        if n > 1 {
            storage.clock().charge_cpu(storage.cpu().sort_cmp_ns * n * n.ilog2() as u64);
        }
        rows.sort_by(|a, b| compare_rows(a, b, keys));
    }
    Ok(())
}

/// Blocking sort operator.
pub struct Sort {
    child: BoxedOperator,
    keys: Vec<SortKey>,
    storage: smooth_storage::Storage,
    /// Operator memory budget in bytes (0 = unlimited): beyond it the
    /// sort goes external ([`crate::extsort`]).
    mem_bytes: usize,
    sorted: Option<std::vec::IntoIter<Row>>,
}

impl Sort {
    /// Sort child output by `keys` (lexicographic). The memory budget
    /// defaults to the process-wide [`crate::spill::mem_budget_bytes`]
    /// knob.
    pub fn new(child: BoxedOperator, storage: smooth_storage::Storage, keys: Vec<SortKey>) -> Self {
        let mem_bytes = crate::spill::mem_budget_bytes();
        Sort { child, keys, storage, mem_bytes, sorted: None }
    }

    /// Builder: override the operator memory budget (0 = unlimited).
    pub fn with_mem_budget(mut self, bytes: usize) -> Self {
        self.mem_bytes = bytes;
        self
    }
}

impl Operator for Sort {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.child.open()?;
        let rows = if self.mem_bytes > 0 {
            // Budgeted: stream through the external sorter, which cuts
            // (and charges) a spilled run whenever the working set
            // crosses the budget — batches never all materialize at
            // once. When nothing ever spills its charges are exactly
            // the in-memory path's.
            let mut sorter =
                ExternalSorter::new(self.storage.clone(), self.keys.clone(), self.mem_bytes);
            while let Some(batch) = self.child.next_batch(batch_size())? {
                for row in batch.into_rows() {
                    sorter.push(row)?;
                }
            }
            self.child.close()?;
            sorter.finish()?
        } else {
            let mut rows = Vec::new();
            while let Some(batch) = self.child.next_batch(batch_size())? {
                rows.extend(batch.into_rows());
            }
            self.child.close()?;
            sort_rows_charged(&self.storage, &mut rows, &self.keys, 0)?;
            rows
        };
        self.sorted = Some(rows.into_iter());
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row>> {
        Ok(self.sorted.as_mut().and_then(|it| it.next()))
    }

    /// Emit the sorted output in chunks of `max`.
    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let Some(it) = self.sorted.as_mut() else { return Ok(None) };
        let rows: Vec<Row> = it.take(max.max(1)).collect();
        Ok((!rows.is_empty()).then(|| RowBatch::from_rows(rows)))
    }

    fn close(&mut self) -> Result<()> {
        self.sorted = None;
        Ok(())
    }

    fn label(&self) -> String {
        format!("Sort → {}", self.child.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{collect_rows, ValuesOp};
    use smooth_types::{Column, DataType, Value};

    fn storage() -> smooth_storage::Storage {
        smooth_storage::Storage::default_hdd()
    }

    fn input(rows: Vec<(i64, i64)>) -> BoxedOperator {
        let schema =
            Schema::new(vec![Column::new("a", DataType::Int64), Column::new("b", DataType::Int64)])
                .unwrap();
        Box::new(ValuesOp::new(
            schema,
            rows.into_iter().map(|(a, b)| Row::new(vec![Value::Int(a), Value::Int(b)])).collect(),
        ))
    }

    #[test]
    fn sorts_ascending_and_descending() {
        let mut s =
            Sort::new(input(vec![(3, 0), (1, 1), (2, 2)]), storage(), vec![SortKey::asc(0)]);
        let rows = collect_rows(&mut s).unwrap();
        assert_eq!(rows.iter().map(|r| r.int(0).unwrap()).collect::<Vec<_>>(), vec![1, 2, 3]);
        let mut s =
            Sort::new(input(vec![(3, 0), (1, 1), (2, 2)]), storage(), vec![SortKey::desc(0)]);
        let rows = collect_rows(&mut s).unwrap();
        assert_eq!(rows.iter().map(|r| r.int(0).unwrap()).collect::<Vec<_>>(), vec![3, 2, 1]);
    }

    #[test]
    fn multi_key_lexicographic() {
        let mut s = Sort::new(
            input(vec![(1, 9), (0, 5), (1, 2), (0, 7)]),
            storage(),
            vec![SortKey::asc(0), SortKey::desc(1)],
        );
        let rows = collect_rows(&mut s).unwrap();
        let pairs: Vec<(i64, i64)> =
            rows.iter().map(|r| (r.int(0).unwrap(), r.int(1).unwrap())).collect();
        assert_eq!(pairs, vec![(0, 7), (0, 5), (1, 9), (1, 2)]);
    }

    #[test]
    fn charges_nlogn_cpu() {
        let st = storage();
        let before = st.clock().snapshot().cpu_ns;
        let mut s = Sort::new(
            input((0..1024).map(|i| (1023 - i, i)).collect()),
            st.clone(),
            vec![SortKey::asc(0)],
        );
        collect_rows(&mut s).unwrap();
        let delta = st.clock().snapshot().cpu_ns - before;
        assert_eq!(delta, st.cpu().sort_cmp_ns * 1024 * 10);
    }

    #[test]
    fn empty_input() {
        let mut s = Sort::new(input(vec![]), storage(), vec![SortKey::asc(0)]);
        assert!(collect_rows(&mut s).unwrap().is_empty());
    }
}
