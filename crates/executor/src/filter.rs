//! Filter and Project operators.
//!
//! Both have native columnar paths: `Filter` refines the child batch's
//! *selection vector* (no row is materialized or moved — non-qualifiers
//! simply drop out of the selection), and `Project` is pure column
//! pruning (vectors move by ordinal; rows are never rebuilt).

use smooth_types::{ColumnBatch, Result, Row, RowBatch, Schema};

use crate::expr::Predicate;
use crate::operator::{BoxedOperator, Operator};

/// Filters child rows by a predicate.
pub struct Filter {
    child: BoxedOperator,
    predicate: Predicate,
}

impl Filter {
    /// Wrap `child`, keeping rows where `predicate` holds.
    pub fn new(child: BoxedOperator, predicate: Predicate) -> Self {
        Filter { child, predicate }
    }
}

impl Operator for Filter {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        while let Some(row) = self.child.next()? {
            if self.predicate.eval(&row)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    /// Vectorized filter: pull a child batch, compact it in place.
    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let predicate = &self.predicate;
        loop {
            let Some(mut batch) = self.child.next_batch(max)? else { return Ok(None) };
            batch.try_retain(|row| predicate.eval(row))?;
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
    }

    /// Columnar filter: evaluate the predicate as a vectorized kernel and
    /// refine the child batch's selection vector in place.
    fn next_columns(&mut self, max: usize) -> Result<Option<ColumnBatch>> {
        loop {
            let Some(mut batch) = self.child.next_columns(max)? else { return Ok(None) };
            let selection = self.predicate.filter_batch(&batch)?;
            if !selection.is_empty() {
                batch.set_selection(selection);
                return Ok(Some(batch));
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.child.close()
    }

    fn label(&self) -> String {
        format!("Filter → {}", self.child.label())
    }
}

/// Projects child rows to a subset (or reordering) of columns.
pub struct Project {
    child: BoxedOperator,
    columns: Vec<usize>,
    schema: Schema,
}

impl Project {
    /// Keep `columns` (by ordinal) of the child output.
    pub fn new(child: BoxedOperator, columns: Vec<usize>) -> Result<Self> {
        let cols = columns
            .iter()
            .map(|&c| {
                if c >= child.schema().len() {
                    Err(smooth_types::Error::schema(format!("project column {c} out of range")))
                } else {
                    Ok(child.schema().column(c).clone())
                }
            })
            .collect::<Result<Vec<_>>>()?;
        let schema = Schema::new(cols)?;
        Ok(Project { child, columns, schema })
    }
}

impl Operator for Project {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        Ok(self
            .child
            .next()?
            .map(|row| Row::new(self.columns.iter().map(|&c| row.get(c).clone()).collect())))
    }

    /// Vectorized projection: rewrite a child batch in place.
    fn next_batch(&mut self, max: usize) -> Result<Option<RowBatch>> {
        let Some(mut batch) = self.child.next_batch(max)? else { return Ok(None) };
        let columns = &self.columns;
        batch.try_map(|row| Ok(Row::new(columns.iter().map(|&c| row.get(c).clone()).collect())))?;
        Ok(Some(batch))
    }

    /// Columnar projection: move the kept column vectors, touch no row.
    fn next_columns(&mut self, max: usize) -> Result<Option<ColumnBatch>> {
        let Some(batch) = self.child.next_columns(max)? else { return Ok(None) };
        Ok(Some(batch.project(&self.columns)?))
    }

    fn close(&mut self) -> Result<()> {
        self.child.close()
    }

    fn label(&self) -> String {
        format!("Project{:?} → {}", self.columns, self.child.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{collect_rows, ValuesOp};
    use smooth_types::{Column, DataType, Value};

    fn input() -> BoxedOperator {
        let schema =
            Schema::new(vec![Column::new("a", DataType::Int64), Column::new("b", DataType::Int64)])
                .unwrap();
        let rows = (0..10).map(|i| Row::new(vec![Value::Int(i), Value::Int(i * 10)])).collect();
        Box::new(ValuesOp::new(schema, rows))
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let mut f = Filter::new(input(), Predicate::int_ge(0, 7));
        let rows = collect_rows(&mut f).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.int(0).unwrap() >= 7));
    }

    #[test]
    fn project_reorders_and_drops() {
        let mut p = Project::new(input(), vec![1, 0]).unwrap();
        assert_eq!(p.schema().column(0).name, "b");
        let rows = collect_rows(&mut p).unwrap();
        assert_eq!(rows[3].values(), &[Value::Int(30), Value::Int(3)]);
        assert!(Project::new(input(), vec![5]).is_err());
    }

    #[test]
    fn duplicated_projection_gets_fresh_schema_names_rejected() {
        // Projecting the same column twice duplicates names → schema error.
        assert!(Project::new(input(), vec![0, 0]).is_err());
    }
}
